"""The :class:`DatasetRegistry`: named datasets as versioned snapshots.

The registry is the serving layer's write path.  Each registered
dataset has

* a live :class:`~repro.maintenance.maintainer.SkylineMaintainer`
  (the incremental index — inserts are Z-merge folds, deletes
  re-promote shadowed points), owned exclusively by the writer;
* a current immutable :class:`~repro.serving.snapshot.Snapshot`,
  republished atomically after every mutation batch (readers never
  block writers; a reader holding version N keeps reading version N);
* a :class:`DriftPolicy` bounding how much incremental delete churn is
  tolerated before the skyline is recomputed from scratch with the
  full pipeline (:func:`repro.pipeline.supervisor.supervised_run`), so
  incremental error can never compound silently;
* optionally, a durable home (:class:`~repro.serving.wal.DatasetStore`):
  every mutation batch is appended to a CRC32-framed WAL *before* it is
  applied, and the full state is checkpointed (tmp+rename) every
  ``checkpoint_every`` publishes.  A crashed writer recovers by
  replaying WAL-onto-last-durable-snapshot (:meth:`recover`), and the
  republished snapshot is bit-identical — same alive set, same skyline,
  same version — to the uninterrupted run.

While a writer is down (a real crash, or one injected by a
:class:`~repro.serving.faults.ServingFaultPlan`), reads keep serving
the last published snapshot — bounded staleness, never an error — and
mutations fail fast with a typed
:class:`~repro.core.exceptions.WriterDownError` whose ``applied`` field
tells the caller whether the batch already reached the durable WAL
(and will therefore take effect on recovery).

The drift rebuild feeds the alive set back through the paper's
three-phase engine and adopts only the returned skyline *ids* — the
registry's own grid points are kept, so a rebuild changes no stored
coordinates.  (The pipeline re-quantises onto its own grid, but for
integer grid input with matching ``bits_per_dim`` that mapping is
strictly monotone per dimension, hence dominance-isomorphic, hence the
id set is exact.)
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass
from typing import Any, Deque, Dict, List, Optional, Sequence

import numpy as np

from repro.core.dataset import Dataset
from repro.core.exceptions import (
    ConfigurationError,
    DatasetError,
    WriterDownError,
)
from repro.maintenance.maintainer import SkylineMaintainer
from repro.observability.metrics import MetricsRegistry
from repro.serving.faults import ServingFaultPlan
from repro.serving.snapshot import Snapshot
from repro.serving.wal import DatasetStore, WalRecord
from repro.zorder.encoding import ZGridCodec, quantize_dataset
from repro.zorder.zbtree import build_zbtree
from repro.zorder.zsearch import zsearch

#: metrics group for registry-level events
SERVING_GROUP = "serving"

#: default retry-after hint handed to writers while the writer is down
_WRITER_RETRY_AFTER = 0.05


@dataclass(frozen=True)
class DriftPolicy:
    """When does accumulated delete churn force a full rebuild?

    Each delete of an existing point counts toward the drift budget;
    the budget resets on every full rebuild.  Either bound may be
    ``None`` (unbounded); with both ``None`` the policy is pure
    incremental maintenance (:meth:`never`).
    """

    #: absolute number of deleted records tolerated since last rebuild
    max_deletes: Optional[int] = None
    #: deleted records as a fraction of the current alive set size
    max_delete_fraction: Optional[float] = None

    def __post_init__(self) -> None:
        if self.max_deletes is not None and self.max_deletes < 0:
            raise ConfigurationError("max_deletes must be >= 0")
        if self.max_delete_fraction is not None and not (
            self.max_delete_fraction >= 0.0
        ):
            raise ConfigurationError("max_delete_fraction must be >= 0")

    @classmethod
    def never(cls) -> "DriftPolicy":
        """Pure incremental maintenance: no rebuild, ever."""
        return cls()

    @classmethod
    def bounded(
        cls,
        max_deletes: Optional[int] = None,
        max_delete_fraction: Optional[float] = 0.25,
    ) -> "DriftPolicy":
        """The default serving policy: rebuild once deletes since the
        last rebuild exceed 25% of the alive set (or an absolute cap)."""
        return cls(
            max_deletes=max_deletes,
            max_delete_fraction=max_delete_fraction,
        )

    def should_rebuild(self, deletes_since: int, alive: int) -> bool:
        if self.max_deletes is not None and deletes_since > self.max_deletes:
            return True
        if (
            self.max_delete_fraction is not None
            and alive > 0
            and deletes_since > self.max_delete_fraction * alive
        ):
            return True
        return False


@dataclass(frozen=True)
class RebuildConfig:
    """How drift rebuilds run the offline pipeline."""

    #: pipeline plan for the recompute
    plan: str = "ZHG+ZS"
    num_workers: int = 4
    num_groups: int = 16
    executor: str = "simulated"
    seed: int = 0
    #: below this alive-set size the rebuild short-circuits to a direct
    #: Z-search (the MapReduce pipeline has per-job overhead that only
    #: pays off at scale)
    min_pipeline_size: int = 512

    def __post_init__(self) -> None:
        if self.num_workers <= 0 or self.num_groups <= 0:
            raise ConfigurationError(
                "num_workers and num_groups must be positive"
            )
        if self.min_pipeline_size < 0:
            raise ConfigurationError("min_pipeline_size must be >= 0")


@dataclass(frozen=True)
class PublishResult:
    """Outcome of one mutation batch: the newly published version."""

    dataset: str
    version: int
    size: int
    skyline_size: int
    #: did this publish include a full drift rebuild?
    rebuilt: bool = False
    #: did this publish come from WAL replay after a crash?
    recovered: bool = False


class _DatasetState:
    """Writer-side state of one registered dataset."""

    __slots__ = (
        "name", "codec", "maintainer", "snapshot", "lock",
        "drift", "rebuild", "deletes_since_rebuild", "history",
        "store", "writer_down", "pending_batches",
        "publishes_since_checkpoint", "recoveries",
    )

    def __init__(
        self,
        name: str,
        codec: ZGridCodec,
        maintainer: SkylineMaintainer,
        drift: DriftPolicy,
        rebuild: RebuildConfig,
        keep_versions: int,
    ) -> None:
        self.name = name
        self.codec = codec
        self.maintainer: Optional[SkylineMaintainer] = maintainer
        self.snapshot: Optional[Snapshot] = None
        self.lock = threading.Lock()
        self.drift = drift
        self.rebuild = rebuild
        self.deletes_since_rebuild = 0
        self.history: Deque[Snapshot] = deque(maxlen=max(1, keep_versions))
        self.store: Optional[DatasetStore] = None
        self.writer_down = False
        #: durable-but-unpublished WAL batches (crash between WAL
        #: append and publish)
        self.pending_batches = 0
        self.publishes_since_checkpoint = 0
        self.recoveries = 0


class DatasetRegistry:
    """Named, versioned, concurrently readable skyline datasets.

    All mutation goes through :meth:`insert` / :meth:`delete`, which
    serialise per dataset behind a writer lock and publish a fresh
    snapshot atomically.  Reads (:meth:`snapshot`) are a single
    attribute load and never block on writers.

    ``durability_dir`` turns on the WAL + checkpoint store (one
    subdirectory per dataset); ``fault_plan`` arms seeded writer-crash
    injection for chaos testing.
    """

    def __init__(
        self,
        metrics: Optional[MetricsRegistry] = None,
        keep_versions: int = 3,
        durability_dir: Optional[str] = None,
        checkpoint_every: int = 8,
        fault_plan: Optional[ServingFaultPlan] = None,
    ) -> None:
        if checkpoint_every < 1:
            raise ConfigurationError("checkpoint_every must be >= 1")
        self.metrics = metrics
        self._keep_versions = keep_versions
        self.durability_dir = durability_dir
        self.checkpoint_every = checkpoint_every
        self.fault_plan = fault_plan
        self._states: Dict[str, _DatasetState] = {}
        self._lock = threading.Lock()

    @property
    def durable(self) -> bool:
        return self.durability_dir is not None

    # ------------------------------------------------------------------
    # registration
    # ------------------------------------------------------------------
    def register(
        self,
        name: str,
        points: np.ndarray,
        ids: Optional[np.ndarray] = None,
        codec: Optional[ZGridCodec] = None,
        drift: Optional[DriftPolicy] = None,
        rebuild: Optional[RebuildConfig] = None,
    ) -> PublishResult:
        """Register grid-resident points as version 1 of ``name``.

        ``points`` must already hold integer grid coordinates for
        ``codec`` (like everywhere else in the z-order stack); use
        :meth:`register_dataset` for raw float data.  The initial
        skyline is computed with the same machinery drift rebuilds use.
        """
        points = np.asarray(points, dtype=np.float64)
        if points.ndim != 2 or points.shape[0] == 0:
            raise DatasetError("need a non-empty (n, d) point matrix")
        n, d = points.shape
        if ids is None:
            ids = np.arange(n, dtype=np.int64)
        else:
            ids = np.asarray(ids, dtype=np.int64)
            if ids.shape != (n,) or len(np.unique(ids)) != n:
                raise DatasetError("ids must be unique, one per point")
        if codec is None:
            top = int(points.max()) if points.size else 1
            bits = max(1, top.bit_length())
            codec = ZGridCodec.grid_identity(d, bits_per_dim=bits)
        if codec.dimensions != d:
            raise DatasetError(
                f"codec is {codec.dimensions}-D but points are {d}-D"
            )
        if not (
            np.all(points == np.floor(points))
            and points.min() >= 0
            and points.max() < codec.cells_per_dim
        ):
            raise DatasetError(
                "points must be integer grid coordinates in "
                f"[0, {codec.cells_per_dim}) — quantise first "
                "(see register_dataset)"
            )
        state = _DatasetState(
            name,
            codec,
            SkylineMaintainer(codec, metrics=self.metrics),
            drift or DriftPolicy.bounded(),
            rebuild or RebuildConfig(),
            self._keep_versions,
        )
        # Build the whole version-1 state before the name becomes
        # visible, so a reader can never observe a half-registered
        # dataset.
        sky_ids = self._compute_skyline_ids(state, points, ids)
        state.maintainer = SkylineMaintainer.from_state(
            codec, points, ids, sky_ids, metrics=self.metrics
        )
        if self.durable:
            state.store = DatasetStore(self.durability_dir, name)
        result = self._publish(state, rebuilt=False)
        if state.store is not None:
            # Version 1 is the recovery baseline: checkpoint it (and
            # start an empty WAL) before the dataset becomes visible.
            self._checkpoint(state)
        with self._lock:
            if name in self._states:
                raise ConfigurationError(
                    f"dataset {name!r} is already registered"
                )
            self._states[name] = state
        return result

    def register_dataset(
        self,
        name: str,
        dataset: Dataset,
        bits_per_dim: int = 12,
        drift: Optional[DriftPolicy] = None,
        rebuild: Optional[RebuildConfig] = None,
    ) -> PublishResult:
        """Quantise a raw float dataset and register the grid version."""
        snapped, codec = quantize_dataset(dataset, bits_per_dim=bits_per_dim)
        return self.register(
            name,
            snapped.points,
            ids=snapped.ids,
            codec=codec,
            drift=drift,
            rebuild=rebuild,
        )

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------
    def names(self) -> List[str]:
        with self._lock:
            return sorted(self._states)

    def _state(self, name: str) -> _DatasetState:
        with self._lock:
            state = self._states.get(name)
        if state is None:
            raise DatasetError(f"dataset {name!r} is not registered")
        return state

    def snapshot(self, name: str) -> Snapshot:
        """The current snapshot (an atomic attribute read; never blocks
        on writers)."""
        snapshot = self._state(name).snapshot
        assert snapshot is not None  # set before registration returns
        return snapshot

    def snapshot_at(self, name: str, version: int) -> Snapshot:
        """A recent retained version (the retention ring is small; old
        versions a reader still references remain valid regardless)."""
        state = self._state(name)
        with state.lock:
            for snap in state.history:
                if snap.version == version:
                    return snap
        raise DatasetError(
            f"version {version} of {name!r} is no longer retained"
        )

    def version(self, name: str) -> int:
        return self.snapshot(name).version

    def is_skyline_member(self, name: str, point_id: int) -> bool:
        """Live skyline membership (the maintainer's cached id-set).

        Falls back to the last published snapshot's skyline while the
        writer is down (bounded staleness, same as every other read).
        """
        state = self._state(name)
        with state.lock:
            if state.maintainer is not None:
                return state.maintainer.is_skyline_member(point_id)
        snapshot = self.snapshot(name)
        if snapshot.row_of(point_id) is None:
            raise DatasetError(f"point id {point_id} is not alive")
        return bool(np.any(snapshot.sky_ids == int(point_id)))

    def writer_status(self, name: str) -> Dict[str, Any]:
        """Typed writer-health snapshot (feeds query certificates).

        Deliberately lock-free: each field is a single atomic attribute
        read, so the read path never blocks behind an in-flight
        mutation (a momentarily stale answer is fine — the certificate
        describes the serving regime, not a transaction).
        """
        state = self._state(name)
        snapshot = state.snapshot
        return {
            "writer_down": state.writer_down,
            "pending_batches": state.pending_batches,
            "recoveries": state.recoveries,
            "published_version": snapshot.version if snapshot else 0,
        }

    # ------------------------------------------------------------------
    # mutations
    # ------------------------------------------------------------------
    def insert(
        self, name: str, points: np.ndarray, ids: Sequence[int]
    ) -> PublishResult:
        """Insert a batch and publish the next version."""
        state = self._state(name)
        points = np.asarray(points, dtype=np.float64)
        ids = np.asarray(ids, dtype=np.int64)
        with state.lock:
            self._require_writer(state)
            return self._mutate(state, "insert", points, ids)

    def delete(self, name: str, ids: Sequence[int]) -> PublishResult:
        """Delete a batch by id and publish the next version."""
        state = self._state(name)
        ids = np.asarray([int(i) for i in ids], dtype=np.int64)
        with state.lock:
            self._require_writer(state)
            return self._mutate(state, "delete", None, ids)

    # ------------------------------------------------------------------
    # recovery
    # ------------------------------------------------------------------
    def adopt(
        self,
        name: str,
        drift: Optional[DriftPolicy] = None,
        rebuild: Optional[RebuildConfig] = None,
    ) -> PublishResult:
        """Cold-start ``name`` from its durable home (checkpoint + WAL).

        :meth:`recover` heals a writer *within* a live registry; adopt
        is for when the whole owning process died — a fresh registry
        (pointed at the same ``durability_dir``) takes the dataset over
        by loading the checkpoint, replaying the WAL, and publishing the
        same bit-identical snapshot recovery would have.  This is what
        shard failover uses to stand up a replacement shard.
        """
        if not self.durable:
            raise ConfigurationError(
                "adopt() requires DatasetRegistry(durability_dir=...)"
            )
        store = DatasetStore(self.durability_dir, name)
        baseline = store.load_checkpoint()
        if baseline is None:
            raise ConfigurationError(
                f"dataset {name!r} has no durable checkpoint to adopt"
            )
        state = _DatasetState(
            name,
            baseline.codec,
            None,  # recover() rebuilds the maintainer from the baseline
            drift or DriftPolicy.bounded(),
            rebuild or RebuildConfig(),
            self._keep_versions,
        )
        state.store = store
        state.writer_down = True
        with self._lock:
            if name in self._states:
                raise ConfigurationError(
                    f"dataset {name!r} is already registered"
                )
            self._states[name] = state
        try:
            return self.recover(name)
        except BaseException:
            with self._lock:
                self._states.pop(name, None)
            raise

    def recover(self, name: str) -> PublishResult:
        """Replay WAL-onto-last-durable-checkpoint and republish.

        Rebuilds the writer's in-memory state from the durable baseline,
        re-applies every WAL batch beyond it (dropping at most one torn
        tail frame — a crash mid-append of an unacknowledged batch),
        republishes a snapshot bit-identical to the uninterrupted run at
        the same version, checkpoints the recovered state, and brings
        the writer back up.  Idempotent: recovering a healthy durable
        dataset is a no-op republish of the current version.
        """
        state = self._state(name)
        with state.lock:
            if state.store is None:
                raise ConfigurationError(
                    f"dataset {name!r} has no durable store; recovery "
                    "requires DatasetRegistry(durability_dir=...)"
                )
            baseline = state.store.load_checkpoint()
            if baseline is None:
                raise ConfigurationError(
                    f"dataset {name!r} has no durable checkpoint to "
                    "recover from"
                )
            maintainer = SkylineMaintainer.from_state(
                state.codec,
                baseline.points,
                baseline.ids,
                baseline.sky_ids,
                metrics=self.metrics,
            )
            state.maintainer = maintainer
            state.deletes_since_rebuild = baseline.deletes_since_rebuild
            replay = state.store.wal.replay()
            version = baseline.version
            replayed = 0
            expected = baseline.seq
            for record in replay.records:
                if record.seq <= baseline.seq:
                    continue
                if record.seq != expected + 1:
                    # The WAL itself is contiguous (replay() checks),
                    # so a gap here means the log lost its head across
                    # the checkpoint/rotation boundary — an
                    # acknowledged batch would vanish silently if we
                    # replayed past it.
                    raise ConfigurationError(
                        f"dataset {name!r}: WAL resumes at seq "
                        f"{record.seq} but the checkpoint ends at seq "
                        f"{baseline.seq}; refusing to recover across a "
                        "sequence gap at the rotation point"
                    )
                expected = record.seq
                if record.op == "insert":
                    maintainer.insert_block(
                        np.asarray(record.points, dtype=np.float64),
                        np.asarray(record.ids, dtype=np.int64),
                    )
                else:
                    maintainer.delete(list(record.ids))
                    state.deletes_since_rebuild += len(record.ids)
                self._maybe_rebuild(state)
                # a drift rebuild swaps the maintainer object
                maintainer = state.maintainer
                version = record.seq
                replayed += 1
            state.writer_down = False
            state.pending_batches = 0
            state.recoveries += 1
            meta = {
                "recovered": True,
                "replayed_batches": replayed,
                "dropped_tail": replay.dropped_tail,
                "baseline_version": baseline.version,
            }
            result = self._publish(
                state, rebuilt=False, version=version, meta=meta,
                recovered=True,
            )
            # Recovery checkpoint: the next crash replays from here.
            self._checkpoint(state)
            if self.metrics is not None:
                self.metrics.inc(SERVING_GROUP, "writer_recoveries")
                self.metrics.inc(SERVING_GROUP, "wal_replayed", replayed)
                if replay.dropped_tail:
                    self.metrics.inc(
                        SERVING_GROUP, "wal_torn_tails", replay.dropped_tail
                    )
            return result

    # ------------------------------------------------------------------
    # internals (caller holds state.lock)
    # ------------------------------------------------------------------
    def _require_writer(self, state: _DatasetState) -> None:
        if state.writer_down:
            raise WriterDownError(
                f"writer for dataset {state.name!r} is down; reads are "
                "serving the last published snapshot — call recover() "
                "to replay the WAL",
                dataset=state.name,
                stale_version=(
                    state.snapshot.version if state.snapshot else 0
                ),
                applied=False,
                retry_after_seconds=_WRITER_RETRY_AFTER,
            )

    def _validate_batch(
        self,
        state: _DatasetState,
        op: str,
        points: Optional[np.ndarray],
        ids: np.ndarray,
    ) -> None:
        """Reject an inapplicable batch *before* it reaches the WAL.

        The log must only ever record batches that apply cleanly: a
        frame whose apply then fails would never publish its sequence
        number, the next batch would reuse it, and recovery would
        refuse the duplicate-seq log.  This is also what makes the
        service's recover-then-re-execute path safe — re-executing a
        batch that recovery already applied fails *here*, as a typed
        DatasetError, with the WAL untouched.
        """
        assert state.snapshot is not None
        alive = state.snapshot.ids
        if op == "insert":
            assert points is not None
            if points.ndim != 2 or ids.shape != (points.shape[0],):
                raise DatasetError("need (n, d) points and matching ids")
            if np.unique(ids).size != ids.size:
                raise DatasetError("duplicate ids within insert batch")
            clash = np.intersect1d(ids, alive)
            if clash.size:
                raise DatasetError(
                    f"point id {int(clash[0])} already alive"
                )
        else:
            missing = np.setdiff1d(ids, alive)
            if missing.size:
                raise DatasetError(
                    f"point ids not alive: {missing.tolist()}"
                )

    def _mutate(
        self,
        state: _DatasetState,
        op: str,
        points: Optional[np.ndarray],
        ids: np.ndarray,
    ) -> PublishResult:
        assert state.snapshot is not None and state.maintainer is not None
        self._validate_batch(state, op, points, ids)
        seq = state.snapshot.version + 1
        phase = (
            self.fault_plan.writer_crash_phase(
                state.name, seq, state.recoveries
            )
            if self.fault_plan is not None
            else None
        )
        if phase == "before":
            # Crash before the WAL append: the batch is lost entirely.
            self._crash_writer(state, seq, phase, applied=False)
        if state.store is not None:
            record = (
                WalRecord.insert(seq, points, ids)
                if op == "insert"
                else WalRecord.delete(seq, ids)
            )
            state.store.wal.append(record)
            if self.metrics is not None:
                self.metrics.inc(SERVING_GROUP, "wal_appends")
        if phase == "during":
            # Crash after the WAL append but before apply/publish: the
            # batch is durable and will take effect on recovery.
            durable = state.store is not None
            if durable:
                state.pending_batches += 1
            self._crash_writer(state, seq, phase, applied=durable)
        if op == "insert":
            state.maintainer.insert_block(points, ids)
        else:
            state.maintainer.delete([int(i) for i in ids])
            state.deletes_since_rebuild += len(ids)
        rebuilt = self._maybe_rebuild(state)
        result = self._publish(state, rebuilt=rebuilt)
        if phase == "after":
            # Crash after the publish: readers already see the new
            # version; only the writer's in-memory state is lost.
            self._crash_writer(state, seq, phase, applied=True)
        self._maybe_checkpoint(state)
        return result

    def _crash_writer(
        self,
        state: _DatasetState,
        seq: int,
        phase: str,
        applied: Optional[bool],
    ) -> None:
        """Simulate a writer process death: the in-memory incremental
        state is gone; only durable artefacts (WAL + checkpoint) and
        already-published snapshots survive."""
        state.writer_down = True
        state.maintainer = None
        if state.store is not None:
            state.store.wal.close()
        if self.metrics is not None:
            self.metrics.inc(SERVING_GROUP, "writer_crashes")
            self.metrics.inc(SERVING_GROUP, f"writer_crashes_{phase}")
        raise WriterDownError(
            f"writer for dataset {state.name!r} crashed {phase} "
            f"publishing batch seq={seq}",
            dataset=state.name,
            stale_version=state.snapshot.version if state.snapshot else 0,
            applied=applied,
            retry_after_seconds=_WRITER_RETRY_AFTER,
        )

    def _publish(
        self,
        state: _DatasetState,
        rebuilt: bool,
        version: Optional[int] = None,
        meta: Optional[Dict[str, Any]] = None,
        recovered: bool = False,
    ) -> PublishResult:
        assert state.maintainer is not None
        previous = state.snapshot
        if version is None:
            version = 1 if previous is None else previous.version + 1
        points, ids = state.maintainer.alive()
        sky_points, sky_ids = state.maintainer.skyline()
        snapshot = Snapshot.build(
            state.name, version, state.codec,
            points, ids, sky_points, sky_ids,
            meta=meta,
        )
        if state.history and state.history[-1].version == version:
            # Recovery republish of an already-published version:
            # replace it in the ring instead of duplicating.
            state.history.pop()
        state.history.append(snapshot)
        # The single publication point: readers see old or new, nothing
        # in between.
        state.snapshot = snapshot
        state.publishes_since_checkpoint += 1
        if self.metrics is not None:
            self.metrics.inc(SERVING_GROUP, "publishes")
            if rebuilt:
                self.metrics.inc(SERVING_GROUP, "drift_rebuilds")
        return PublishResult(
            dataset=state.name,
            version=version,
            size=snapshot.size,
            skyline_size=snapshot.skyline_size,
            rebuilt=rebuilt,
            recovered=recovered,
        )

    def _maybe_checkpoint(self, state: _DatasetState) -> None:
        if (
            state.store is not None
            and state.publishes_since_checkpoint >= self.checkpoint_every
        ):
            self._checkpoint(state)

    def _checkpoint(self, state: _DatasetState) -> None:
        assert state.store is not None and state.maintainer is not None
        assert state.snapshot is not None
        points, ids = state.maintainer.alive()
        _, sky_ids = state.maintainer.skyline()
        state.store.save_checkpoint(
            state.codec,
            seq=state.snapshot.version,
            version=state.snapshot.version,
            points=points,
            ids=ids,
            sky_ids=sky_ids,
            deletes_since_rebuild=state.deletes_since_rebuild,
        )
        state.publishes_since_checkpoint = 0
        if self.metrics is not None:
            self.metrics.inc(SERVING_GROUP, "checkpoints")

    def _maybe_rebuild(self, state: _DatasetState) -> bool:
        assert state.maintainer is not None
        if not state.drift.should_rebuild(
            state.deletes_since_rebuild, state.maintainer.size
        ):
            return False
        points, ids = state.maintainer.alive()
        if points.shape[0] == 0:
            state.deletes_since_rebuild = 0
            return False
        sky_ids = self._compute_skyline_ids(state, points, ids)
        state.maintainer = SkylineMaintainer.from_state(
            state.codec, points, ids, sky_ids, metrics=self.metrics
        )
        state.deletes_since_rebuild = 0
        return True

    def _compute_skyline_ids(
        self, state: _DatasetState, points: np.ndarray, ids: np.ndarray
    ) -> np.ndarray:
        """Exact skyline ids of ``(points, ids)``.

        Large sets go through the full supervised pipeline (the paper's
        engine, with its partitioning/prefilter machinery); small sets
        Z-search a freshly built tree directly.
        """
        cfg = state.rebuild
        n = points.shape[0]
        if n >= cfg.min_pipeline_size:
            from repro.pipeline.supervisor import supervised_run

            sample_ratio = min(1.0, max(0.05, 256.0 / n))
            num_groups = max(1, min(cfg.num_groups, n // 32))
            report = supervised_run(
                cfg.plan,
                Dataset(points, ids=ids, name=f"{state.name}[rebuild]"),
                bits_per_dim=state.codec.bits_per_dim,
                num_workers=cfg.num_workers,
                num_groups=num_groups,
                sample_ratio=sample_ratio,
                executor=cfg.executor,
                seed=cfg.seed,
            )
            if self.metrics is not None:
                self.metrics.inc(SERVING_GROUP, "pipeline_rebuilds")
            return np.asarray(report.skyline.ids, dtype=np.int64)
        tree = build_zbtree(state.codec, points, ids=ids)
        _, sky_ids = zsearch(tree)
        return np.asarray(sky_ids, dtype=np.int64)
