"""The :class:`DatasetRegistry`: named datasets as versioned snapshots.

The registry is the serving layer's write path.  Each registered
dataset has

* a live :class:`~repro.maintenance.maintainer.SkylineMaintainer`
  (the incremental index — inserts are Z-merge folds, deletes
  re-promote shadowed points), owned exclusively by the writer;
* a current immutable :class:`~repro.serving.snapshot.Snapshot`,
  republished atomically after every mutation batch (readers never
  block writers; a reader holding version N keeps reading version N);
* a :class:`DriftPolicy` bounding how much incremental delete churn is
  tolerated before the skyline is recomputed from scratch with the
  full pipeline (:func:`repro.pipeline.supervisor.supervised_run`), so
  incremental error can never compound silently.

The drift rebuild feeds the alive set back through the paper's
three-phase engine and adopts only the returned skyline *ids* — the
registry's own grid points are kept, so a rebuild changes no stored
coordinates.  (The pipeline re-quantises onto its own grid, but for
integer grid input with matching ``bits_per_dim`` that mapping is
strictly monotone per dimension, hence dominance-isomorphic, hence the
id set is exact.)
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Sequence

import numpy as np

from repro.core.dataset import Dataset
from repro.core.exceptions import ConfigurationError, DatasetError
from repro.maintenance.maintainer import SkylineMaintainer
from repro.observability.metrics import MetricsRegistry
from repro.serving.snapshot import Snapshot
from repro.zorder.encoding import ZGridCodec, quantize_dataset
from repro.zorder.zbtree import build_zbtree
from repro.zorder.zsearch import zsearch

#: metrics group for registry-level events
SERVING_GROUP = "serving"


@dataclass(frozen=True)
class DriftPolicy:
    """When does accumulated delete churn force a full rebuild?

    Each delete of an existing point counts toward the drift budget;
    the budget resets on every full rebuild.  Either bound may be
    ``None`` (unbounded); with both ``None`` the policy is pure
    incremental maintenance (:meth:`never`).
    """

    #: absolute number of deleted records tolerated since last rebuild
    max_deletes: Optional[int] = None
    #: deleted records as a fraction of the current alive set size
    max_delete_fraction: Optional[float] = None

    def __post_init__(self) -> None:
        if self.max_deletes is not None and self.max_deletes < 0:
            raise ConfigurationError("max_deletes must be >= 0")
        if self.max_delete_fraction is not None and not (
            self.max_delete_fraction >= 0.0
        ):
            raise ConfigurationError("max_delete_fraction must be >= 0")

    @classmethod
    def never(cls) -> "DriftPolicy":
        """Pure incremental maintenance: no rebuild, ever."""
        return cls()

    @classmethod
    def bounded(
        cls,
        max_deletes: Optional[int] = None,
        max_delete_fraction: Optional[float] = 0.25,
    ) -> "DriftPolicy":
        """The default serving policy: rebuild once deletes since the
        last rebuild exceed 25% of the alive set (or an absolute cap)."""
        return cls(
            max_deletes=max_deletes,
            max_delete_fraction=max_delete_fraction,
        )

    def should_rebuild(self, deletes_since: int, alive: int) -> bool:
        if self.max_deletes is not None and deletes_since > self.max_deletes:
            return True
        if (
            self.max_delete_fraction is not None
            and alive > 0
            and deletes_since > self.max_delete_fraction * alive
        ):
            return True
        return False


@dataclass(frozen=True)
class RebuildConfig:
    """How drift rebuilds run the offline pipeline."""

    #: pipeline plan for the recompute
    plan: str = "ZHG+ZS"
    num_workers: int = 4
    num_groups: int = 16
    executor: str = "simulated"
    seed: int = 0
    #: below this alive-set size the rebuild short-circuits to a direct
    #: Z-search (the MapReduce pipeline has per-job overhead that only
    #: pays off at scale)
    min_pipeline_size: int = 512

    def __post_init__(self) -> None:
        if self.num_workers <= 0 or self.num_groups <= 0:
            raise ConfigurationError(
                "num_workers and num_groups must be positive"
            )
        if self.min_pipeline_size < 0:
            raise ConfigurationError("min_pipeline_size must be >= 0")


@dataclass(frozen=True)
class PublishResult:
    """Outcome of one mutation batch: the newly published version."""

    dataset: str
    version: int
    size: int
    skyline_size: int
    #: did this publish include a full drift rebuild?
    rebuilt: bool = False


class _DatasetState:
    """Writer-side state of one registered dataset."""

    __slots__ = (
        "name", "codec", "maintainer", "snapshot", "lock",
        "drift", "rebuild", "deletes_since_rebuild", "history",
    )

    def __init__(
        self,
        name: str,
        codec: ZGridCodec,
        maintainer: SkylineMaintainer,
        drift: DriftPolicy,
        rebuild: RebuildConfig,
        keep_versions: int,
    ) -> None:
        self.name = name
        self.codec = codec
        self.maintainer = maintainer
        self.snapshot: Optional[Snapshot] = None
        self.lock = threading.Lock()
        self.drift = drift
        self.rebuild = rebuild
        self.deletes_since_rebuild = 0
        self.history: Deque[Snapshot] = deque(maxlen=max(1, keep_versions))


class DatasetRegistry:
    """Named, versioned, concurrently readable skyline datasets.

    All mutation goes through :meth:`insert` / :meth:`delete`, which
    serialise per dataset behind a writer lock and publish a fresh
    snapshot atomically.  Reads (:meth:`snapshot`) are a single
    attribute load and never block on writers.
    """

    def __init__(
        self,
        metrics: Optional[MetricsRegistry] = None,
        keep_versions: int = 3,
    ) -> None:
        self.metrics = metrics
        self._keep_versions = keep_versions
        self._states: Dict[str, _DatasetState] = {}
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # registration
    # ------------------------------------------------------------------
    def register(
        self,
        name: str,
        points: np.ndarray,
        ids: Optional[np.ndarray] = None,
        codec: Optional[ZGridCodec] = None,
        drift: Optional[DriftPolicy] = None,
        rebuild: Optional[RebuildConfig] = None,
    ) -> PublishResult:
        """Register grid-resident points as version 1 of ``name``.

        ``points`` must already hold integer grid coordinates for
        ``codec`` (like everywhere else in the z-order stack); use
        :meth:`register_dataset` for raw float data.  The initial
        skyline is computed with the same machinery drift rebuilds use.
        """
        points = np.asarray(points, dtype=np.float64)
        if points.ndim != 2 or points.shape[0] == 0:
            raise DatasetError("need a non-empty (n, d) point matrix")
        n, d = points.shape
        if ids is None:
            ids = np.arange(n, dtype=np.int64)
        else:
            ids = np.asarray(ids, dtype=np.int64)
            if ids.shape != (n,) or len(np.unique(ids)) != n:
                raise DatasetError("ids must be unique, one per point")
        if codec is None:
            top = int(points.max()) if points.size else 1
            bits = max(1, top.bit_length())
            codec = ZGridCodec.grid_identity(d, bits_per_dim=bits)
        if codec.dimensions != d:
            raise DatasetError(
                f"codec is {codec.dimensions}-D but points are {d}-D"
            )
        if not (
            np.all(points == np.floor(points))
            and points.min() >= 0
            and points.max() < codec.cells_per_dim
        ):
            raise DatasetError(
                "points must be integer grid coordinates in "
                f"[0, {codec.cells_per_dim}) — quantise first "
                "(see register_dataset)"
            )
        state = _DatasetState(
            name,
            codec,
            SkylineMaintainer(codec, metrics=self.metrics),
            drift or DriftPolicy.bounded(),
            rebuild or RebuildConfig(),
            self._keep_versions,
        )
        # Build the whole version-1 state before the name becomes
        # visible, so a reader can never observe a half-registered
        # dataset.
        sky_ids = self._compute_skyline_ids(state, points, ids)
        state.maintainer = SkylineMaintainer.from_state(
            codec, points, ids, sky_ids, metrics=self.metrics
        )
        result = self._publish(state, rebuilt=False)
        with self._lock:
            if name in self._states:
                raise ConfigurationError(
                    f"dataset {name!r} is already registered"
                )
            self._states[name] = state
        return result

    def register_dataset(
        self,
        name: str,
        dataset: Dataset,
        bits_per_dim: int = 12,
        drift: Optional[DriftPolicy] = None,
        rebuild: Optional[RebuildConfig] = None,
    ) -> PublishResult:
        """Quantise a raw float dataset and register the grid version."""
        snapped, codec = quantize_dataset(dataset, bits_per_dim=bits_per_dim)
        return self.register(
            name,
            snapped.points,
            ids=snapped.ids,
            codec=codec,
            drift=drift,
            rebuild=rebuild,
        )

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------
    def names(self) -> List[str]:
        with self._lock:
            return sorted(self._states)

    def _state(self, name: str) -> _DatasetState:
        with self._lock:
            state = self._states.get(name)
        if state is None:
            raise DatasetError(f"dataset {name!r} is not registered")
        return state

    def snapshot(self, name: str) -> Snapshot:
        """The current snapshot (an atomic attribute read; never blocks
        on writers)."""
        snapshot = self._state(name).snapshot
        assert snapshot is not None  # set before registration returns
        return snapshot

    def snapshot_at(self, name: str, version: int) -> Snapshot:
        """A recent retained version (the retention ring is small; old
        versions a reader still references remain valid regardless)."""
        state = self._state(name)
        with state.lock:
            for snap in state.history:
                if snap.version == version:
                    return snap
        raise DatasetError(
            f"version {version} of {name!r} is no longer retained"
        )

    def version(self, name: str) -> int:
        return self.snapshot(name).version

    def is_skyline_member(self, name: str, point_id: int) -> bool:
        """Live skyline membership (the maintainer's cached id-set)."""
        state = self._state(name)
        with state.lock:
            return state.maintainer.is_skyline_member(point_id)

    # ------------------------------------------------------------------
    # mutations
    # ------------------------------------------------------------------
    def insert(
        self, name: str, points: np.ndarray, ids: Sequence[int]
    ) -> PublishResult:
        """Insert a batch and publish the next version."""
        state = self._state(name)
        points = np.asarray(points, dtype=np.float64)
        with state.lock:
            state.maintainer.insert_block(
                points, np.asarray(ids, dtype=np.int64)
            )
            rebuilt = self._maybe_rebuild(state)
            return self._publish(state, rebuilt=rebuilt)

    def delete(self, name: str, ids: Sequence[int]) -> PublishResult:
        """Delete a batch by id and publish the next version."""
        state = self._state(name)
        with state.lock:
            doomed = [int(i) for i in ids]
            state.maintainer.delete(doomed)
            state.deletes_since_rebuild += len(doomed)
            rebuilt = self._maybe_rebuild(state)
            return self._publish(state, rebuilt=rebuilt)

    # ------------------------------------------------------------------
    # internals (caller holds state.lock)
    # ------------------------------------------------------------------
    def _publish(self, state: _DatasetState, rebuilt: bool) -> PublishResult:
        previous = state.snapshot
        version = 1 if previous is None else previous.version + 1
        points, ids = state.maintainer.alive()
        sky_points, sky_ids = state.maintainer.skyline()
        snapshot = Snapshot.build(
            state.name, version, state.codec,
            points, ids, sky_points, sky_ids,
        )
        state.history.append(snapshot)
        # The single publication point: readers see old or new, nothing
        # in between.
        state.snapshot = snapshot
        if self.metrics is not None:
            self.metrics.inc(SERVING_GROUP, "publishes")
            if rebuilt:
                self.metrics.inc(SERVING_GROUP, "drift_rebuilds")
        return PublishResult(
            dataset=state.name,
            version=version,
            size=snapshot.size,
            skyline_size=snapshot.skyline_size,
            rebuilt=rebuilt,
        )

    def _maybe_rebuild(self, state: _DatasetState) -> bool:
        if not state.drift.should_rebuild(
            state.deletes_since_rebuild, state.maintainer.size
        ):
            return False
        points, ids = state.maintainer.alive()
        if points.shape[0] == 0:
            state.deletes_since_rebuild = 0
            return False
        sky_ids = self._compute_skyline_ids(state, points, ids)
        state.maintainer = SkylineMaintainer.from_state(
            state.codec, points, ids, sky_ids, metrics=self.metrics
        )
        state.deletes_since_rebuild = 0
        return True

    def _compute_skyline_ids(
        self, state: _DatasetState, points: np.ndarray, ids: np.ndarray
    ) -> np.ndarray:
        """Exact skyline ids of ``(points, ids)``.

        Large sets go through the full supervised pipeline (the paper's
        engine, with its partitioning/prefilter machinery); small sets
        Z-search a freshly built tree directly.
        """
        cfg = state.rebuild
        n = points.shape[0]
        if n >= cfg.min_pipeline_size:
            from repro.pipeline.supervisor import supervised_run

            sample_ratio = min(1.0, max(0.05, 256.0 / n))
            num_groups = max(1, min(cfg.num_groups, n // 32))
            report = supervised_run(
                cfg.plan,
                Dataset(points, ids=ids, name=f"{state.name}[rebuild]"),
                bits_per_dim=state.codec.bits_per_dim,
                num_workers=cfg.num_workers,
                num_groups=num_groups,
                sample_ratio=sample_ratio,
                executor=cfg.executor,
                seed=cfg.seed,
            )
            if self.metrics is not None:
                self.metrics.inc(SERVING_GROUP, "pipeline_rebuilds")
            return np.asarray(report.skyline.ids, dtype=np.int64)
        tree = build_zbtree(state.codec, points, ids=ids)
        _, sky_ids = zsearch(tree)
        return np.asarray(sky_ids, dtype=np.int64)
