"""The :class:`DatasetRegistry`: named datasets as versioned snapshots.

The registry is the serving layer's write path.  Each registered
dataset has

* a live :class:`~repro.maintenance.maintainer.SkylineMaintainer`
  (the incremental index — inserts are Z-merge folds, deletes
  re-promote shadowed points), owned exclusively by the writer;
* a current immutable :class:`~repro.serving.snapshot.Snapshot`,
  republished atomically after every mutation batch (readers never
  block writers; a reader holding version N keeps reading version N);
* a :class:`DriftPolicy` bounding how much incremental delete churn is
  tolerated before the skyline is recomputed from scratch with the
  full pipeline (:func:`repro.pipeline.supervisor.supervised_run`), so
  incremental error can never compound silently;
* optionally, a durable home (:class:`~repro.serving.wal.DatasetStore`):
  every mutation batch is appended to a CRC32-framed WAL *before* it is
  applied, and the full state is checkpointed (tmp+rename) every
  ``checkpoint_every`` publishes.  A crashed writer recovers by
  replaying WAL-onto-last-durable-snapshot (:meth:`recover`), and the
  republished snapshot is bit-identical — same alive set, same skyline,
  same version — to the uninterrupted run.

While a writer is down (a real crash, or one injected by a
:class:`~repro.serving.faults.ServingFaultPlan`), reads keep serving
the last published snapshot — bounded staleness, never an error — and
mutations fail fast with a typed
:class:`~repro.core.exceptions.WriterDownError` whose ``applied`` field
tells the caller whether the batch already reached the durable WAL
(and will therefore take effect on recovery).

The drift rebuild feeds the alive set back through the paper's
three-phase engine and adopts only the returned skyline *ids* — the
registry's own grid points are kept, so a rebuild changes no stored
coordinates.  (The pipeline re-quantises onto its own grid, but for
integer grid input with matching ``bits_per_dim`` that mapping is
strictly monotone per dimension, hence dominance-isomorphic, hence the
id set is exact.)
"""

from __future__ import annotations

import itertools
import threading
import time
from collections import deque
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass
from typing import Any, Callable, Deque, Dict, List, Optional, Sequence

import numpy as np

from repro.core.dataset import Dataset
from repro.core.exceptions import (
    ConfigurationError,
    DatasetError,
    WriterDownError,
)
from repro.maintenance.maintainer import SkylineMaintainer
from repro.observability.metrics import MetricsRegistry
from repro.serving.faults import ServingFaultPlan
from repro.serving.snapshot import Snapshot
from repro.serving.wal import DatasetStore, WalRecord
from repro.zorder.encoding import ZGridCodec, quantize_dataset
from repro.zorder.zbtree import build_zbtree
from repro.zorder.zsearch import zsearch

#: metrics group for registry-level events
SERVING_GROUP = "serving"

#: default retry-after hint handed to writers while the writer is down
_WRITER_RETRY_AFTER = 0.05


@dataclass(frozen=True)
class DriftPolicy:
    """When does accumulated delete churn force a full rebuild?

    Each delete of an existing point counts toward the drift budget;
    the budget resets on every full rebuild.  Either bound may be
    ``None`` (unbounded); with both ``None`` the policy is pure
    incremental maintenance (:meth:`never`).
    """

    #: absolute number of deleted records tolerated since last rebuild
    max_deletes: Optional[int] = None
    #: deleted records as a fraction of the current alive set size
    max_delete_fraction: Optional[float] = None

    def __post_init__(self) -> None:
        if self.max_deletes is not None and self.max_deletes < 0:
            raise ConfigurationError("max_deletes must be >= 0")
        if self.max_delete_fraction is not None and not (
            self.max_delete_fraction >= 0.0
        ):
            raise ConfigurationError("max_delete_fraction must be >= 0")

    @classmethod
    def never(cls) -> "DriftPolicy":
        """Pure incremental maintenance: no rebuild, ever."""
        return cls()

    @classmethod
    def bounded(
        cls,
        max_deletes: Optional[int] = None,
        max_delete_fraction: Optional[float] = 0.25,
    ) -> "DriftPolicy":
        """The default serving policy: rebuild once deletes since the
        last rebuild exceed 25% of the alive set (or an absolute cap)."""
        return cls(
            max_deletes=max_deletes,
            max_delete_fraction=max_delete_fraction,
        )

    def should_rebuild(self, deletes_since: int, alive: int) -> bool:
        if self.max_deletes is not None and deletes_since > self.max_deletes:
            return True
        if (
            self.max_delete_fraction is not None
            and alive > 0
            and deletes_since > self.max_delete_fraction * alive
        ):
            return True
        return False


@dataclass(frozen=True)
class RebuildConfig:
    """How drift rebuilds run the offline pipeline."""

    #: pipeline plan for the recompute
    plan: str = "ZHG+ZS"
    num_workers: int = 4
    num_groups: int = 16
    executor: str = "simulated"
    seed: int = 0
    #: below this alive-set size the rebuild short-circuits to a direct
    #: Z-search (the MapReduce pipeline has per-job overhead that only
    #: pays off at scale)
    min_pipeline_size: int = 512
    #: run the recompute asynchronously on the registry's
    #: :class:`RebuildPool` instead of inline in the writer thread;
    #: ignored when the registry has no pool.  Pooled mode never blocks
    #: a mutation on the recompute: the maintainer swap happens when the
    #: pooled result lands, and only if its base version is still
    #: current (incremental maintenance is exact, so a deferred swap is
    #: compaction, never correction).
    pooled: bool = False

    def __post_init__(self) -> None:
        if self.num_workers <= 0 or self.num_groups <= 0:
            raise ConfigurationError(
                "num_workers and num_groups must be positive"
            )
        if self.min_pipeline_size < 0:
            raise ConfigurationError("min_pipeline_size must be >= 0")


class RebuildPool:
    """Shared executor for :class:`DriftPolicy` recomputes.

    Inline drift rebuilds run the full pipeline in the writer thread
    under the dataset lock, so mutation p99 becomes the recompute's
    wall-clock.  The pool instead ships each recompute through the
    stateless ``RunRequest → execute()`` engine boundary onto a shared
    :class:`~repro.mapreduce.procpool.SharedProcessPoolCluster`
    (registered under a private executor name), sequenced by a single
    dispatch thread; writer threads keep accepting mutations and
    publishing incrementally-maintained snapshots the whole time.

    One pool can serve many registries (e.g. every shard registry of a
    :class:`~repro.serving.router.ShardedSkylineService`).  Pass
    ``executor="simulated"`` (or any registered executor name) to run
    recomputes in-process — same lifecycle, no worker processes; the
    deterministic choice for tests.  The owner calls :meth:`close`.
    """

    _seq = itertools.count()

    def __init__(
        self, num_workers: int = 4, executor: Optional[str] = None
    ) -> None:
        if num_workers <= 0:
            raise ConfigurationError("num_workers must be positive")
        self.num_workers = num_workers
        self._cluster = None
        self._owned_name: Optional[str] = None
        if executor is None:
            from repro.mapreduce.procpool import SharedProcessPoolCluster
            from repro.pipeline.driver import register_executor

            self._cluster = SharedProcessPoolCluster(num_workers)
            name = f"rebuild-pool-{next(self._seq)}"
            register_executor(
                name, lambda cfg, cluster=self._cluster: cluster
            )
            self._owned_name = name
            self.executor_name = name
        else:
            self.executor_name = executor
        self._dispatch = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="rebuild-pool"
        )
        self._lock = threading.Lock()
        self._closed = False
        self.submitted = 0
        self.completed = 0
        self.superseded = 0
        self.failed = 0

    @property
    def closed(self) -> bool:
        with self._lock:
            return self._closed

    def submit(self, fn) -> Future:
        with self._lock:
            if self._closed:
                raise ConfigurationError("rebuild pool is closed")
            self.submitted += 1
        return self._dispatch.submit(fn)

    def note(self, outcome: str) -> None:
        with self._lock:
            if outcome == "completed":
                self.completed += 1
            elif outcome == "superseded":
                self.superseded += 1
            else:
                self.failed += 1

    def stats(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "executor": self.executor_name,
                "num_workers": self.num_workers,
                "submitted": self.submitted,
                "completed": self.completed,
                "superseded": self.superseded,
                "failed": self.failed,
                "closed": self._closed,
            }

    def close(self) -> None:
        """Drain in-flight jobs, stop the dispatch thread, terminate the
        owned worker processes, and unregister the private executor."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
        self._dispatch.shutdown(wait=True)
        if self._cluster is not None:
            self._cluster.close()
        if self._owned_name is not None:
            from repro.pipeline.driver import EXECUTORS

            EXECUTORS.pop(self._owned_name, None)

    def __enter__(self) -> "RebuildPool":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"RebuildPool(executor={self.executor_name!r}, "
            f"workers={self.num_workers}, stats={self.stats()})"
        )


@dataclass(frozen=True)
class PublishResult:
    """Outcome of one mutation batch: the newly published version."""

    dataset: str
    version: int
    size: int
    skyline_size: int
    #: did this publish include a full drift rebuild?
    rebuilt: bool = False
    #: did this publish come from WAL replay after a crash?
    recovered: bool = False


class _DatasetState:
    """Writer-side state of one registered dataset."""

    __slots__ = (
        "name", "codec", "maintainer", "snapshot", "lock",
        "drift", "rebuild", "deletes_since_rebuild", "history",
        "store", "writer_down", "pending_batches",
        "publishes_since_checkpoint", "recoveries",
        "rebuild_in_flight", "rebuild_future",
        "pooled_rebuilds", "pooled_superseded",
    )

    def __init__(
        self,
        name: str,
        codec: ZGridCodec,
        maintainer: SkylineMaintainer,
        drift: DriftPolicy,
        rebuild: RebuildConfig,
        keep_versions: int,
    ) -> None:
        self.name = name
        self.codec = codec
        self.maintainer: Optional[SkylineMaintainer] = maintainer
        self.snapshot: Optional[Snapshot] = None
        self.lock = threading.Lock()
        self.drift = drift
        self.rebuild = rebuild
        self.deletes_since_rebuild = 0
        self.history: Deque[Snapshot] = deque(maxlen=max(1, keep_versions))
        self.store: Optional[DatasetStore] = None
        self.writer_down = False
        #: durable-but-unpublished WAL batches (crash between WAL
        #: append and publish)
        self.pending_batches = 0
        self.publishes_since_checkpoint = 0
        self.recoveries = 0
        #: a pooled drift recompute is out with the RebuildPool
        self.rebuild_in_flight = False
        self.rebuild_future: Optional[Future] = None
        self.pooled_rebuilds = 0
        self.pooled_superseded = 0


class DatasetRegistry:
    """Named, versioned, concurrently readable skyline datasets.

    All mutation goes through :meth:`insert` / :meth:`delete`, which
    serialise per dataset behind a writer lock and publish a fresh
    snapshot atomically.  Reads (:meth:`snapshot`) are a single
    attribute load and never block on writers.

    ``durability_dir`` turns on the WAL + checkpoint store (one
    subdirectory per dataset); ``fault_plan`` arms seeded writer-crash
    injection for chaos testing.
    """

    def __init__(
        self,
        metrics: Optional[MetricsRegistry] = None,
        keep_versions: int = 3,
        durability_dir: Optional[str] = None,
        checkpoint_every: int = 8,
        fault_plan: Optional[ServingFaultPlan] = None,
        rebuild_pool: Optional[RebuildPool] = None,
    ) -> None:
        if checkpoint_every < 1:
            raise ConfigurationError("checkpoint_every must be >= 1")
        self.metrics = metrics
        self._keep_versions = keep_versions
        self.durability_dir = durability_dir
        self.checkpoint_every = checkpoint_every
        self.fault_plan = fault_plan
        #: shared drift-recompute executor; datasets opt in per
        #: ``RebuildConfig.pooled``.  The pool's lifecycle belongs to
        #: whoever constructed it, not to this registry.
        self.rebuild_pool = rebuild_pool
        self._states: Dict[str, _DatasetState] = {}
        self._lock = threading.Lock()
        #: called with each freshly published Snapshot (see
        #: add_publish_hook for the contract)
        self._publish_hooks: List[Callable[[Snapshot], None]] = []

    @property
    def durable(self) -> bool:
        return self.durability_dir is not None

    # ------------------------------------------------------------------
    # registration
    # ------------------------------------------------------------------
    def register(
        self,
        name: str,
        points: np.ndarray,
        ids: Optional[np.ndarray] = None,
        codec: Optional[ZGridCodec] = None,
        drift: Optional[DriftPolicy] = None,
        rebuild: Optional[RebuildConfig] = None,
    ) -> PublishResult:
        """Register grid-resident points as version 1 of ``name``.

        ``points`` must already hold integer grid coordinates for
        ``codec`` (like everywhere else in the z-order stack); use
        :meth:`register_dataset` for raw float data.  The initial
        skyline is computed with the same machinery drift rebuilds use.
        """
        points = np.asarray(points, dtype=np.float64)
        if points.ndim != 2 or points.shape[0] == 0:
            raise DatasetError("need a non-empty (n, d) point matrix")
        n, d = points.shape
        if ids is None:
            ids = np.arange(n, dtype=np.int64)
        else:
            ids = np.asarray(ids, dtype=np.int64)
            if ids.shape != (n,) or len(np.unique(ids)) != n:
                raise DatasetError("ids must be unique, one per point")
        if codec is None:
            top = int(points.max()) if points.size else 1
            bits = max(1, top.bit_length())
            codec = ZGridCodec.grid_identity(d, bits_per_dim=bits)
        if codec.dimensions != d:
            raise DatasetError(
                f"codec is {codec.dimensions}-D but points are {d}-D"
            )
        if not (
            np.all(points == np.floor(points))
            and points.min() >= 0
            and points.max() < codec.cells_per_dim
        ):
            raise DatasetError(
                "points must be integer grid coordinates in "
                f"[0, {codec.cells_per_dim}) — quantise first "
                "(see register_dataset)"
            )
        state = _DatasetState(
            name,
            codec,
            SkylineMaintainer(codec, metrics=self.metrics),
            drift or DriftPolicy.bounded(),
            rebuild or RebuildConfig(),
            self._keep_versions,
        )
        # Build the whole version-1 state before the name becomes
        # visible, so a reader can never observe a half-registered
        # dataset.
        sky_ids = self._compute_skyline_ids(state, points, ids)
        state.maintainer = SkylineMaintainer.from_state(
            codec, points, ids, sky_ids, metrics=self.metrics
        )
        if self.durable:
            state.store = DatasetStore(self.durability_dir, name)
        result = self._publish(state, rebuilt=False)
        if state.store is not None:
            # Version 1 is the recovery baseline: checkpoint it (and
            # start an empty WAL) before the dataset becomes visible.
            self._checkpoint(state)
        with self._lock:
            if name in self._states:
                raise ConfigurationError(
                    f"dataset {name!r} is already registered"
                )
            self._states[name] = state
        return result

    def register_dataset(
        self,
        name: str,
        dataset: Dataset,
        bits_per_dim: int = 12,
        drift: Optional[DriftPolicy] = None,
        rebuild: Optional[RebuildConfig] = None,
    ) -> PublishResult:
        """Quantise a raw float dataset and register the grid version."""
        snapped, codec = quantize_dataset(dataset, bits_per_dim=bits_per_dim)
        return self.register(
            name,
            snapped.points,
            ids=snapped.ids,
            codec=codec,
            drift=drift,
            rebuild=rebuild,
        )

    # ------------------------------------------------------------------
    # publish hooks
    # ------------------------------------------------------------------
    def add_publish_hook(
        self, hook: Callable[[Snapshot], None]
    ) -> None:
        """Call ``hook(snapshot)`` after every snapshot publication.

        The contract is strict, because hooks run on the writer thread
        *under the dataset's writer lock*, immediately after the
        atomic snapshot swap (readers already see the new version):

        * a hook must be fast — O(diff computation), never O(dataset) —
          and must never block on consumers (hand off to bounded,
          non-blocking queues; see ``repro.streaming.hub``);
        * a hook must not call back into mutation or writer-lock-taking
          registry APIs (``insert``/``delete``/``snapshot_at``/
          ``recover``) — ``snapshot()`` is safe;
        * a hook exception is contained: counted in
          ``serving.publish_hook_errors``, never unpublishing the
          version or failing the mutation.

        Hooks also fire for recovery/adopt republishes (same dataset,
        same or reconstructed version) — consumers use the snapshot's
        version to recognise replays.
        """
        with self._lock:
            self._publish_hooks.append(hook)

    def remove_publish_hook(
        self, hook: Callable[[Snapshot], None]
    ) -> None:
        with self._lock:
            try:
                self._publish_hooks.remove(hook)
            except ValueError:
                pass

    def _notify_publish(self, snapshot: Snapshot) -> None:
        with self._lock:
            hooks = list(self._publish_hooks)
        for hook in hooks:
            try:
                hook(snapshot)
            except Exception:
                if self.metrics is not None:
                    self.metrics.inc(SERVING_GROUP, "publish_hook_errors")

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------
    def names(self) -> List[str]:
        with self._lock:
            return sorted(self._states)

    def _state(self, name: str) -> _DatasetState:
        with self._lock:
            state = self._states.get(name)
        if state is None:
            raise DatasetError(f"dataset {name!r} is not registered")
        return state

    def snapshot(self, name: str) -> Snapshot:
        """The current snapshot (an atomic attribute read; never blocks
        on writers)."""
        snapshot = self._state(name).snapshot
        assert snapshot is not None  # set before registration returns
        return snapshot

    def snapshot_at(self, name: str, version: int) -> Snapshot:
        """A recent retained version (the retention ring is small; old
        versions a reader still references remain valid regardless)."""
        state = self._state(name)
        with state.lock:
            for snap in state.history:
                if snap.version == version:
                    return snap
        raise DatasetError(
            f"version {version} of {name!r} is no longer retained"
        )

    def version(self, name: str) -> int:
        return self.snapshot(name).version

    def is_skyline_member(self, name: str, point_id: int) -> bool:
        """Live skyline membership (the maintainer's cached id-set).

        Falls back to the last published snapshot's skyline while the
        writer is down (bounded staleness, same as every other read).
        """
        state = self._state(name)
        with state.lock:
            if state.maintainer is not None:
                return state.maintainer.is_skyline_member(point_id)
        snapshot = self.snapshot(name)
        if snapshot.row_of(point_id) is None:
            raise DatasetError(f"point id {point_id} is not alive")
        return bool(np.any(snapshot.sky_ids == int(point_id)))

    def writer_status(self, name: str) -> Dict[str, Any]:
        """Typed writer-health snapshot (feeds query certificates).

        Deliberately lock-free: each field is a single atomic attribute
        read, so the read path never blocks behind an in-flight
        mutation (a momentarily stale answer is fine — the certificate
        describes the serving regime, not a transaction).
        """
        state = self._state(name)
        snapshot = state.snapshot
        return {
            "writer_down": state.writer_down,
            "pending_batches": state.pending_batches,
            "recoveries": state.recoveries,
            "published_version": snapshot.version if snapshot else 0,
        }

    # ------------------------------------------------------------------
    # mutations
    # ------------------------------------------------------------------
    def insert(
        self, name: str, points: np.ndarray, ids: Sequence[int]
    ) -> PublishResult:
        """Insert a batch and publish the next version."""
        state = self._state(name)
        points = np.asarray(points, dtype=np.float64)
        ids = np.asarray(ids, dtype=np.int64)
        with state.lock:
            self._require_writer(state)
            return self._mutate(state, "insert", points, ids)

    def delete(self, name: str, ids: Sequence[int]) -> PublishResult:
        """Delete a batch by id and publish the next version."""
        state = self._state(name)
        ids = np.asarray([int(i) for i in ids], dtype=np.int64)
        with state.lock:
            self._require_writer(state)
            return self._mutate(state, "delete", None, ids)

    # ------------------------------------------------------------------
    # recovery
    # ------------------------------------------------------------------
    def adopt(
        self,
        name: str,
        drift: Optional[DriftPolicy] = None,
        rebuild: Optional[RebuildConfig] = None,
    ) -> PublishResult:
        """Cold-start ``name`` from its durable home (checkpoint + WAL).

        :meth:`recover` heals a writer *within* a live registry; adopt
        is for when the whole owning process died — a fresh registry
        (pointed at the same ``durability_dir``) takes the dataset over
        by loading the checkpoint, replaying the WAL, and publishing the
        same bit-identical snapshot recovery would have.  This is what
        shard failover uses to stand up a replacement shard.
        """
        if not self.durable:
            raise ConfigurationError(
                "adopt() requires DatasetRegistry(durability_dir=...)"
            )
        store = DatasetStore(self.durability_dir, name)
        baseline = store.load_checkpoint()
        if baseline is None:
            raise ConfigurationError(
                f"dataset {name!r} has no durable checkpoint to adopt"
            )
        state = _DatasetState(
            name,
            baseline.codec,
            None,  # recover() rebuilds the maintainer from the baseline
            drift or DriftPolicy.bounded(),
            rebuild or RebuildConfig(),
            self._keep_versions,
        )
        state.store = store
        state.writer_down = True
        with self._lock:
            if name in self._states:
                raise ConfigurationError(
                    f"dataset {name!r} is already registered"
                )
            self._states[name] = state
        try:
            return self.recover(name)
        except BaseException:
            with self._lock:
                self._states.pop(name, None)
            raise

    def recover(self, name: str) -> PublishResult:
        """Replay WAL-onto-last-durable-checkpoint and republish.

        Rebuilds the writer's in-memory state from the durable baseline,
        re-applies every WAL batch beyond it (dropping at most one torn
        tail frame — a crash mid-append of an unacknowledged batch),
        republishes a snapshot bit-identical to the uninterrupted run at
        the same version, checkpoints the recovered state, and brings
        the writer back up.  Idempotent: recovering a healthy durable
        dataset is a no-op republish of the current version.
        """
        state = self._state(name)
        with state.lock:
            if state.store is None:
                raise ConfigurationError(
                    f"dataset {name!r} has no durable store; recovery "
                    "requires DatasetRegistry(durability_dir=...)"
                )
            baseline = state.store.load_checkpoint()
            if baseline is None:
                raise ConfigurationError(
                    f"dataset {name!r} has no durable checkpoint to "
                    "recover from"
                )
            maintainer = SkylineMaintainer.from_state(
                state.codec,
                baseline.points,
                baseline.ids,
                baseline.sky_ids,
                metrics=self.metrics,
            )
            state.maintainer = maintainer
            state.deletes_since_rebuild = baseline.deletes_since_rebuild
            replay = state.store.wal.replay()
            version = baseline.version
            replayed = 0
            expected = baseline.seq
            for record in replay.records:
                if record.seq <= baseline.seq:
                    continue
                if record.seq != expected + 1:
                    # The WAL itself is contiguous (replay() checks),
                    # so a gap here means the log lost its head across
                    # the checkpoint/rotation boundary — an
                    # acknowledged batch would vanish silently if we
                    # replayed past it.
                    raise ConfigurationError(
                        f"dataset {name!r}: WAL resumes at seq "
                        f"{record.seq} but the checkpoint ends at seq "
                        f"{baseline.seq}; refusing to recover across a "
                        "sequence gap at the rotation point"
                    )
                expected = record.seq
                if record.op == "insert":
                    maintainer.insert_block(
                        np.asarray(record.points, dtype=np.float64),
                        np.asarray(record.ids, dtype=np.int64),
                    )
                else:
                    maintainer.delete(list(record.ids))
                    state.deletes_since_rebuild += len(record.ids)
                self._maybe_rebuild(state, allow_pooled=False)
                # a drift rebuild swaps the maintainer object
                maintainer = state.maintainer
                version = record.seq
                replayed += 1
            state.writer_down = False
            state.pending_batches = 0
            state.recoveries += 1
            meta = {
                "recovered": True,
                "replayed_batches": replayed,
                "dropped_tail": replay.dropped_tail,
                "baseline_version": baseline.version,
            }
            result = self._publish(
                state, rebuilt=False, version=version, meta=meta,
                recovered=True,
            )
            # Recovery checkpoint: the next crash replays from here.
            self._checkpoint(state)
            if self.metrics is not None:
                self.metrics.inc(SERVING_GROUP, "writer_recoveries")
                self.metrics.inc(SERVING_GROUP, "wal_replayed", replayed)
                if replay.dropped_tail:
                    self.metrics.inc(
                        SERVING_GROUP, "wal_torn_tails", replay.dropped_tail
                    )
            return result

    # ------------------------------------------------------------------
    # internals (caller holds state.lock)
    # ------------------------------------------------------------------
    def _require_writer(self, state: _DatasetState) -> None:
        if state.writer_down:
            raise WriterDownError(
                f"writer for dataset {state.name!r} is down; reads are "
                "serving the last published snapshot — call recover() "
                "to replay the WAL",
                dataset=state.name,
                stale_version=(
                    state.snapshot.version if state.snapshot else 0
                ),
                applied=False,
                retry_after_seconds=_WRITER_RETRY_AFTER,
            )

    def _validate_batch(
        self,
        state: _DatasetState,
        op: str,
        points: Optional[np.ndarray],
        ids: np.ndarray,
    ) -> None:
        """Reject an inapplicable batch *before* it reaches the WAL.

        The log must only ever record batches that apply cleanly: a
        frame whose apply then fails would never publish its sequence
        number, the next batch would reuse it, and recovery would
        refuse the duplicate-seq log.  This is also what makes the
        service's recover-then-re-execute path safe — re-executing a
        batch that recovery already applied fails *here*, as a typed
        DatasetError, with the WAL untouched.
        """
        assert state.snapshot is not None
        alive = state.snapshot.ids
        if op == "insert":
            assert points is not None
            if points.ndim != 2 or ids.shape != (points.shape[0],):
                raise DatasetError("need (n, d) points and matching ids")
            if np.unique(ids).size != ids.size:
                raise DatasetError("duplicate ids within insert batch")
            clash = np.intersect1d(ids, alive)
            if clash.size:
                raise DatasetError(
                    f"point id {int(clash[0])} already alive"
                )
        else:
            missing = np.setdiff1d(ids, alive)
            if missing.size:
                raise DatasetError(
                    f"point ids not alive: {missing.tolist()}"
                )

    def _mutate(
        self,
        state: _DatasetState,
        op: str,
        points: Optional[np.ndarray],
        ids: np.ndarray,
    ) -> PublishResult:
        assert state.snapshot is not None and state.maintainer is not None
        self._validate_batch(state, op, points, ids)
        seq = state.snapshot.version + 1
        phase = (
            self.fault_plan.writer_crash_phase(
                state.name, seq, state.recoveries
            )
            if self.fault_plan is not None
            else None
        )
        if phase == "before":
            # Crash before the WAL append: the batch is lost entirely.
            self._crash_writer(state, seq, phase, applied=False)
        if state.store is not None:
            record = (
                WalRecord.insert(seq, points, ids)
                if op == "insert"
                else WalRecord.delete(seq, ids)
            )
            state.store.wal.append(record)
            if self.metrics is not None:
                self.metrics.inc(SERVING_GROUP, "wal_appends")
        if phase == "during":
            # Crash after the WAL append but before apply/publish: the
            # batch is durable and will take effect on recovery.
            durable = state.store is not None
            if durable:
                state.pending_batches += 1
            self._crash_writer(state, seq, phase, applied=durable)
        if op == "insert":
            state.maintainer.insert_block(points, ids)
        else:
            state.maintainer.delete([int(i) for i in ids])
            state.deletes_since_rebuild += len(ids)
        rebuilt = self._maybe_rebuild(state)
        result = self._publish(state, rebuilt=rebuilt)
        if phase == "after":
            # Crash after the publish: readers already see the new
            # version; only the writer's in-memory state is lost.
            self._crash_writer(state, seq, phase, applied=True)
        self._maybe_checkpoint(state)
        return result

    def _crash_writer(
        self,
        state: _DatasetState,
        seq: int,
        phase: str,
        applied: Optional[bool],
    ) -> None:
        """Simulate a writer process death: the in-memory incremental
        state is gone; only durable artefacts (WAL + checkpoint) and
        already-published snapshots survive."""
        state.writer_down = True
        state.maintainer = None
        if state.store is not None:
            state.store.wal.close()
        if self.metrics is not None:
            self.metrics.inc(SERVING_GROUP, "writer_crashes")
            self.metrics.inc(SERVING_GROUP, f"writer_crashes_{phase}")
        raise WriterDownError(
            f"writer for dataset {state.name!r} crashed {phase} "
            f"publishing batch seq={seq}",
            dataset=state.name,
            stale_version=state.snapshot.version if state.snapshot else 0,
            applied=applied,
            retry_after_seconds=_WRITER_RETRY_AFTER,
        )

    def _publish(
        self,
        state: _DatasetState,
        rebuilt: bool,
        version: Optional[int] = None,
        meta: Optional[Dict[str, Any]] = None,
        recovered: bool = False,
    ) -> PublishResult:
        assert state.maintainer is not None
        previous = state.snapshot
        if version is None:
            version = 1 if previous is None else previous.version + 1
        points, ids = state.maintainer.alive()
        sky_points, sky_ids = state.maintainer.skyline()
        snapshot = Snapshot.build(
            state.name, version, state.codec,
            points, ids, sky_points, sky_ids,
            meta=meta,
        )
        if state.history and state.history[-1].version == version:
            # Recovery republish of an already-published version:
            # replace it in the ring instead of duplicating.
            state.history.pop()
        state.history.append(snapshot)
        # The single publication point: readers see old or new, nothing
        # in between.
        state.snapshot = snapshot
        state.publishes_since_checkpoint += 1
        self._notify_publish(snapshot)
        if self.metrics is not None:
            self.metrics.inc(SERVING_GROUP, "publishes")
            if rebuilt:
                self.metrics.inc(SERVING_GROUP, "drift_rebuilds")
        return PublishResult(
            dataset=state.name,
            version=version,
            size=snapshot.size,
            skyline_size=snapshot.skyline_size,
            rebuilt=rebuilt,
            recovered=recovered,
        )

    def _maybe_checkpoint(self, state: _DatasetState) -> None:
        if (
            state.store is not None
            and state.publishes_since_checkpoint >= self.checkpoint_every
        ):
            self._checkpoint(state)

    def _checkpoint(self, state: _DatasetState) -> None:
        assert state.store is not None and state.maintainer is not None
        assert state.snapshot is not None
        points, ids = state.maintainer.alive()
        _, sky_ids = state.maintainer.skyline()
        state.store.save_checkpoint(
            state.codec,
            seq=state.snapshot.version,
            version=state.snapshot.version,
            points=points,
            ids=ids,
            sky_ids=sky_ids,
            deletes_since_rebuild=state.deletes_since_rebuild,
        )
        state.publishes_since_checkpoint = 0
        if self.metrics is not None:
            self.metrics.inc(SERVING_GROUP, "checkpoints")

    def _maybe_rebuild(
        self, state: _DatasetState, allow_pooled: bool = True
    ) -> bool:
        """Drift check + rebuild.  Inline mode recomputes here, in the
        writer thread, and returns True so the publish is flagged
        ``rebuilt``.  Pooled mode (``RebuildConfig.pooled`` on a
        registry with a :class:`RebuildPool`) only *requests* the
        recompute and returns False — the publish proceeds from
        incremental state immediately, and the maintainer swap happens
        when the pooled result lands (if still current).  Recovery
        passes ``allow_pooled=False``: WAL replay must stay a
        deterministic, single-threaded reconstruction."""
        assert state.maintainer is not None
        if not state.drift.should_rebuild(
            state.deletes_since_rebuild, state.maintainer.size
        ):
            return False
        points, ids = state.maintainer.alive()
        if points.shape[0] == 0:
            state.deletes_since_rebuild = 0
            return False
        if (
            allow_pooled
            and state.rebuild.pooled
            and self.rebuild_pool is not None
            and not self.rebuild_pool.closed
        ):
            # Called from _mutate after the batch applied but before its
            # publish, so this alive set becomes version current+1.
            base = (
                state.snapshot.version + 1
                if state.snapshot is not None
                else 1
            )
            self._request_pooled_rebuild(state, points, ids, base)
            return False
        sky_ids = self._compute_skyline_ids(state, points, ids)
        state.maintainer = SkylineMaintainer.from_state(
            state.codec, points, ids, sky_ids, metrics=self.metrics
        )
        state.deletes_since_rebuild = 0
        return True

    def _request_pooled_rebuild(
        self,
        state: _DatasetState,
        points: np.ndarray,
        ids: np.ndarray,
        base_version: int,
    ) -> None:
        """Ship one recompute to the pool (caller holds ``state.lock``).

        At most one job per dataset is in flight; while one is out,
        further drift triggers are absorbed (``deletes_since_rebuild``
        is not reset, so if the job comes back superseded the very next
        mutation re-arms the rebuild with fresher state).
        """
        if state.rebuild_in_flight:
            return
        assert self.rebuild_pool is not None
        state.rebuild_in_flight = True
        state.rebuild_future = self.rebuild_pool.submit(
            lambda: self._pooled_recompute(state, points, ids, base_version)
        )
        if self.metrics is not None:
            self.metrics.inc(SERVING_GROUP, "pooled_rebuild_requests")

    def _pooled_recompute(
        self,
        state: _DatasetState,
        points: np.ndarray,
        ids: np.ndarray,
        base_version: int,
    ) -> bool:
        """Pool-side recompute + version-checked adoption.

        Runs on the pool's dispatch thread *without* the dataset lock —
        writers publish freely meanwhile.  The swap takes the lock only
        at the end and lands only when the published version still
        equals the recompute's base: the captured alive set is then
        exactly the current alive set, so swapping maintainers changes
        no observable state (the recomputed skyline equals the
        incrementally maintained one — maintenance is exact; the swap
        buys a compacted tree and a reset drift budget).  Anything else
        — newer publish, writer crash — discards the result.
        """
        assert self.rebuild_pool is not None
        try:
            sky_ids = self._pooled_skyline_ids(state, points, ids)
        except Exception:
            with state.lock:
                state.rebuild_in_flight = False
            self.rebuild_pool.note("failed")
            if self.metrics is not None:
                self.metrics.inc(SERVING_GROUP, "pooled_rebuild_failures")
            return False
        with state.lock:
            state.rebuild_in_flight = False
            current = (
                state.snapshot.version if state.snapshot is not None else 0
            )
            if (
                state.writer_down
                or state.maintainer is None
                or current != base_version
            ):
                state.pooled_superseded += 1
                self.rebuild_pool.note("superseded")
                if self.metrics is not None:
                    self.metrics.inc(
                        SERVING_GROUP, "pooled_rebuilds_superseded"
                    )
                return False
            state.maintainer = SkylineMaintainer.from_state(
                state.codec, points, ids, sky_ids, metrics=self.metrics
            )
            state.deletes_since_rebuild = 0
            state.pooled_rebuilds += 1
        self.rebuild_pool.note("completed")
        if self.metrics is not None:
            self.metrics.inc(SERVING_GROUP, "drift_rebuilds")
            self.metrics.inc(SERVING_GROUP, "pooled_rebuilds")
        return True

    def _pooled_skyline_ids(
        self, state: _DatasetState, points: np.ndarray, ids: np.ndarray
    ) -> np.ndarray:
        """Exact skyline ids via the stateless ``RunRequest →
        execute()`` boundary on the pool's executor (small sets
        Z-search directly, mirroring the inline path)."""
        cfg = state.rebuild
        pool = self.rebuild_pool
        assert pool is not None
        n = points.shape[0]
        if n < cfg.min_pipeline_size:
            tree = build_zbtree(state.codec, points, ids=ids)
            _, sky_ids = zsearch(tree)
            return np.asarray(sky_ids, dtype=np.int64)
        from repro.pipeline.driver import EngineConfig, RunRequest, execute

        sample_ratio = min(1.0, max(0.05, 256.0 / n))
        num_groups = max(1, min(cfg.num_groups, n // 32))
        config = EngineConfig.from_plan_string(
            cfg.plan,
            bits_per_dim=state.codec.bits_per_dim,
            num_workers=pool.num_workers,
            num_groups=num_groups,
            sample_ratio=sample_ratio,
            executor=pool.executor_name,
            seed=cfg.seed,
        )
        result = execute(
            RunRequest(
                dataset=Dataset(
                    points, ids=ids, name=f"{state.name}[rebuild]"
                ),
                config=config,
            )
        )
        if self.metrics is not None:
            self.metrics.inc(SERVING_GROUP, "pipeline_rebuilds")
        return np.asarray(result.skyline.ids, dtype=np.int64)

    def flush_rebuilds(
        self, name: Optional[str] = None, timeout: float = 60.0
    ) -> None:
        """Quiesce pooled rebuilds: block until no job is in flight for
        ``name`` (default: every dataset) *and* drift no longer wants
        one — outstanding drift is re-armed and awaited here, so tests
        and benchmarks get a deterministic final state.  No-op without
        a pool."""
        if self.rebuild_pool is None:
            return
        deadline = time.monotonic() + timeout
        with self._lock:
            names = [name] if name is not None else list(self._states)
        for dataset in names:
            state = self._state(dataset)
            while True:
                future: Optional[Future] = None
                with state.lock:
                    if (
                        state.writer_down
                        or state.maintainer is None
                        or not state.rebuild.pooled
                    ):
                        break
                    if state.rebuild_in_flight:
                        future = state.rebuild_future
                    elif state.drift.should_rebuild(
                        state.deletes_since_rebuild, state.maintainer.size
                    ):
                        points, ids = state.maintainer.alive()
                        if points.shape[0] == 0:
                            state.deletes_since_rebuild = 0
                            break
                        version = (
                            state.snapshot.version
                            if state.snapshot is not None
                            else 0
                        )
                        self._request_pooled_rebuild(
                            state, points, ids, version
                        )
                        future = state.rebuild_future
                    else:
                        break
                if future is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        raise DatasetError(
                            f"flush_rebuilds({dataset!r}) timed out "
                            f"after {timeout}s"
                        )
                    future.result(timeout=remaining)

    def rebuild_status(self, name: str) -> Dict[str, Any]:
        """Pooled-rebuild bookkeeping for one dataset."""
        state = self._state(name)
        with state.lock:
            return {
                "pooled": (
                    state.rebuild.pooled and self.rebuild_pool is not None
                ),
                "in_flight": state.rebuild_in_flight,
                "pooled_rebuilds": state.pooled_rebuilds,
                "pooled_superseded": state.pooled_superseded,
                "deletes_since_rebuild": state.deletes_since_rebuild,
            }

    def _compute_skyline_ids(
        self, state: _DatasetState, points: np.ndarray, ids: np.ndarray
    ) -> np.ndarray:
        """Exact skyline ids of ``(points, ids)``.

        Large sets go through the full supervised pipeline (the paper's
        engine, with its partitioning/prefilter machinery); small sets
        Z-search a freshly built tree directly.
        """
        cfg = state.rebuild
        n = points.shape[0]
        if n >= cfg.min_pipeline_size:
            from repro.pipeline.supervisor import supervised_run

            sample_ratio = min(1.0, max(0.05, 256.0 / n))
            num_groups = max(1, min(cfg.num_groups, n // 32))
            report = supervised_run(
                cfg.plan,
                Dataset(points, ids=ids, name=f"{state.name}[rebuild]"),
                bits_per_dim=state.codec.bits_per_dim,
                num_workers=cfg.num_workers,
                num_groups=num_groups,
                sample_ratio=sample_ratio,
                executor=cfg.executor,
                seed=cfg.seed,
            )
            if self.metrics is not None:
                self.metrics.inc(SERVING_GROUP, "pipeline_rebuilds")
            return np.asarray(report.skyline.ids, dtype=np.int64)
        tree = build_zbtree(state.codec, points, ids=ids)
        _, sky_ids = zsearch(tree)
        return np.asarray(sky_ids, dtype=np.int64)
