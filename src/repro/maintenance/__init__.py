"""Incremental skyline maintenance over a dynamic point set.

The paper computes one-shot skylines; a natural extension (and the
reason its Z-merge is tree-based at all) is *maintaining* the skyline as
points arrive and leave.  :class:`~repro.maintenance.maintainer.SkylineMaintainer`
keeps the skyline of a changing set:

* **insertions** fold a batch's local skyline into the maintained
  ZB-tree with Z-merge — exactly the paper's phase-2 machinery;
* **deletions** are the asymmetric hard case: removing a skyline point
  may surface points it exclusively dominated, so the maintainer
  re-examines the deleted points' dominance regions.
"""

from repro.maintenance.maintainer import SkylineMaintainer
from repro.maintenance.window import SlidingWindowSkyline

__all__ = ["SkylineMaintainer", "SlidingWindowSkyline"]
