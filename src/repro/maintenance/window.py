"""Sliding-window skyline (the n-of-N streaming model).

"Show me the best trade-offs among the most recent W records" — the
streaming counterpart of the skyline query.  Built directly on
:class:`~repro.maintenance.maintainer.SkylineMaintainer`: appending a
record inserts it and expires whatever fell out of the window, reusing
the insert/delete machinery (Z-merge + exclusive-region re-promotion).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Sequence, Tuple

import numpy as np

from repro.core.exceptions import DatasetError
from repro.maintenance.maintainer import SkylineMaintainer
from repro.zorder.encoding import ZGridCodec


class SlidingWindowSkyline:
    """Skyline over the last ``window_size`` appended points."""

    def __init__(self, codec: ZGridCodec, window_size: int) -> None:
        if window_size <= 0:
            raise DatasetError("window_size must be positive")
        self.window_size = window_size
        self._maintainer = SkylineMaintainer(codec)
        self._window: Deque[int] = deque()
        self._next_id = 0

    @property
    def size(self) -> int:
        """Number of points currently in the window."""
        return len(self._window)

    @property
    def skyline_size(self) -> int:
        return self._maintainer.skyline_size

    def skyline(self) -> Tuple[np.ndarray, np.ndarray]:
        """Current window skyline as ``(points, ids)``."""
        return self._maintainer.skyline()

    def append(self, point: Sequence[float]) -> int:
        """Append one point; expire the oldest when the window is full.

        Returns the id assigned to the appended point (monotonically
        increasing arrival order).
        """
        point_id = self._next_id
        self._next_id += 1
        self._maintainer.insert(
            np.asarray(point, dtype=np.float64), point_id
        )
        self._window.append(point_id)
        if len(self._window) > self.window_size:
            expired = self._window.popleft()
            self._maintainer.delete([expired])
        return point_id

    def extend(self, points: np.ndarray) -> np.ndarray:
        """Append a batch in arrival order; one maintainer insert and
        one delete regardless of batch size.

        Final window state is identical to per-point :meth:`append`
        (same ids, same survivors, same skyline): batch rows that the
        batch itself would immediately expire never reach the
        maintainer, and everything that falls out of the window leaves
        in a single delete.  Returns the assigned ids of *all* batch
        rows, expired-in-batch ones included.
        """
        points = np.asarray(points, dtype=np.float64)
        if points.ndim != 2:
            raise DatasetError("need an (n, d) point matrix")
        n = points.shape[0]
        ids = np.arange(self._next_id, self._next_id + n, dtype=np.int64)
        self._next_id += n
        if n == 0:
            return ids
        # Only the batch tail can survive: rows before it are pushed
        # out by the rest of the batch alone.
        keep = min(n, self.window_size)
        self._maintainer.insert_block(points[n - keep:], ids[n - keep:])
        self._window.extend(int(i) for i in ids[n - keep:])
        expired = []
        while len(self._window) > self.window_size:
            expired.append(self._window.popleft())
        if expired:
            self._maintainer.delete(expired)
        return ids

    def window_ids(self) -> Tuple[int, ...]:
        """Ids currently inside the window, oldest first."""
        return tuple(self._window)

    def verify(self) -> None:
        """Testing hook: cross-check against the oracle."""
        self._maintainer.verify()
