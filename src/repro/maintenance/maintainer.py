"""The :class:`SkylineMaintainer`: skyline of a dynamic point set.

State: an *archive* of every alive point (id -> grid point) plus the
maintained skyline as a ZB-tree.  Inserts are Z-merge folds; deletes
re-promote archived points that were exclusively dominated by removed
skyline members.

All points must already live on the maintainer's grid (integer-valued
coordinates for the configured codec), like everywhere else in the
z-order stack; use :func:`repro.zorder.encoding.quantize_dataset` first
for float data.
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

import numpy as np

from repro.core.exceptions import DatasetError
from repro.core.point import dominated_mask
from repro.zorder.encoding import ZGridCodec
from repro.zorder.zbtree import OpCounter, ZBTree, build_zbtree
from repro.zorder.zmerge import zmerge
from repro.zorder.zsearch import zsearch


class SkylineMaintainer:
    """Maintain the skyline of a set under inserts and deletes."""

    def __init__(self, codec: ZGridCodec) -> None:
        self.codec = codec
        self.counter = OpCounter()
        self._archive: Dict[int, np.ndarray] = {}
        self._sky: ZBTree = build_zbtree(codec, np.empty((0, codec.dimensions)))

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        """Number of alive points."""
        return len(self._archive)

    @property
    def skyline_size(self) -> int:
        return self._sky.size

    def skyline(self) -> Tuple[np.ndarray, np.ndarray]:
        """Current skyline as ``(points, ids)`` in Z-order."""
        _, points, ids = self._sky.collect()
        return points, ids

    def is_skyline_member(self, point_id: int) -> bool:
        """Is the given alive point currently on the skyline?"""
        if point_id not in self._archive:
            raise DatasetError(f"point id {point_id} is not alive")
        return point_id in set(self._sky.ids().tolist())

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------
    def insert(self, point: Sequence[float], point_id: int) -> None:
        """Insert one point (convenience wrapper over insert_block)."""
        self.insert_block(
            np.asarray(point, dtype=np.float64)[None, :],
            np.asarray([point_id], dtype=np.int64),
        )

    def insert_block(self, points: np.ndarray, ids: np.ndarray) -> None:
        """Insert a batch of points.

        The batch's own skyline is computed first (cheap, local), then
        Z-merged into the maintained skyline tree — the same fold the
        distributed pipeline's phase 2 performs.
        """
        points = np.asarray(points, dtype=np.float64)
        ids = np.asarray(ids, dtype=np.int64)
        if points.ndim != 2 or ids.shape != (points.shape[0],):
            raise DatasetError("need (n, d) points and matching ids")
        for pid in ids:
            if int(pid) in self._archive:
                raise DatasetError(f"point id {int(pid)} already alive")
        for pid, row in zip(ids, points):
            self._archive[int(pid)] = row.copy()
        batch_tree = build_zbtree(self.codec, points, ids=ids)
        batch_sky, batch_ids = zsearch(batch_tree, self.counter)
        src = build_zbtree(self.codec, batch_sky, ids=batch_ids)
        self._sky = zmerge(self._sky, src, self.counter)

    def delete(self, point_ids: Sequence[int]) -> None:
        """Delete a batch of points by id.

        Deleting non-skyline points never changes the skyline.  For each
        deleted *skyline* point, archived points inside its dominance
        region are candidates to surface; the union of survivors' local
        skyline is Z-merged back in.
        """
        doomed = {int(pid) for pid in point_ids}
        missing = doomed - set(self._archive)
        if missing:
            raise DatasetError(f"point ids not alive: {sorted(missing)}")

        sky_ids = set(self._sky.ids().tolist())
        deleted_sky = doomed & sky_ids
        deleted_sky_points = np.array(
            [self._archive[pid] for pid in deleted_sky]
        ).reshape(len(deleted_sky), self.codec.dimensions)

        for pid in doomed:
            del self._archive[pid]

        if not deleted_sky:
            return

        # Rebuild the skyline tree without the deleted members.
        _, points, ids = self._sky.collect()
        keep = np.array([int(i) not in doomed for i in ids], dtype=bool)
        self._sky = build_zbtree(self.codec, points[keep], ids=ids[keep])

        if not self._archive:
            return
        # Candidates: alive points dominated by some deleted skyline
        # point (only they can have been shadowed exclusively by it).
        alive_ids = np.fromiter(self._archive, dtype=np.int64)
        alive_points = np.vstack([self._archive[int(i)] for i in alive_ids])
        self.counter.point_tests += alive_points.shape[0] * max(
            deleted_sky_points.shape[0], 1
        )
        shadowed = dominated_mask(alive_points, deleted_sky_points)
        if not shadowed.any():
            return
        cand_points = alive_points[shadowed]
        cand_ids = alive_ids[shadowed]
        cand_tree = build_zbtree(self.codec, cand_points, ids=cand_ids)
        cand_sky, cand_sky_ids = zsearch(cand_tree, self.counter)
        src = build_zbtree(self.codec, cand_sky, ids=cand_sky_ids)
        self._sky = zmerge(self._sky, src, self.counter)

    # ------------------------------------------------------------------
    def verify(self) -> None:
        """Cross-check the maintained skyline against the oracle
        (testing hook; O(n^2 / sorted) over the alive set)."""
        from repro.core.skyline import is_skyline_of

        if not self._archive:
            if self.skyline_size != 0:
                raise DatasetError("skyline non-empty for empty archive")
            return
        alive = np.vstack(list(self._archive.values()))
        points, _ = self.skyline()
        if not is_skyline_of(points, alive):
            raise DatasetError("maintained skyline diverged from oracle")
