"""The :class:`SkylineMaintainer`: skyline of a dynamic point set.

State: an *archive* of every alive point (id -> grid point) plus the
maintained skyline as a ZB-tree.  Inserts are Z-merge folds; deletes
re-promote archived points that were exclusively dominated by removed
skyline members.

All points must already live on the maintainer's grid (integer-valued
coordinates for the configured codec), like everywhere else in the
z-order stack; use :func:`repro.zorder.encoding.quantize_dataset` first
for float data.
"""

from __future__ import annotations

import time
from typing import Dict, FrozenSet, Optional, Sequence, Tuple

import numpy as np

from repro.core.exceptions import DatasetError
from repro.core.point import dominated_mask
from repro.observability.metrics import MetricsRegistry
from repro.zorder.encoding import ZGridCodec
from repro.zorder.zbtree import OpCounter, ZBTree, build_zbtree
from repro.zorder.zmerge import zmerge
from repro.zorder.zsearch import zsearch

#: metrics group all maintainer observations are filed under
MAINTENANCE_GROUP = "maintenance"


class SkylineMaintainer:
    """Maintain the skyline of a set under inserts and deletes.

    ``metrics``, when given, receives per-operation accounting under the
    ``maintenance`` counter group (operation and record counts plus the
    dominance-test deltas of each op) and ``maintenance.*_seconds``
    timers, so a service embedding a maintainer can see what its write
    path costs alongside the serving-side metrics.
    """

    def __init__(
        self,
        codec: ZGridCodec,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self.codec = codec
        self.counter = OpCounter()
        self.metrics = metrics
        self._archive: Dict[int, np.ndarray] = {}
        self._sky: ZBTree = build_zbtree(codec, np.empty((0, codec.dimensions)))
        #: cached skyline id-set; invalidated on every mutation and
        #: rebuilt lazily so membership probes are O(1) between updates
        self._sky_id_cache: Optional[FrozenSet[int]] = None

    @classmethod
    def from_state(
        cls,
        codec: ZGridCodec,
        points: np.ndarray,
        ids: np.ndarray,
        skyline_ids: Sequence[int],
        metrics: Optional[MetricsRegistry] = None,
    ) -> "SkylineMaintainer":
        """Adopt precomputed state without re-deriving the skyline.

        ``skyline_ids`` must identify the exact skyline rows of
        ``(points, ids)`` — e.g. the output of a full pipeline run.  The
        drift-rebuild path uses this to swap a freshly recomputed
        skyline in beneath an unchanged archive.
        """
        points = np.asarray(points, dtype=np.float64)
        ids = np.asarray(ids, dtype=np.int64)
        if points.ndim != 2 or ids.shape != (points.shape[0],):
            raise DatasetError("need (n, d) points and matching ids")
        maintainer = cls(codec, metrics=metrics)
        for pid, row in zip(ids, points):
            maintainer._archive[int(pid)] = row.copy()
        sky_set = {int(pid) for pid in skyline_ids}
        missing = sky_set - set(maintainer._archive)
        if missing:
            raise DatasetError(
                f"skyline ids not present in archive: {sorted(missing)[:5]}"
            )
        keep = np.array([int(i) in sky_set for i in ids], dtype=bool)
        maintainer._sky = build_zbtree(codec, points[keep], ids=ids[keep])
        return maintainer

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        """Number of alive points."""
        return len(self._archive)

    @property
    def skyline_size(self) -> int:
        return self._sky.size

    def skyline(self) -> Tuple[np.ndarray, np.ndarray]:
        """Current skyline as ``(points, ids)`` in Z-order."""
        _, points, ids = self._sky.collect()
        return points, ids

    def alive(self) -> Tuple[np.ndarray, np.ndarray]:
        """Every alive point as ``(points, ids)`` in insertion order."""
        if not self._archive:
            d = self.codec.dimensions
            return np.empty((0, d)), np.empty(0, dtype=np.int64)
        ids = np.fromiter(self._archive, dtype=np.int64)
        points = np.vstack([self._archive[int(i)] for i in ids])
        return points, ids

    def skyline_id_set(self) -> FrozenSet[int]:
        """The skyline's id-set, cached between mutations (O(1) reads)."""
        cached = self._sky_id_cache
        if cached is None:
            cached = frozenset(int(i) for i in self._sky.ids())
            self._sky_id_cache = cached
        return cached

    def is_skyline_member(self, point_id: int) -> bool:
        """Is the given alive point currently on the skyline?

        O(1) against the cached id-set (rebuilt at most once per
        mutation) — the serving layer probes this per explain-query.
        """
        if point_id not in self._archive:
            raise DatasetError(f"point id {point_id} is not alive")
        return point_id in self.skyline_id_set()

    # ------------------------------------------------------------------
    # Metrics
    # ------------------------------------------------------------------
    def _record_op(
        self,
        op: str,
        records: int,
        before: Tuple[int, int, int],
        started: float,
    ) -> None:
        registry = self.metrics
        if registry is None:
            return
        registry.inc(MAINTENANCE_GROUP, f"{op}s")
        registry.inc(MAINTENANCE_GROUP, f"{op}_records", records)
        registry.inc(
            MAINTENANCE_GROUP, "point_tests",
            self.counter.point_tests - before[0],
        )
        registry.inc(
            MAINTENANCE_GROUP, "region_tests",
            self.counter.region_tests - before[1],
        )
        registry.inc(
            MAINTENANCE_GROUP, "nodes_visited",
            self.counter.nodes_visited - before[2],
        )
        registry.record_time(
            f"maintenance.{op}_seconds", time.perf_counter() - started
        )

    def _counter_snapshot(self) -> Tuple[int, int, int]:
        return (
            self.counter.point_tests,
            self.counter.region_tests,
            self.counter.nodes_visited,
        )

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------
    def insert(self, point: Sequence[float], point_id: int) -> None:
        """Insert one point (convenience wrapper over insert_block)."""
        self.insert_block(
            np.asarray(point, dtype=np.float64)[None, :],
            np.asarray([point_id], dtype=np.int64),
        )

    def insert_block(self, points: np.ndarray, ids: np.ndarray) -> None:
        """Insert a batch of points.

        The batch's own skyline is computed first (cheap, local), then
        Z-merged into the maintained skyline tree — the same fold the
        distributed pipeline's phase 2 performs.
        """
        started = time.perf_counter()
        before = self._counter_snapshot()
        points = np.asarray(points, dtype=np.float64)
        ids = np.asarray(ids, dtype=np.int64)
        if points.ndim != 2 or ids.shape != (points.shape[0],):
            raise DatasetError("need (n, d) points and matching ids")
        for pid in ids:
            if int(pid) in self._archive:
                raise DatasetError(f"point id {int(pid)} already alive")
        for pid, row in zip(ids, points):
            self._archive[int(pid)] = row.copy()
        batch_tree = build_zbtree(self.codec, points, ids=ids)
        batch_sky, batch_ids = zsearch(batch_tree, self.counter)
        src = build_zbtree(self.codec, batch_sky, ids=batch_ids)
        self._sky = zmerge(self._sky, src, self.counter)
        self._sky_id_cache = None
        self._record_op("insert", int(ids.shape[0]), before, started)

    def delete(self, point_ids: Sequence[int]) -> None:
        """Delete a batch of points by id.

        Deleting non-skyline points never changes the skyline.  For each
        deleted *skyline* point, archived points inside its dominance
        region are candidates to surface; the union of survivors' local
        skyline is Z-merged back in.
        """
        started = time.perf_counter()
        before = self._counter_snapshot()
        doomed = {int(pid) for pid in point_ids}
        missing = doomed - set(self._archive)
        if missing:
            raise DatasetError(f"point ids not alive: {sorted(missing)}")
        try:
            self._delete_impl(doomed)
        finally:
            self._sky_id_cache = None
        self._record_op("delete", len(doomed), before, started)

    def _delete_impl(self, doomed: set) -> None:
        sky_ids = self.skyline_id_set()
        deleted_sky = doomed & sky_ids
        deleted_sky_points = np.array(
            [self._archive[pid] for pid in deleted_sky]
        ).reshape(len(deleted_sky), self.codec.dimensions)

        for pid in doomed:
            del self._archive[pid]

        if not deleted_sky:
            return

        # Rebuild the skyline tree without the deleted members.
        _, points, ids = self._sky.collect()
        keep = np.array([int(i) not in doomed for i in ids], dtype=bool)
        self._sky = build_zbtree(self.codec, points[keep], ids=ids[keep])

        if not self._archive:
            return
        # Candidates: alive points dominated by some deleted skyline
        # point (only they can have been shadowed exclusively by it).
        alive_ids = np.fromiter(self._archive, dtype=np.int64)
        alive_points = np.vstack([self._archive[int(i)] for i in alive_ids])
        self.counter.point_tests += alive_points.shape[0] * max(
            deleted_sky_points.shape[0], 1
        )
        shadowed = dominated_mask(alive_points, deleted_sky_points)
        if not shadowed.any():
            return
        cand_points = alive_points[shadowed]
        cand_ids = alive_ids[shadowed]
        cand_tree = build_zbtree(self.codec, cand_points, ids=cand_ids)
        cand_sky, cand_sky_ids = zsearch(cand_tree, self.counter)
        src = build_zbtree(self.codec, cand_sky, ids=cand_sky_ids)
        self._sky = zmerge(self._sky, src, self.counter)

    # ------------------------------------------------------------------
    def verify(self) -> None:
        """Cross-check the maintained skyline against the oracle
        (testing hook; O(n^2 / sorted) over the alive set)."""
        from repro.core.skyline import is_skyline_of

        if not self._archive:
            if self.skyline_size != 0:
                raise DatasetError("skyline non-empty for empty archive")
            return
        alive = np.vstack(list(self._archive.values()))
        points, _ = self.skyline()
        if not is_skyline_of(points, alive):
            raise DatasetError("maintained skyline diverged from oracle")
