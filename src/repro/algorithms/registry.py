"""Name-based lookup of local skyline algorithms.

The paper refers to local algorithms by short names (SB, ZS); plan strings
like ``"ZDG+ZS+ZM"`` resolve their middle component here.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple

import numpy as np

from repro.algorithms.bbs import bbs_skyline
from repro.algorithms.bitstring import bitstring_skyline
from repro.algorithms.bnl import bnl_skyline
from repro.algorithms.dnc import dnc_skyline
from repro.algorithms.salsa import salsa_skyline
from repro.algorithms.sfs import sort_based_skyline
from repro.algorithms.zs import zs_skyline
from repro.core.exceptions import ConfigurationError
from repro.zorder.zbtree import OpCounter

SkylineAlgorithm = Callable[
    [np.ndarray, Optional[np.ndarray], Optional[OpCounter]],
    Tuple[np.ndarray, np.ndarray],
]

_REGISTRY: Dict[str, SkylineAlgorithm] = {
    "BNL": bnl_skyline,
    "SB": sort_based_skyline,
    "SFS": sort_based_skyline,
    "ZS": zs_skyline,
    "DNC": dnc_skyline,
    "BBS": bbs_skyline,
    "SALSA": salsa_skyline,
    "BITSTRING": bitstring_skyline,
}


def get_algorithm(name: str) -> SkylineAlgorithm:
    """Resolve a paper-style algorithm name (case-insensitive)."""
    key = name.strip().upper()
    if key not in _REGISTRY:
        raise ConfigurationError(
            f"unknown skyline algorithm {name!r}; "
            f"choose one of {sorted(_REGISTRY)}"
        )
    return _REGISTRY[key]


def available_algorithms() -> Tuple[str, ...]:
    """Names accepted by :func:`get_algorithm`."""
    return tuple(sorted(_REGISTRY))
