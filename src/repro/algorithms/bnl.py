"""Block-nested-loop skyline (Börzsönyi, Kossmann, Stocker [1]).

Maintains a window of incomparable points; each incoming point is compared
against the window: dominated incoming points are dropped, window points
dominated by the incoming point are evicted.  The window comparisons are
vectorised over numpy blocks.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.core.point import block_dominates, dominates_block
from repro.zorder.zbtree import OpCounter


def bnl_skyline(
    points: np.ndarray,
    ids: Optional[np.ndarray] = None,
    counter: Optional[OpCounter] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Skyline of ``points`` via block-nested-loop.

    Returns ``(skyline_points, skyline_ids)``.  ``counter`` accrues
    point-dominance-test counts for the cost model.
    """
    points = np.asarray(points, dtype=np.float64)
    if points.ndim == 1:
        # Normalise 1-D input: no elements means a zero-dimensional
        # empty block; otherwise it's a single point.
        points = points.reshape(0, 0) if points.size == 0 else points[None, :]
    n, d = points.shape
    if ids is None:
        ids = np.arange(n, dtype=np.int64)
    else:
        ids = np.asarray(ids, dtype=np.int64)
    counter = counter if counter is not None else OpCounter()
    if n == 0:
        # Keep the true dimensionality: an empty (0, d) input yields an
        # empty (0, d) skyline, never (0, 1).
        return points.reshape(0, d), ids[:0]

    window = np.empty((16, points.shape[1]))
    window_ids = np.empty(16, dtype=np.int64)
    size = 0
    for i in range(n):
        p = points[i]
        if size:
            counter.point_tests += size
            if block_dominates(window[:size], p).any():
                continue
            counter.point_tests += size
            evict = dominates_block(p, window[:size])
            if evict.any():
                keep = ~evict
                kept = int(keep.sum())
                window[:kept] = window[:size][keep]
                window_ids[:kept] = window_ids[:size][keep]
                size = kept
        if size == window.shape[0]:
            window = np.vstack([window, np.empty_like(window)])
            window_ids = np.concatenate([window_ids, np.empty_like(window_ids)])
        window[size] = p
        window_ids[size] = ids[i]
        size += 1
    return window[:size].copy(), window_ids[:size].copy()
