"""SaLSa: Sort and Limit Skyline algorithm (Bartolini, Ciaccia, Patella).

Like the paper's "SB" it presorts the data, but by ``min`` coordinate
(with sum as tie-break) and tracks a *stop point*: once the smallest
possible remaining minimum exceeds the stop point's maximum coordinate,
no unread point can survive, and the scan terminates early.  On
correlated data SaLSa reads a fraction of the input — a useful extra
baseline for the local-algorithm slot.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.core.point import block_dominates
from repro.zorder.zbtree import OpCounter


def salsa_skyline(
    points: np.ndarray,
    ids: Optional[np.ndarray] = None,
    counter: Optional[OpCounter] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Skyline via SaLSa (sorted scan with early termination).

    Returns ``(skyline_points, skyline_ids)`` in scan order.  The
    counter's ``nodes_visited`` records how many input points were
    actually read before the stop condition fired.
    """
    points = np.asarray(points, dtype=np.float64)
    n = points.shape[0]
    d = points.shape[1] if points.ndim == 2 else 1
    if ids is None:
        ids = np.arange(n, dtype=np.int64)
    else:
        ids = np.asarray(ids, dtype=np.int64)
    counter = counter if counter is not None else OpCounter()
    if n == 0:
        return points.reshape(0, d), ids

    mins = points.min(axis=1)
    sums = points.sum(axis=1)
    order = np.lexsort((sums, mins))
    sorted_points = points[order]
    sorted_ids = ids[order]
    sorted_mins = mins[order]

    window = np.empty((16, d))
    window_ids = np.empty(16, dtype=np.int64)
    size = 0
    # Stop threshold: the smallest max-coordinate among skyline points
    # found so far.  Any unread point has min coordinate >= the current
    # sorted_mins value; if that already exceeds the threshold, the
    # stop point dominates every unread point.
    stop_threshold = np.inf
    for i in range(n):
        if sorted_mins[i] > stop_threshold:
            break
        counter.nodes_visited += 1
        p = sorted_points[i]
        if size:
            counter.point_tests += size
            if block_dominates(window[:size], p).any():
                continue
        if size == window.shape[0]:
            window = np.vstack([window, np.empty_like(window)])
            window_ids = np.concatenate(
                [window_ids, np.empty_like(window_ids)]
            )
        window[size] = p
        window_ids[size] = sorted_ids[i]
        size += 1
        stop_threshold = min(stop_threshold, float(p.max()))
    return window[:size].copy(), window_ids[:size].copy()
