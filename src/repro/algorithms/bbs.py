"""BBS: branch-and-bound skyline over an R-tree (Papadias et al. [2]).

The progressive classic: expand R-tree entries in ascending L1 distance
of their MBR's lower corner.  Because any dominator of a point has a
strictly smaller coordinate sum, an entry popped from the heap can only
be dominated by skyline points already reported — so each popped entry
is either pruned against the current skyline or, if it is a point,
reported immediately.
"""

from __future__ import annotations

import heapq
import itertools
from typing import List, Optional, Tuple

import numpy as np

from repro.core.point import block_dominates
from repro.rtree.tree import RTree, RTreeNode, bulk_load_str
from repro.zorder.zbtree import OpCounter


def bbs_skyline(
    points: np.ndarray,
    ids: Optional[np.ndarray] = None,
    counter: Optional[OpCounter] = None,
    leaf_capacity: int = 32,
    fanout: int = 8,
) -> Tuple[np.ndarray, np.ndarray]:
    """Skyline of ``points`` via BBS (builds the R-tree internally).

    Returns ``(skyline_points, skyline_ids)`` in the progressive
    (ascending coordinate-sum) order BBS reports them.
    """
    points = np.asarray(points, dtype=np.float64)
    n = points.shape[0]
    d = points.shape[1] if points.ndim == 2 else 1
    if ids is None:
        ids = np.arange(n, dtype=np.int64)
    else:
        ids = np.asarray(ids, dtype=np.int64)
    counter = counter if counter is not None else OpCounter()
    if n == 0:
        return points.reshape(0, d), ids
    tree = bulk_load_str(points, ids, leaf_capacity=leaf_capacity,
                         fanout=fanout)
    return bbs_over_tree(tree, counter)


def bbs_progressive(
    tree: RTree, counter: Optional[OpCounter] = None
):
    """Progressive BBS: yield ``(point, id)`` skyline members one by one.

    BBS is *progressive* — it reports skyline points in ascending
    coordinate-sum order before finishing the scan, so callers can
    consume the first results (e.g. a top-k page) without paying for the
    full skyline.  This generator exposes that property.
    """
    counter = counter if counter is not None else OpCounter()
    d = tree.dimensions
    if tree.root is None:
        return

    sky_block = np.empty((0, d))
    tiebreak = itertools.count()
    heap: List[tuple] = [
        (tree.root.mbr.mindist_key(), next(tiebreak), 0, tree.root, -1)
    ]
    while heap:
        _key, _tb, kind, payload, payload_id = heapq.heappop(heap)
        counter.nodes_visited += 1
        if kind == 1:
            point = payload
            counter.point_tests += sky_block.shape[0]
            if sky_block.shape[0] and block_dominates(sky_block, point).any():
                continue
            sky_block = np.vstack([sky_block, point[None, :]])
            yield point, payload_id
            continue
        node: RTreeNode = payload
        counter.region_tests += max(sky_block.shape[0], 1)
        if sky_block.shape[0] and block_dominates(
            sky_block, node.mbr.lower
        ).any():
            continue
        if node.is_leaf:
            for i in range(node.size):
                point = node.points[i]  # type: ignore[union-attr]
                heapq.heappush(
                    heap,
                    (
                        float(point.sum()),
                        next(tiebreak),
                        1,
                        point,
                        int(node.ids[i]),  # type: ignore[union-attr]
                    ),
                )
        else:
            for child in node.children:  # type: ignore[union-attr]
                heapq.heappush(
                    heap,
                    (child.mbr.mindist_key(), next(tiebreak), 0, child, -1),
                )


def bbs_over_tree(
    tree: RTree, counter: Optional[OpCounter] = None
) -> Tuple[np.ndarray, np.ndarray]:
    """Run BBS to completion over an already-built R-tree."""
    d = tree.dimensions
    sky_points: List[np.ndarray] = []
    sky_ids: List[int] = []
    for point, point_id in bbs_progressive(tree, counter):
        sky_points.append(point)
        sky_ids.append(point_id)
    if not sky_points:
        return np.empty((0, d)), np.empty(0, dtype=np.int64)
    return np.vstack(sky_points), np.asarray(sky_ids, dtype=np.int64)
