"""Sort-based skyline — the paper's "SB" local algorithm.

Presorts points by a monotone score (coordinate sum): after the sort, a
point can only be dominated by points that come *before* it, so a single
forward pass with a grow-only window is exact (no evictions, unlike plain
BNL).  This is the classic sort-first-skyline idea (Chomicki et al.).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.core.point import block_dominates
from repro.zorder.zbtree import OpCounter


def sort_based_skyline(
    points: np.ndarray,
    ids: Optional[np.ndarray] = None,
    counter: Optional[OpCounter] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Skyline of ``points`` via sort + single filter pass.

    Returns ``(skyline_points, skyline_ids)`` in score order.
    """
    points = np.asarray(points, dtype=np.float64)
    n = points.shape[0]
    d = points.shape[1] if points.ndim == 2 else 1
    if ids is None:
        ids = np.arange(n, dtype=np.int64)
    else:
        ids = np.asarray(ids, dtype=np.int64)
    counter = counter if counter is not None else OpCounter()
    if n == 0:
        return points.reshape(0, d), ids

    order = np.argsort(points.sum(axis=1), kind="stable")
    sorted_points = points[order]
    sorted_ids = ids[order]

    window = np.empty((16, d))
    window_ids = np.empty(16, dtype=np.int64)
    size = 0
    for i in range(n):
        p = sorted_points[i]
        if size:
            counter.point_tests += size
            if block_dominates(window[:size], p).any():
                continue
        if size == window.shape[0]:
            window = np.vstack([window, np.empty_like(window)])
            window_ids = np.concatenate([window_ids, np.empty_like(window_ids)])
        window[size] = p
        window_ids[size] = sorted_ids[i]
        size += 1
    return window[:size].copy(), window_ids[:size].copy()
