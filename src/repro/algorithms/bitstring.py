"""Bitstring-filtered skyline, the local step of MR-GPMRS [12].

MR-GPMRS overlays a coarse grid on the data; each point belongs to a cell,
and a *bitstring* records which cells are non-empty.  A cell is pruned
when another non-empty cell fully dominates it (every point of the
dominating cell dominates every point of the pruned cell), and point-level
dominance tests are restricted to pairs of cells that can actually
interact.  This reproduces the bitstring pruning idea at the heart of
MR-GPMRS's local and global phases.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.point import block_dominates
from repro.zorder.zbtree import OpCounter


def cell_coordinates(
    points: np.ndarray, splits_per_dim: int, lo: np.ndarray, hi: np.ndarray
) -> np.ndarray:
    """Map points to integer cell coordinates of a uniform grid."""
    span = hi - lo
    span = np.where(span == 0.0, 1.0, span)
    cells = np.floor((points - lo) / span * splits_per_dim).astype(np.int64)
    return np.clip(cells, 0, splits_per_dim - 1)


def bitstring_skyline(
    points: np.ndarray,
    ids: Optional[np.ndarray] = None,
    counter: Optional[OpCounter] = None,
    splits_per_dim: int = 4,
) -> Tuple[np.ndarray, np.ndarray]:
    """Skyline via grid-cell bitstring pruning + per-cell filtering.

    Returns ``(skyline_points, skyline_ids)``.
    """
    points = np.asarray(points, dtype=np.float64)
    n = points.shape[0]
    d = points.shape[1] if points.ndim == 2 else 1
    if ids is None:
        ids = np.arange(n, dtype=np.int64)
    else:
        ids = np.asarray(ids, dtype=np.int64)
    counter = counter if counter is not None else OpCounter()
    if n == 0:
        return points.reshape(0, d), ids

    lo = points.min(axis=0)
    hi = points.max(axis=0)
    cells = cell_coordinates(points, splits_per_dim, lo, hi)

    # Bucket points per occupied cell (the "bitstring" is the key set).
    buckets: Dict[Tuple[int, ...], List[int]] = {}
    for i in range(n):
        buckets.setdefault(tuple(cells[i]), []).append(i)

    occupied = list(buckets.keys())
    occupied_arr = np.asarray(occupied, dtype=np.int64)

    # Cell-level pruning: cell A fully dominates cell B when A's upper
    # corner is strictly below B's lower corner in every dimension, i.e.
    # A's cell coordinates are all strictly smaller.
    pruned: set = set()
    m = len(occupied)
    for a in range(m):
        ca = occupied_arr[a]
        counter.region_tests += m
        strictly_below = np.all(occupied_arr > ca, axis=1)
        for b in np.flatnonzero(strictly_below):
            pruned.add(occupied[b])

    surviving_cells = [c for c in occupied if c not in pruned]

    # Point-level filtering restricted to interacting cells: a point in
    # cell B need only be tested against points from cells A with A <= B
    # componentwise (other cells cannot contain dominators).
    sky_idx: List[int] = []
    cell_arr = np.asarray(surviving_cells, dtype=np.int64)
    for b_pos, cell in enumerate(surviving_cells):
        cb = cell_arr[b_pos]
        counter.region_tests += len(surviving_cells)
        mask = np.all(cell_arr <= cb, axis=1)
        contender_idx: List[int] = []
        for a_pos in np.flatnonzero(mask):
            contender_idx.extend(buckets[surviving_cells[a_pos]])
        contenders = points[contender_idx]
        for i in buckets[cell]:
            counter.point_tests += contenders.shape[0]
            if not block_dominates(contenders, points[i]).any():
                sky_idx.append(i)
    sky_idx_arr = np.asarray(sorted(sky_idx), dtype=np.int64)
    return points[sky_idx_arr].copy(), ids[sky_idx_arr].copy()
