"""Divide & conquer skyline baseline.

Recursively splits the input, computes sub-skylines, and merges them by
cross-filtering — each side's survivors are the points not dominated by
the other side's skyline.  Simple and robust; included as the classic
third baseline family alongside BNL and sort-based.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.core.point import block_dominates, dominates_block
from repro.zorder.zbtree import OpCounter

_BASE_CASE = 64


def dnc_skyline(
    points: np.ndarray,
    ids: Optional[np.ndarray] = None,
    counter: Optional[OpCounter] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Skyline of ``points`` via divide & conquer.

    Returns ``(skyline_points, skyline_ids)``.
    """
    points = np.asarray(points, dtype=np.float64)
    n = points.shape[0]
    d = points.shape[1] if points.ndim == 2 else 1
    if ids is None:
        ids = np.arange(n, dtype=np.int64)
    else:
        ids = np.asarray(ids, dtype=np.int64)
    counter = counter if counter is not None else OpCounter()
    if n == 0:
        return points.reshape(0, d), ids
    # Sorting by the first dimension makes the two halves roughly
    # separable, which is what gives D&C its pruning power.
    order = np.argsort(points[:, 0], kind="stable")
    return _dnc(points[order], ids[order], counter)


def _dnc(
    points: np.ndarray, ids: np.ndarray, counter: OpCounter
) -> Tuple[np.ndarray, np.ndarray]:
    n = points.shape[0]
    if n <= _BASE_CASE:
        return _filter_pass(points, ids, counter)
    mid = n // 2
    left_pts, left_ids = _dnc(points[:mid], ids[:mid], counter)
    right_pts, right_ids = _dnc(points[mid:], ids[mid:], counter)
    # Cross-filter: drop right-side points dominated by the left skyline
    # and vice versa (both directions needed: the split is on one
    # dimension only, so dominance can cross either way).
    right_keep = _not_dominated_by(right_pts, left_pts, counter)
    left_keep = _not_dominated_by(left_pts, right_pts, counter)
    merged = np.vstack([left_pts[left_keep], right_pts[right_keep]])
    merged_ids = np.concatenate([left_ids[left_keep], right_ids[right_keep]])
    return merged, merged_ids


def _not_dominated_by(
    targets: np.ndarray, against: np.ndarray, counter: OpCounter
) -> np.ndarray:
    keep = np.ones(targets.shape[0], dtype=bool)
    if against.shape[0] == 0:
        return keep
    for i in range(targets.shape[0]):
        counter.point_tests += against.shape[0]
        if block_dominates(against, targets[i]).any():
            keep[i] = False
    return keep


def _filter_pass(
    points: np.ndarray, ids: np.ndarray, counter: OpCounter
) -> Tuple[np.ndarray, np.ndarray]:
    """Quadratic base case with eviction (the block is only presorted on
    dimension 0, so a later point can still dominate an earlier one)."""
    n = points.shape[0]
    keep: list[int] = []
    for i in range(n):
        p = points[i]
        if keep:
            block = points[keep]
            counter.point_tests += 2 * len(keep)
            if block_dominates(block, p).any():
                continue
            evicted = dominates_block(p, block)
            if evicted.any():
                keep = [k for k, gone in zip(keep, evicted) if not gone]
        keep.append(i)
    idx = np.asarray(keep, dtype=np.int64)
    return points[idx].copy(), ids[idx].copy()
