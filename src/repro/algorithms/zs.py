"""Z-search exposed under the common local-algorithm signature ("ZS")."""

from __future__ import annotations

from typing import Optional, Sequence, Tuple, Union

import numpy as np

from repro.zorder.encoding import ZGridCodec
from repro.zorder.zbtree import OpCounter, build_zbtree
from repro.zorder.zsearch import zsearch


def zs_skyline(
    points: np.ndarray,
    ids: Optional[np.ndarray] = None,
    counter: Optional[OpCounter] = None,
    codec: Optional[ZGridCodec] = None,
    zaddresses: Optional[Union[Sequence[int], np.ndarray]] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Skyline via ZB-tree + Z-search.

    ``points`` must hold integer grid coordinates (the pipeline quantises
    datasets once up front).  A wide-enough identity codec is derived when
    none is supplied.  ``zaddresses`` (ints or a native kernel batch)
    skips the encode inside the tree build; only meaningful together
    with the ``codec`` that produced them.
    """
    points = np.asarray(points, dtype=np.float64)
    n = points.shape[0]
    d = points.shape[1] if points.ndim == 2 else 1
    if ids is None:
        ids = np.arange(n, dtype=np.int64)
    else:
        ids = np.asarray(ids, dtype=np.int64)
    if n == 0:
        return points.reshape(0, d), ids
    if codec is None:
        top = int(points.max())
        bits = max(1, top.bit_length())
        codec = ZGridCodec.grid_identity(d, bits_per_dim=bits)
    tree = build_zbtree(codec, points, ids=ids, zaddresses=zaddresses)
    return zsearch(tree, counter=counter)
