"""Centralised skyline algorithms.

These are the local (per-worker) skyline computations the paper evaluates:

* ``BNL`` — block-nested-loop, the original skyline algorithm [1];
* ``SB`` — sort-based: presort by a monotone score, then a single
  BNL-style filter pass (the paper's "sorting the data first, then
  computing the skyline via the Block-Nest-Loop");
* ``ZS`` — Z-search over a ZB-tree (state of the art, Lee et al. [5]);
* ``DNC`` — divide & conquer baseline;
* ``BITSTRING`` — the partition-bitmap filter used by the MR-GPMRS
  baseline.

All implementations share one signature: ``algo(points, ids, counter)``
returning ``(skyline_points, skyline_ids)``; look them up by paper name
via :func:`repro.algorithms.registry.get_algorithm`.
"""

from repro.algorithms.bnl import bnl_skyline
from repro.algorithms.dnc import dnc_skyline
from repro.algorithms.registry import available_algorithms, get_algorithm
from repro.algorithms.sfs import sort_based_skyline
from repro.algorithms.zs import zs_skyline

__all__ = [
    "available_algorithms",
    "bnl_skyline",
    "dnc_skyline",
    "get_algorithm",
    "sort_based_skyline",
    "zs_skyline",
]
