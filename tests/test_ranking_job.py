"""Tests for the distributed dominance-score ranking job."""

import numpy as np

from repro import run_plan
from repro.data.synthetic import independent
from repro.extensions.ranking import dominance_scores
from repro.pipeline.ranking_job import distributed_dominance_scores
from repro.zorder.encoding import quantize_dataset


class TestDistributedRanking:
    def setup_run(self, n=3000, d=4, seed=41):
        ds = independent(n, d, seed=seed)
        snapped, _ = quantize_dataset(ds, bits_per_dim=10)
        report = run_plan(
            "ZDG+ZS+ZM", ds, num_groups=8, num_workers=4,
            bits_per_dim=10, seed=0,
        )
        return snapped, report

    def test_matches_centralized_scores(self):
        snapped, report = self.setup_run()
        ids, scores, _result = distributed_dominance_scores(
            snapped, report.skyline.points, report.skyline.ids,
            num_workers=4,
        )
        central = dominance_scores(report.skyline.points, snapped.points)
        by_id_central = dict(
            zip(report.skyline.ids.tolist(), central.tolist())
        )
        by_id_distributed = dict(zip(ids.tolist(), scores.tolist()))
        assert by_id_central == by_id_distributed

    def test_best_first_ordering(self):
        snapped, report = self.setup_run(seed=42)
        _ids, scores, _result = distributed_dominance_scores(
            snapped, report.skyline.points, report.skyline.ids,
            num_workers=4,
        )
        assert np.all(np.diff(scores) <= 0)

    def test_work_spread_over_workers(self):
        snapped, report = self.setup_run(seed=43)
        _ids, _scores, result = distributed_dominance_scores(
            snapped, report.skyline.points, report.skyline.ids,
            num_workers=4,
        )
        busy = [w for w in result.map_metrics.ledgers if w.tasks > 0]
        assert len(busy) == 4

    def test_scores_bounded_by_dataset_size(self):
        snapped, report = self.setup_run(seed=44)
        _ids, scores, _ = distributed_dominance_scores(
            snapped, report.skyline.points, report.skyline.ids,
            num_workers=2,
        )
        assert scores.max() <= snapped.size
        assert scores.min() >= 0
