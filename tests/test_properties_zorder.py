"""Property-based tests (hypothesis) for the Z-order substrate.

These pin the invariants everything else relies on:

* encode/decode round-trips exactly;
* Z-order is monotone w.r.t. weak dominance and injective on the grid;
* RZ-region bounds always cover their generating interval;
* Lemma 1's full-dominance and incomparability claims are sound;
* ZB-tree queries agree with brute force.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.point import dominates
from repro.zorder.encoding import ZGridCodec
from repro.zorder.rzregion import RZRegion
from repro.zorder.zbtree import build_zbtree

DIMS = st.integers(min_value=1, max_value=6)
BITS = st.integers(min_value=1, max_value=8)


@st.composite
def codec_and_grid(draw, max_points=40):
    d = draw(DIMS)
    bits = draw(BITS)
    codec = ZGridCodec.grid_identity(d, bits_per_dim=bits)
    n = draw(st.integers(min_value=1, max_value=max_points))
    cells = 1 << bits
    grid = draw(
        st.lists(
            st.lists(
                st.integers(min_value=0, max_value=cells - 1),
                min_size=d,
                max_size=d,
            ),
            min_size=n,
            max_size=n,
        )
    )
    return codec, np.asarray(grid, dtype=np.int64)


@given(codec_and_grid())
@settings(max_examples=150, deadline=None)
def test_encode_decode_roundtrip(cg):
    codec, grid = cg
    zs = codec.encode_grid(grid)
    back = codec.decode_many(zs)
    assert np.array_equal(back.astype(np.int64), grid)


@given(codec_and_grid())
@settings(max_examples=150, deadline=None)
def test_monotone_wrt_weak_dominance(cg):
    codec, grid = cg
    zs = codec.encode_grid(grid)
    n = grid.shape[0]
    for i in range(min(n, 10)):
        for j in range(min(n, 10)):
            if np.all(grid[i] <= grid[j]):
                assert zs[i] <= zs[j]


@given(codec_and_grid())
@settings(max_examples=100, deadline=None)
def test_injective_on_distinct_grid_points(cg):
    codec, grid = cg
    zs = codec.encode_grid(grid)
    seen = {}
    for row, z in zip(map(tuple, grid), zs):
        if z in seen:
            assert seen[z] == row
        seen[z] = row


@given(codec_and_grid(max_points=2))
@settings(max_examples=150, deadline=None)
def test_region_bounds_cover_interval(cg):
    codec, grid = cg
    zs = codec.encode_grid(grid)
    alpha, beta = min(zs), max(zs)
    minz, maxz = codec.region_bounds(alpha, beta)
    assert minz <= alpha <= beta <= maxz
    region = RZRegion(codec, alpha, beta)
    for row in grid:
        assert region.contains_grid_point(row)


@given(codec_and_grid(max_points=8))
@settings(max_examples=100, deadline=None)
def test_lemma1_full_dominance_sound(cg):
    codec, grid = cg
    n = grid.shape[0]
    if n < 4:
        return
    zs = codec.encode_grid(grid)
    half = n // 2
    ra = RZRegion(codec, min(zs[:half]), max(zs[:half]))
    rb = RZRegion(codec, min(zs[half:]), max(zs[half:]))
    if ra.fully_dominates(rb):
        for a in grid[:half]:
            for b in grid[half:]:
                assert dominates(a, b)
    if ra.incomparable_with(rb):
        for a in grid[:half]:
            for b in grid[half:]:
                assert not dominates(a, b)
                assert not dominates(b, a)


@given(codec_and_grid())
@settings(max_examples=60, deadline=None)
def test_zbtree_is_dominated_matches_bruteforce(cg):
    codec, grid = cg
    pts = grid.astype(float)
    tree = build_zbtree(codec, pts, leaf_capacity=4, fanout=3)
    tree.validate()
    probe = pts[0]
    expected = any(dominates(row, probe) for row in pts)
    assert tree.is_dominated(probe) == expected


@given(codec_and_grid())
@settings(max_examples=60, deadline=None)
def test_zbtree_remove_dominated_matches_bruteforce(cg):
    codec, grid = cg
    pts = grid.astype(float)
    tree = build_zbtree(codec, pts, leaf_capacity=4, fanout=3)
    pivot = pts[-1]
    expected_removed = sum(1 for row in pts if dominates(pivot, row))
    assert tree.remove_dominated_by(pivot) == expected_removed
