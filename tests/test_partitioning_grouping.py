"""Unit tests for ZHG (Algorithm 1) heuristic grouping."""

import math

import numpy as np
import pytest

from repro.core.exceptions import ConfigurationError
from repro.partitioning.grouping import (
    HeuristicGroupingPartitioner,
    compute_sample_stats,
    greedy_pack,
    range_counts,
)
from repro.zorder.encoding import quantize_dataset
from repro.data.synthetic import anticorrelated, independent


def snapped(dist_fn, n=3000, d=4, seed=0, bits=8):
    return quantize_dataset(dist_fn(n, d, seed=seed), bits_per_dim=bits)


class TestRangeCounts:
    def test_counts_partition_the_input(self):
        values = sorted([1, 5, 5, 7, 9, 12, 20])
        counts = range_counts(values, [5, 10])
        assert counts.tolist() == [1, 4, 2]
        assert counts.sum() == len(values)

    def test_no_pivots(self):
        assert range_counts([1, 2, 3], []).tolist() == [3]


class TestGreedyPack:
    def test_respects_caps_where_possible(self):
        point_counts = np.array([10, 10, 10, 10])
        sky_counts = np.array([5, 5, 5, 5])
        gm = greedy_pack([0, 1, 2, 3], point_counts, sky_counts, 20, 10)
        # Two partitions fit per group under both caps.
        assert gm.tolist() == [0, 0, 1, 1]

    def test_oversized_partition_gets_own_group(self):
        point_counts = np.array([100, 1, 1])
        sky_counts = np.array([0, 0, 0])
        gm = greedy_pack([0, 1, 2], point_counts, sky_counts, 10, 10)
        assert gm[0] == 0
        assert gm[1] == gm[2] == 1

    def test_skyline_cap_triggers_split(self):
        point_counts = np.array([1, 1, 1])
        sky_counts = np.array([9, 9, 9])
        gm = greedy_pack([0, 1, 2], point_counts, sky_counts, 100, 10)
        assert len(set(gm.tolist())) == 3

    def test_every_partition_assigned(self):
        rng = np.random.default_rng(0)
        pc = rng.integers(1, 50, 30)
        sc = rng.integers(0, 10, 30)
        gm = greedy_pack(range(30), pc, sc, 60, 12)
        assert (gm >= 0).all()


class TestComputeSampleStats:
    def test_counts_are_consistent(self):
        sample, codec = snapped(independent)
        stats = compute_sample_stats(sample, codec, parts=16)
        assert stats.point_counts.sum() == sample.size
        assert stats.skyline_counts.sum() == stats.skyline_size
        assert len(stats.point_counts) == stats.num_partitions

    def test_redistribute_limits_heavy_partitions(self):
        sample, codec = snapped(anticorrelated)
        with_split = compute_sample_stats(
            sample, codec, parts=8, expand_heavy=True
        )
        without = compute_sample_stats(
            sample, codec, parts=8, expand_heavy=False
        )
        assert with_split.num_partitions >= without.num_partitions
        scons = max(1, math.ceil(with_split.skyline_size / 8))
        # After splitting, partitions exceed the cap only when their
        # skyline points share too few distinct z-addresses to split.
        heavy = (with_split.skyline_counts > 2 * scons).sum()
        assert heavy <= max(1, with_split.num_partitions // 10)


class TestZHG:
    def test_rejects_bad_expansion(self):
        with pytest.raises(ConfigurationError):
            HeuristicGroupingPartitioner(expansion=0)

    def test_rejects_bad_num_groups(self):
        sample, codec = snapped(independent, n=200)
        with pytest.raises(ConfigurationError):
            HeuristicGroupingPartitioner().fit(sample, codec, 0)

    def test_all_partitions_grouped_nothing_dropped(self):
        sample, codec = snapped(independent)
        rule = HeuristicGroupingPartitioner().fit(sample, codec, 8)
        assert (rule.group_map >= 0).all()

    def test_group_ids_contiguous(self):
        sample, codec = snapped(anticorrelated)
        rule = HeuristicGroupingPartitioner().fit(sample, codec, 8)
        used = sorted(set(rule.group_map.tolist()))
        assert used == list(range(rule.num_groups))

    def test_skyline_points_spread_across_groups(self):
        # The anti-straggler property (Proposition 1): no single group
        # hoards the sample skyline.
        from repro.algorithms.zs import zs_skyline

        sample, codec = snapped(anticorrelated, n=4000)
        num_groups = 8
        rule = HeuristicGroupingPartitioner().fit(sample, codec, num_groups)
        sky_pts, sky_ids = zs_skyline(sample.points, sample.ids, None, codec)
        gids = rule.assign_groups(sky_pts, sky_ids)
        counts = np.bincount(gids[gids >= 0], minlength=rule.num_groups)
        # Each group's skyline share stays near |S|/M (allow 3x).
        fair = len(sky_pts) / rule.num_groups
        assert counts.max() <= max(3 * fair, 6)

    def test_more_groups_than_requested_is_allowed(self):
        sample, codec = snapped(anticorrelated)
        rule = HeuristicGroupingPartitioner().fit(sample, codec, 8)
        # Greedy packing may open extra groups but not absurdly many.
        assert 8 <= rule.num_groups <= 8 * 4 * 3
