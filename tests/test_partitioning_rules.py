"""Unit tests for the random/grid/angle partitioners."""

import numpy as np
import pytest

from repro.core.dataset import Dataset
from repro.core.exceptions import ConfigurationError
from repro.partitioning import get_partitioner
from repro.partitioning.angle import AnglePartitioner, hyperspherical_angles
from repro.partitioning.base import (
    assignment_counts,
    available_partitioners,
    load_imbalance,
)
from repro.partitioning.grid import GridPartitioner, splits_for
from repro.partitioning.random_part import RandomPartitioner
from repro.zorder.encoding import quantize_dataset


def snapped_uniform(n=2000, d=4, seed=0, bits=8):
    rng = np.random.default_rng(seed)
    ds = Dataset(rng.random((n, d)))
    return quantize_dataset(ds, bits_per_dim=bits)


class TestRegistry:
    def test_all_names_resolve(self):
        for name in available_partitioners():
            assert get_partitioner(name) is not None

    def test_unknown_name(self):
        with pytest.raises(ConfigurationError):
            get_partitioner("voronoi")


class TestRandom:
    def test_round_robin_by_id(self):
        snapped, codec = snapped_uniform()
        rule = RandomPartitioner().fit(snapped, codec, 8)
        gids = rule.assign_groups(snapped.points, snapped.ids)
        assert np.array_equal(gids, snapped.ids % 8)

    def test_perfectly_balanced(self):
        snapped, codec = snapped_uniform(n=800)
        rule = RandomPartitioner().fit(snapped, codec, 8)
        gids = rule.assign_groups(snapped.points, snapped.ids)
        assert load_imbalance(gids, 8) == 1.0

    def test_rejects_nonpositive_groups(self):
        snapped, codec = snapped_uniform(n=10)
        with pytest.raises(ConfigurationError):
            RandomPartitioner().fit(snapped, codec, 0)


class TestSplitsFor:
    def test_power_of_two(self):
        assert splits_for(8, 5) == [2, 2, 2, 1, 1]

    def test_more_groups_than_single_splits(self):
        splits = splits_for(32, 3)
        assert int(np.prod(splits)) >= 32
        assert splits == [4, 4, 2]

    def test_single_group(self):
        assert splits_for(1, 4) == [1, 1, 1, 1]


class TestGrid:
    def test_every_point_assigned(self):
        snapped, codec = snapped_uniform()
        rule = GridPartitioner().fit(snapped, codec, 16)
        gids = rule.assign_groups(snapped.points, snapped.ids)
        assert gids.min() >= 0
        assert gids.max() < rule.num_groups

    def test_num_groups_is_cell_count(self):
        snapped, codec = snapped_uniform(d=4)
        rule = GridPartitioner().fit(snapped, codec, 16)
        assert rule.num_groups == 16

    def test_cells_respect_geometry(self):
        snapped, codec = snapped_uniform(d=2, bits=8)
        rule = GridPartitioner().fit(snapped, codec, 4)
        # 2x2 grid: a point in the low-low quadrant and one in the
        # high-high quadrant land in different cells.
        lo_point = np.array([[1.0, 1.0]])
        hi_point = np.array([[250.0, 250.0]])
        g1 = rule.assign_groups(lo_point, np.array([0]))
        g2 = rule.assign_groups(hi_point, np.array([1]))
        assert g1[0] != g2[0]

    def test_cell_of_gid_roundtrip(self):
        snapped, codec = snapped_uniform(d=3)
        rule = GridPartitioner().fit(snapped, codec, 8)
        gids = rule.assign_groups(snapped.points, snapped.ids)
        cells = rule.cell_of(snapped.points)
        for gid in np.unique(gids):
            expect = cells[gids == gid][0]
            assert np.array_equal(rule.cell_of_gid(int(gid)), expect)

    def test_high_dimensional_imbalance_documented(self):
        # The failure mode the paper highlights: on non-uniform data the
        # equal-width grid loads cells unevenly.
        rng = np.random.default_rng(5)
        skewed = Dataset(rng.beta(0.3, 3.0, (4000, 6)))
        snapped, codec = quantize_dataset(skewed, bits_per_dim=8)
        rule = GridPartitioner().fit(snapped, codec, 32)
        gids = rule.assign_groups(snapped.points, snapped.ids)
        assert load_imbalance(gids, rule.num_groups) > 1.5


class TestAngle:
    def test_every_point_assigned(self):
        snapped, codec = snapped_uniform()
        rule = AnglePartitioner().fit(snapped, codec, 16)
        gids = rule.assign_groups(snapped.points, snapped.ids)
        assert gids.min() >= 0
        assert gids.max() < rule.num_groups

    def test_quantile_boundaries_balance_sample(self):
        snapped, codec = snapped_uniform(n=4000)
        rule = AnglePartitioner().fit(snapped, codec, 8)
        gids = rule.assign_groups(snapped.points, snapped.ids)
        # Dynamic (quantile) boundaries: balanced on the data they were
        # fitted on.
        assert load_imbalance(gids, rule.num_groups) < 1.5

    def test_rejects_1d(self):
        rng = np.random.default_rng(0)
        ds = Dataset(rng.random((50, 1)))
        snapped, codec = quantize_dataset(ds, bits_per_dim=4)
        with pytest.raises(ConfigurationError):
            AnglePartitioner().fit(snapped, codec, 4)

    def test_angles_shape_and_range(self):
        rng = np.random.default_rng(1)
        pts = rng.random((100, 5)) + 0.01
        angles = hyperspherical_angles(pts)
        assert angles.shape == (100, 4)
        # Positive orthant: angles in (0, pi/2).
        assert angles.min() >= 0.0
        assert angles.max() <= np.pi / 2 + 1e-9

    def test_2d_angle_is_atan2(self):
        pts = np.array([[1.0, 1.0], [1.0, 0.0]])
        angles = hyperspherical_angles(pts)
        assert angles[0, 0] == pytest.approx(np.pi / 4)
        assert angles[1, 0] == pytest.approx(0.0)


class TestHelpers:
    def test_assignment_counts_ignores_dropped(self):
        gids = np.array([0, 0, 1, -1, 2])
        counts = assignment_counts(gids, 3)
        assert counts.tolist() == [2, 1, 1]

    def test_load_imbalance_balanced(self):
        assert load_imbalance(np.array([0, 1, 2, 0, 1, 2]), 3) == 1.0

    def test_load_imbalance_empty(self):
        assert load_imbalance(np.array([], dtype=np.int64), 4) == 1.0
