"""Property-based tests: every skyline algorithm agrees with the oracle,
and Z-merge satisfies its union contract, on arbitrary grid inputs."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.bbs import bbs_skyline
from repro.algorithms.bitstring import bitstring_skyline
from repro.algorithms.bnl import bnl_skyline
from repro.algorithms.dnc import dnc_skyline
from repro.algorithms.salsa import salsa_skyline
from repro.algorithms.sfs import sort_based_skyline
from repro.algorithms.zs import zs_skyline
from repro.core.point import dominates
from repro.core.skyline import is_skyline_of, skyline_indices_oracle
from repro.zorder.encoding import ZGridCodec
from repro.zorder.zbtree import build_zbtree
from repro.zorder.zmerge import zmerge
from repro.zorder.zsearch import zsearch


@st.composite
def grid_points(draw, max_points=60, max_dims=5, top=16):
    d = draw(st.integers(min_value=1, max_value=max_dims))
    n = draw(st.integers(min_value=0, max_value=max_points))
    rows = draw(
        st.lists(
            st.lists(
                st.integers(min_value=0, max_value=top - 1),
                min_size=d,
                max_size=d,
            ),
            min_size=n,
            max_size=n,
        )
    )
    return np.asarray(rows, dtype=float).reshape(n, d)


ALGORITHMS = [
    bnl_skyline,
    sort_based_skyline,
    dnc_skyline,
    zs_skyline,
    bitstring_skyline,
    bbs_skyline,
    salsa_skyline,
]


@given(grid_points())
@settings(max_examples=80, deadline=None)
def test_all_algorithms_agree_with_oracle(points):
    for algo in ALGORITHMS:
        sky, ids = algo(points, None, None)
        assert is_skyline_of(sky, points)
        assert sky.shape[0] == ids.shape[0]


@given(grid_points())
@settings(max_examples=80, deadline=None)
def test_skyline_output_is_dominance_free(points):
    sky, _ = sort_based_skyline(points, None, None)
    for i in range(sky.shape[0]):
        for j in range(sky.shape[0]):
            if i != j:
                assert not dominates(sky[i], sky[j])


@given(grid_points(max_points=40), grid_points(max_points=40))
@settings(max_examples=60, deadline=None)
def test_zmerge_union_contract(a, b):
    # Harmonise dimensionality (hypothesis draws them independently).
    d = min(a.shape[1], b.shape[1]) if a.size and b.size else None
    if d is None or a.shape[0] == 0 or b.shape[0] == 0:
        return
    a = a[:, :d]
    b = b[:, :d]
    codec = ZGridCodec.grid_identity(d, bits_per_dim=4)

    def sky_tree(pts, offset):
        tree = build_zbtree(
            codec, pts, ids=np.arange(len(pts)) + offset, leaf_capacity=4,
            fanout=3,
        )
        sky, ids = zsearch(tree)
        return build_zbtree(codec, sky, ids=ids, leaf_capacity=4, fanout=3)

    merged = zmerge(sky_tree(a, 0), sky_tree(b, 10_000))
    assert is_skyline_of(merged.points(), np.vstack([a, b]))


@given(grid_points(max_points=50))
@settings(max_examples=50, deadline=None)
def test_skyline_idempotent(points):
    sky1, _ = sort_based_skyline(points, None, None)
    sky2, _ = sort_based_skyline(sky1, None, None)
    assert sorted(map(tuple, sky1)) == sorted(map(tuple, sky2))


@given(grid_points(max_points=50))
@settings(max_examples=50, deadline=None)
def test_adding_dominated_point_never_changes_skyline(points):
    if points.shape[0] == 0:
        return
    worst = points.max(axis=0) + 1.0
    extended = np.vstack([points, worst[None, :]])
    sky_before = skyline_indices_oracle(points)
    sky_after = skyline_indices_oracle(extended)
    assert sky_before.tolist() == sky_after.tolist()
