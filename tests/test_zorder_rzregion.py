"""Unit tests for RZ-regions and Lemma 1."""

import numpy as np
import pytest

from repro.zorder.encoding import ZGridCodec
from repro.zorder.rzregion import RegionRelation, RZRegion, dominance_volume


@pytest.fixture
def codec() -> ZGridCodec:
    return ZGridCodec.grid_identity(2, bits_per_dim=4)


def region_from_grid(codec: ZGridCodec, a, b) -> RZRegion:
    za, zb = codec.encode_grid(np.array([a, b]))
    return RZRegion(codec, za, zb)


class TestCorners:
    def test_single_point_region(self, codec):
        r = region_from_grid(codec, [5, 7], [5, 7])
        assert r.minpt.tolist() == [5, 7]
        assert r.maxpt.tolist() == [5, 7]
        assert r.minz == r.maxz

    def test_region_covers_inputs(self, codec):
        r = region_from_grid(codec, [2, 3], [4, 1])
        assert r.contains_grid_point([2, 3])
        assert r.contains_grid_point([4, 1])

    def test_region_is_prefix_aligned(self, codec):
        r = region_from_grid(codec, [2, 3], [4, 1])
        # min/max corners correspond to prefix + all-zeros / all-ones.
        span_bits = (r.maxz - r.minz + 1).bit_length() - 1
        assert r.maxz - r.minz == (1 << span_bits) - 1
        assert r.minz % (1 << span_bits) == 0

    def test_from_corners_skips_decode(self, codec):
        base = region_from_grid(codec, [1, 1], [2, 2])
        clone = RZRegion.from_corners(
            base.minz, base.maxz, base.minpt, base.maxpt
        )
        assert clone.minpt.tolist() == base.minpt.tolist()
        assert clone.maxz == base.maxz


class TestLemma1:
    def test_full_dominance(self, codec):
        # Region entirely below-left of the other.
        low = region_from_grid(codec, [0, 0], [1, 1])
        high = region_from_grid(codec, [8, 8], [9, 9])
        assert low.relation_to(high) is RegionRelation.FULLY_DOMINATES
        assert low.fully_dominates(high)
        assert not high.fully_dominates(low)

    def test_incomparable(self, codec):
        a = region_from_grid(codec, [0, 8], [1, 9])
        b = region_from_grid(codec, [8, 0], [9, 1])
        assert a.relation_to(b) is RegionRelation.INCOMPARABLE
        assert a.incomparable_with(b)
        assert b.incomparable_with(a)

    def test_partial_dominance(self, codec):
        a = region_from_grid(codec, [0, 0], [3, 3])
        b = region_from_grid(codec, [2, 2], [5, 5])
        rel = a.relation_to(b)
        assert rel is RegionRelation.PARTIALLY_DOMINATES
        assert a.may_dominate(b)
        assert not a.fully_dominates(b)

    def test_region_does_not_dominate_itself(self, codec):
        a = region_from_grid(codec, [1, 1], [2, 2])
        assert not a.fully_dominates(a)

    def test_touching_corners_not_full_dominance(self, codec):
        # maxpt of a equals minpt of b: equality is not dominance.
        a = region_from_grid(codec, [0, 0], [3, 3])
        b = region_from_grid(codec, [3, 3], [3, 3])
        assert a.maxpt.tolist() == b.minpt.tolist()
        assert not a.fully_dominates(b)

    def test_full_dominance_is_sound(self, codec):
        # Every point pair across fully dominating regions dominates.
        from repro.core.point import dominates

        low = region_from_grid(codec, [0, 0], [1, 1])
        high = region_from_grid(codec, [4, 4], [5, 5])
        assert low.fully_dominates(high)
        for ax in range(int(low.minpt[0]), int(low.maxpt[0]) + 1):
            for ay in range(int(low.minpt[1]), int(low.maxpt[1]) + 1):
                for bx in range(int(high.minpt[0]), int(high.maxpt[0]) + 1):
                    for by in range(int(high.minpt[1]), int(high.maxpt[1]) + 1):
                        assert dominates([ax, ay], [bx, by])

    def test_incomparable_is_sound(self, codec):
        from repro.core.point import dominates

        a = region_from_grid(codec, [0, 8], [1, 9])
        b = region_from_grid(codec, [8, 0], [9, 1])
        assert a.incomparable_with(b)
        pts_a = [
            [x, y]
            for x in range(int(a.minpt[0]), int(a.maxpt[0]) + 1)
            for y in range(int(a.minpt[1]), int(a.maxpt[1]) + 1)
        ]
        pts_b = [
            [x, y]
            for x in range(int(b.minpt[0]), int(b.maxpt[0]) + 1)
            for y in range(int(b.minpt[1]), int(b.maxpt[1]) + 1)
        ]
        for pa in pts_a:
            for pb in pts_b:
                assert not dominates(pa, pb)
                assert not dominates(pb, pa)


class TestPointHelpers:
    def test_may_contain_dominator_of(self, codec):
        r = region_from_grid(codec, [2, 2], [3, 3])
        assert r.may_contain_dominator_of(np.array([9, 9]))
        assert not r.may_contain_dominator_of(np.array([0, 0]))
        # minpt itself cannot be dominated by a region point.
        assert not r.may_contain_dominator_of(r.minpt)

    def test_all_points_dominated_by(self, codec):
        r = region_from_grid(codec, [4, 4], [5, 5])
        assert r.all_points_dominated_by(np.array([1, 1]))
        assert not r.all_points_dominated_by(np.array([4, 4]))

    def test_may_contain_point_dominated_by(self, codec):
        r = region_from_grid(codec, [4, 4], [5, 5])
        assert r.may_contain_point_dominated_by(np.array([4, 4]))
        assert not r.may_contain_point_dominated_by(np.array([9, 0]))

    def test_contains_zaddress(self, codec):
        r = region_from_grid(codec, [2, 2], [3, 3])
        assert r.contains_zaddress(r.minz)
        assert r.contains_zaddress(r.maxz)
        assert not r.contains_zaddress(r.maxz + 1)

    def test_volume(self, codec):
        r = region_from_grid(codec, [2, 2], [3, 3])
        assert r.volume() == 4.0


class TestDominanceVolume:
    def test_commutative(self, codec):
        a = region_from_grid(codec, [0, 0], [3, 3])
        b = region_from_grid(codec, [4, 8], [7, 11])
        assert dominance_volume(a, b) == dominance_volume(b, a)

    def test_self_volume_zero(self, codec):
        a = region_from_grid(codec, [0, 0], [3, 3])
        assert dominance_volume(a, a) == 0.0

    def test_known_values(self, codec):
        # V_dom is the volume of the partner region's sub-box lying
        # beyond the other's max corner (per dimension: largest minus
        # second-largest of the four corner coordinates).  Boxes are
        # pinned exactly with from_corners (prefix alignment would widen
        # them otherwise).
        def box(lo, hi):
            return RZRegion.from_corners(0, 0, np.array(lo), np.array(hi))

        a = box([0, 0], [3, 3])
        overlapping = box([2, 2], [5, 5])
        small_far = box([4, 4], [5, 5])
        # Beyond maxpt(a)=(3,3): [3,5]^2 has volume 4; [4,5]^2 only 1.
        assert dominance_volume(a, overlapping) == 4.0
        assert dominance_volume(a, small_far) == 1.0

    def test_example3_bigger_dominated_box_bigger_volume(self, codec):
        # Example 3's intuition: the partition whose region offers the
        # larger dominated sub-box should be grouped with the dominator.
        def box(lo, hi):
            return RZRegion.from_corners(0, 0, np.array(lo), np.array(hi))

        pt1 = box([0, 0], [1, 1])
        pt3 = box([0, 4], [1, 5])   # shares x-range with pt1
        pt4 = box([0, 2], [7, 3])   # wide in x
        assert dominance_volume(pt1, pt4) > dominance_volume(pt1, pt3)
