"""RetryPolicy / RetryBudget / CircuitBreaker under a fake clock."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.exceptions import (
    CircuitOpenError,
    ConfigurationError,
    DatasetError,
    DeadlineExceededError,
    OverloadedError,
    QueryPoisonedError,
    WriterDownError,
    is_retryable,
    retry_after_hint,
)
from repro.serving.resilience import CircuitBreaker, RetryBudget, RetryPolicy


class FakeClock:
    def __init__(self, now=0.0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


# ----------------------------------------------------------------------
# typed error taxonomy
# ----------------------------------------------------------------------
class TestErrorTaxonomy:
    def test_retryable_classification(self):
        assert is_retryable(OverloadedError("full"))
        assert is_retryable(WriterDownError("down"))
        assert is_retryable(CircuitOpenError("open"))
        assert not is_retryable(DeadlineExceededError("late"))
        assert not is_retryable(QueryPoisonedError("poison"))
        assert not is_retryable(DatasetError("bad"))
        assert not is_retryable(ValueError("nope"))

    def test_structured_overload_context(self):
        exc = OverloadedError(
            "shed", queue_depth=64, queue_limit=64, retry_after_seconds=0.5
        )
        assert exc.queue_depth == 64 and exc.queue_limit == 64
        assert retry_after_hint(exc) == 0.5

    def test_structured_deadline_context(self):
        exc = DeadlineExceededError(
            "late", queue_wait_seconds=1.5, queue_depth=9,
            retry_after_seconds=0.25,
        )
        assert exc.queue_wait_seconds == 1.5
        assert exc.queue_depth == 9
        assert retry_after_hint(exc) == 0.25

    def test_writer_down_applied_tristate(self):
        assert WriterDownError("x", applied=True).applied is True
        assert WriterDownError("x", applied=False).applied is False
        assert WriterDownError("x").applied is None

    def test_hint_defaults_none(self):
        assert retry_after_hint(OverloadedError("shed")) is None
        assert retry_after_hint(ValueError("x")) is None


# ----------------------------------------------------------------------
# retry policy
# ----------------------------------------------------------------------
class TestRetryPolicy:
    def test_delay_grows_and_caps(self):
        policy = RetryPolicy(
            base_delay=0.1, multiplier=2.0, max_delay=0.5, jitter=0.0
        )
        assert policy.delay(1) == pytest.approx(0.1)
        assert policy.delay(2) == pytest.approx(0.2)
        assert policy.delay(3) == pytest.approx(0.4)
        assert policy.delay(4) == pytest.approx(0.5)  # capped

    def test_jitter_is_deterministic_and_bounded(self):
        policy = RetryPolicy(base_delay=0.1, jitter=0.5, seed=3)
        d1 = policy.delay(1, key=("ds", 7))
        d2 = policy.delay(1, key=("ds", 7))
        assert d1 == d2  # same seed + key -> same delay
        assert 0.05 <= d1 <= 0.1  # within [base*(1-jitter), base]
        assert policy.delay(1, key=("ds", 8)) != d1  # keys decorrelate

    def test_retries_retryable_until_success(self):
        calls = []

        def flaky():
            calls.append(1)
            if len(calls) < 3:
                raise OverloadedError("shed")
            return "ok"

        pauses = []
        policy = RetryPolicy(max_attempts=5, base_delay=0.01, seed=0)
        result = policy.call(
            flaky, sleep=pauses.append,
        )
        assert result == "ok"
        assert len(calls) == 3
        assert len(pauses) == 2

    def test_terminal_error_not_retried(self):
        calls = []

        def poisoned():
            calls.append(1)
            raise QueryPoisonedError("bad")

        policy = RetryPolicy(max_attempts=5)
        with pytest.raises(QueryPoisonedError):
            policy.call(poisoned, sleep=lambda s: None)
        assert len(calls) == 1

    def test_attempts_exhausted_raises_last(self):
        policy = RetryPolicy(max_attempts=3, base_delay=0.0)
        calls = []

        def always():
            calls.append(1)
            raise OverloadedError("shed")

        with pytest.raises(OverloadedError):
            policy.call(always, sleep=lambda s: None)
        assert len(calls) == 3

    def test_retry_after_hint_overrides_shorter_backoff(self):
        pauses = []

        def flaky():
            if not pauses:
                raise OverloadedError("shed", retry_after_seconds=0.9)
            return "ok"

        policy = RetryPolicy(base_delay=0.001, max_delay=0.01, seed=0)
        policy.call(flaky, sleep=pauses.append)
        assert pauses == [pytest.approx(0.9)]

    def test_on_retry_callback_fires(self):
        seen = []

        def flaky():
            if len(seen) < 1:
                raise WriterDownError("down")
            return "ok"

        policy = RetryPolicy(base_delay=0.0)
        policy.call(
            flaky,
            sleep=lambda s: None,
            on_retry=lambda attempt, exc, pause: seen.append(
                (attempt, type(exc).__name__)
            ),
        )
        assert seen == [(1, "WriterDownError")]

    def test_empty_budget_turns_retryable_terminal(self):
        budget = RetryBudget(capacity=1.0, refill_per_success=0.0)
        policy = RetryPolicy(max_attempts=10, base_delay=0.0)
        calls = []

        def always():
            calls.append(1)
            raise OverloadedError("shed")

        with pytest.raises(OverloadedError):
            policy.call(always, budget=budget, sleep=lambda s: None)
        # 1 initial + 1 budgeted retry, then the bucket is empty
        assert len(calls) == 2

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ConfigurationError):
            RetryPolicy(jitter=1.5)
        with pytest.raises(ConfigurationError):
            RetryPolicy(multiplier=0.5)


class TestRetryBudget:
    def test_spend_and_refill(self):
        budget = RetryBudget(capacity=2.0, refill_per_success=0.5)
        assert budget.spend() and budget.spend()
        assert not budget.spend()  # empty
        budget.deposit()
        assert budget.tokens == pytest.approx(0.5)
        assert not budget.spend()  # still < 1 token
        budget.deposit()
        assert budget.spend()

    def test_deposit_caps_at_capacity(self):
        budget = RetryBudget(capacity=1.0, refill_per_success=5.0)
        budget.deposit()
        assert budget.tokens == pytest.approx(1.0)

    def test_success_deposits_through_policy(self):
        budget = RetryBudget(capacity=10.0, refill_per_success=0.5)
        RetryPolicy().call(lambda: "ok", budget=budget)
        assert budget.tokens == pytest.approx(10.0)  # capped

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            RetryBudget(capacity=0)


# ----------------------------------------------------------------------
# circuit breaker
# ----------------------------------------------------------------------
class TestCircuitBreaker:
    def _breaker(self, clock, threshold=3, cooldown=10.0, transitions=None):
        return CircuitBreaker(
            "ds",
            failure_threshold=threshold,
            cooldown_seconds=cooldown,
            clock=clock,
            on_transition=(
                None if transitions is None
                else lambda ds, old, new: transitions.append((old, new))
            ),
        )

    def test_opens_after_consecutive_failures(self):
        clock = FakeClock()
        transitions = []
        breaker = self._breaker(clock, transitions=transitions)
        for _ in range(2):
            breaker.allow()
            breaker.record_failure()
        assert breaker.state == CircuitBreaker.CLOSED
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.OPEN
        assert transitions == [("closed", "open")]
        with pytest.raises(CircuitOpenError) as excinfo:
            breaker.allow()
        assert excinfo.value.retry_after_seconds == pytest.approx(10.0)
        assert excinfo.value.failures == 3

    def test_success_resets_consecutive_count(self):
        clock = FakeClock()
        breaker = self._breaker(clock)
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.CLOSED

    def test_half_open_single_probe(self):
        clock = FakeClock()
        breaker = self._breaker(clock)
        for _ in range(3):
            breaker.record_failure()
        clock.advance(10.0)
        assert breaker.state == CircuitBreaker.HALF_OPEN
        breaker.allow()  # the probe gets through
        with pytest.raises(CircuitOpenError):
            breaker.allow()  # the probe slot is taken
        breaker.record_success()
        assert breaker.state == CircuitBreaker.CLOSED
        breaker.allow()

    def test_half_open_failure_reopens(self):
        clock = FakeClock()
        breaker = self._breaker(clock)
        for _ in range(3):
            breaker.record_failure()
        clock.advance(10.0)
        breaker.allow()
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.OPEN
        with pytest.raises(CircuitOpenError) as excinfo:
            breaker.allow()
        # a fresh cooldown from the re-open instant
        assert excinfo.value.retry_after_seconds == pytest.approx(10.0)

    def test_retry_after_counts_down(self):
        clock = FakeClock()
        breaker = self._breaker(clock)
        for _ in range(3):
            breaker.record_failure()
        clock.advance(4.0)
        with pytest.raises(CircuitOpenError) as excinfo:
            breaker.allow()
        assert excinfo.value.retry_after_seconds == pytest.approx(6.0)

    def test_abort_probe_frees_slot(self):
        clock = FakeClock()
        breaker = self._breaker(clock)
        for _ in range(3):
            breaker.record_failure()
        clock.advance(10.0)
        breaker.allow()
        breaker.abort_probe()  # the probe never ran
        breaker.allow()  # slot is free again

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            CircuitBreaker("ds", failure_threshold=0)
        with pytest.raises(ConfigurationError):
            CircuitBreaker("ds", cooldown_seconds=-1.0)


# ----------------------------------------------------------------------
# half-open probe slot under concurrent hammering
# ----------------------------------------------------------------------
class TestCircuitBreakerConcurrency:
    """The half-open probe slot is a mutex, not a hint: no matter how
    many threads race ``allow()``, exactly one is the probe."""

    def _hammer(self, breaker, threads):
        import threading

        barrier = threading.Barrier(threads)
        outcomes = []
        lock = threading.Lock()

        def slam():
            barrier.wait()
            try:
                breaker.allow()
            except CircuitOpenError:
                admitted = False
            else:
                admitted = True
            with lock:
                outcomes.append(admitted)

        workers = [
            threading.Thread(target=slam) for _ in range(threads)
        ]
        for w in workers:
            w.start()
        for w in workers:
            w.join()
        return outcomes

    @given(
        threads=st.integers(min_value=2, max_value=12),
        threshold=st.integers(min_value=1, max_value=4),
    )
    @settings(max_examples=25, deadline=None)
    def test_half_open_admits_exactly_one_probe(self, threads, threshold):
        clock = FakeClock()
        breaker = CircuitBreaker(
            "ds",
            failure_threshold=threshold,
            cooldown_seconds=10.0,
            clock=clock,
        )
        for _ in range(threshold):
            breaker.record_failure()
        clock.advance(10.0)
        assert breaker.state == CircuitBreaker.HALF_OPEN

        outcomes = self._hammer(breaker, threads)
        assert len(outcomes) == threads
        assert sum(outcomes) == 1, (
            f"{sum(outcomes)} of {threads} threads were admitted as "
            f"the half-open probe (want exactly 1)"
        )

        # the probe never ran: abort must free the slot for exactly
        # one new winner, not zero and not several
        breaker.abort_probe()
        again = self._hammer(breaker, threads)
        assert sum(again) == 1

        # the probe failing re-opens: nobody gets in until cooldown
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.OPEN
        rejected = self._hammer(breaker, threads)
        assert sum(rejected) == 0

        # ... and a successful probe after cooldown closes for everyone
        clock.advance(10.0)
        assert sum(self._hammer(breaker, threads)) == 1
        breaker.record_success()
        assert breaker.state == CircuitBreaker.CLOSED
        assert sum(self._hammer(breaker, threads)) == threads
