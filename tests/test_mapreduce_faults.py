"""Fault injection & recovery: the engine's correctness-under-failures
contract.

The headline guarantee: for every plan and executor, the skyline
computed under a seeded :class:`FaultPlan` (transient task failures +
worker crashes that lose map output + shuffle corruption) is
bit-identical to the fault-free skyline, and the same seed reproduces
the same fault schedule and failure counters."""

import numpy as np
import pytest

from repro import run_plan
from repro.core.exceptions import (
    ConfigurationError,
    FaultInjectionError,
    MapReduceError,
)
from repro.data.synthetic import anticorrelated
from repro.mapreduce.cluster import SimulatedCluster
from repro.mapreduce.faults import FaultPlan
from repro.mapreduce.hdfs import InMemoryDFS
from repro.mapreduce.job import MapReduceJob
from repro.mapreduce.parallel import ThreadedCluster
from repro.mapreduce.runtime import MapReduceRuntime
from repro.mapreduce.types import Block


class TestFaultPlan:
    def test_draws_are_deterministic(self):
        a = FaultPlan(seed=3, task_failure_rate=0.5)
        b = FaultPlan(seed=3, task_failure_rate=0.5)
        decisions_a = [
            a.task_attempt_fails("p:map", i, k)
            for i in range(20)
            for k in range(1, 4)
        ]
        decisions_b = [
            b.task_attempt_fails("p:map", i, k)
            for i in range(20)
            for k in range(1, 4)
        ]
        assert decisions_a == decisions_b
        assert any(decisions_a) and not all(decisions_a)

    def test_different_seeds_differ(self):
        a = FaultPlan(seed=1, task_failure_rate=0.5)
        b = FaultPlan(seed=2, task_failure_rate=0.5)
        decisions = lambda plan: [  # noqa: E731
            plan.task_attempt_fails("p:map", i, 1) for i in range(64)
        ]
        assert decisions(a) != decisions(b)

    def test_scripted_failures_override_rate(self):
        plan = FaultPlan(scripted_failures={("p", 0): 2})
        assert plan.task_attempt_fails("p", 0, 1)
        assert plan.task_attempt_fails("p", 0, 2)
        assert not plan.task_attempt_fails("p", 0, 3)
        assert not plan.task_attempt_fails("p", 1, 1)

    def test_at_least_one_worker_survives_crashes(self):
        plan = FaultPlan(seed=0, worker_crash_rate=0.999)
        for phase in ("a:map", "b:map", "c:map"):
            crashed = plan.crashed_workers(phase, 4)
            assert len(crashed) < 4

    def test_backoff_grows_exponentially(self):
        plan = FaultPlan(backoff_base=0.1)
        assert plan.backoff_seconds(1) == pytest.approx(0.1)
        assert plan.backoff_seconds(3) == pytest.approx(0.4)

    def test_corrupt_copy_breaks_checksum(self):
        block = Block(np.arange(4), np.ones((4, 3)))
        corrupted = FaultPlan.corrupt_copy(block)
        assert corrupted.checksum() != block.checksum()
        # Empty blocks carry no payload bytes to flip.
        empty = Block.empty(3)
        assert FaultPlan.corrupt_copy(empty).checksum() == empty.checksum()

    def test_parse_roundtrip(self):
        plan = FaultPlan.parse(
            "seed=7, task=0.1, crash=0.2, corrupt=0.05, attempts=6, "
            "backoff=0.01"
        )
        assert plan.seed == 7
        assert plan.task_failure_rate == pytest.approx(0.1)
        assert plan.worker_crash_rate == pytest.approx(0.2)
        assert plan.corruption_rate == pytest.approx(0.05)
        assert plan.max_attempts == 6
        assert plan.backoff_base == pytest.approx(0.01)

    def test_parse_rejects_garbage(self):
        with pytest.raises(ConfigurationError):
            FaultPlan.parse("bogus=1")
        with pytest.raises(ConfigurationError):
            FaultPlan.parse("task")
        with pytest.raises(ConfigurationError):
            FaultPlan.parse("task=lots")

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            FaultPlan(task_failure_rate=1.0)
        with pytest.raises(ConfigurationError):
            FaultPlan(worker_crash_rate=-0.1)
        with pytest.raises(ConfigurationError):
            FaultPlan(max_attempts=0)
        with pytest.raises(ConfigurationError):
            FaultPlan(backoff_base=-1.0)


class TestClusterRetries:
    @pytest.mark.parametrize("cluster_cls", [SimulatedCluster, ThreadedCluster])
    def test_transient_failures_are_retried(self, cluster_cls):
        plan = FaultPlan(
            scripted_failures={("p", 0): 2, ("p", 2): 1},
            max_attempts=4,
            backoff_base=0.01,
        )
        cluster = cluster_cls(2, fault_plan=plan)
        results = cluster.run_round(
            "p", [lambda i=i: (i, 1) for i in range(4)]
        )
        assert results == [0, 1, 2, 3]
        metrics = cluster.metrics_for("p")
        assert metrics.failed_attempts == 3
        # attempt 1 + attempt 2 of task 0: 0.01 + 0.02; task 2: 0.01
        assert metrics.backoff_seconds == pytest.approx(0.04)
        # Backoff is charged to the worker that ran the task.
        assert metrics.ledgers[0].failed_attempts == 3

    @pytest.mark.parametrize("cluster_cls", [SimulatedCluster, ThreadedCluster])
    def test_retry_budget_exhaustion_raises(self, cluster_cls):
        plan = FaultPlan(scripted_failures={("p", 0): 99}, max_attempts=3)
        cluster = cluster_cls(2, fault_plan=plan)
        with pytest.raises(FaultInjectionError):
            cluster.run_round("p", [lambda: (1, 1)])

    def test_no_plan_means_no_retries(self):
        cluster = SimulatedCluster(2)
        cluster.run_round("p", [lambda: (1, 1)])
        assert cluster.metrics_for("p").failed_attempts == 0

    def test_placements_recorded_for_lineage(self):
        cluster = SimulatedCluster(3)
        cluster.run_round("p", [lambda: (1, 1) for _ in range(5)])
        assert cluster.metrics_for("p").placements == [0, 1, 2, 0, 1]


class TestThreadedClusterConfigRejection:
    def test_inherited_slowdown_factors_rejected(self):
        cluster = ThreadedCluster(2)
        cluster.slowdown_factors = [2.0, 1.0]
        with pytest.raises(ConfigurationError):
            cluster.run_round("p", [lambda: (1, 1)])

    def test_inherited_failed_workers_rejected(self):
        cluster = ThreadedCluster(2)
        cluster.failed_workers = {0}
        with pytest.raises(ConfigurationError):
            cluster.run_round("p", [lambda: (1, 1)])

    def test_inherited_speculative_rejected(self):
        cluster = ThreadedCluster(2)
        cluster.speculative = True
        with pytest.raises(ConfigurationError):
            cluster.run_round("p", [lambda: (1, 1)])


# ----------------------------------------------------------------------
# runtime-level recovery
# ----------------------------------------------------------------------
def make_blocks(n_blocks=4, per_block=10, d=2, seed=0):
    rng = np.random.default_rng(seed)
    blocks = []
    next_id = 0
    for _ in range(n_blocks):
        ids = np.arange(next_id, next_id + per_block)
        next_id += per_block
        blocks.append(
            Block(ids, rng.integers(0, 10, (per_block, d)).astype(float))
        )
    return blocks


def parity_mapper(block, ctx):
    for parity in (0, 1):
        mask = block.ids % 2 == parity
        if mask.any():
            yield parity, block.select(mask)


def concat_reducer(key, blocks, ctx):
    return Block.concat(blocks)


class TestRuntimeRecovery:
    def run_job(self, fault_plan, cluster_cls=SimulatedCluster, **kwargs):
        cluster = cluster_cls(4, fault_plan=fault_plan)
        runtime = MapReduceRuntime(cluster)
        job = MapReduceJob("j", parity_mapper, concat_reducer)
        return runtime.run(job, make_blocks(n_blocks=8), **kwargs)

    @staticmethod
    def output_ids(result):
        return {
            key: sorted(value.ids.tolist())
            for key, value in result.outputs.items()
        }

    def test_worker_crash_reexecutes_lost_map_tasks(self):
        clean = self.run_job(None)
        faulted = self.run_job(
            FaultPlan(seed=11, worker_crash_rate=0.5, backoff_base=0.0)
        )
        assert self.output_ids(faulted) == self.output_ids(clean)
        assert faulted.counters.get("map", "worker_crashes") > 0
        assert faulted.counters.get("map", "reexecuted_tasks") > 0
        assert faulted.recovery_metrics is not None
        assert faulted.recovery_cost > 0
        # Hadoop counter semantics: only surviving attempts count, so
        # record counters match the clean run exactly.
        assert faulted.counters.get("map", "input_records") == (
            clean.counters.get("map", "input_records")
        )
        assert faulted.counters.get("map", "output_records") == (
            clean.counters.get("map", "output_records")
        )

    def test_crashed_workers_excluded_from_recovery_placement(self):
        plan = FaultPlan(seed=11, worker_crash_rate=0.5)
        cluster = SimulatedCluster(4, fault_plan=plan)
        runtime = MapReduceRuntime(cluster)
        job = MapReduceJob("j", parity_mapper, concat_reducer)
        runtime.run(job, make_blocks(n_blocks=8))
        crashed = set(plan.crashed_workers("j:map", 4))
        assert crashed  # seed chosen so the schedule crashes someone
        recovery = cluster.metrics_for("j:map:recovery")
        placed_on = {
            w.worker_id for w in recovery.ledgers if w.tasks > 0
        }
        assert placed_on and not (placed_on & crashed)

    def test_shuffle_corruption_detected_and_refetched(self):
        clean = self.run_job(None)
        faulted = self.run_job(FaultPlan(seed=5, corruption_rate=0.5))
        assert self.output_ids(faulted) == self.output_ids(clean)
        assert faulted.counters.get("shuffle", "corrupt_blocks") > 0
        assert faulted.counters.get("shuffle", "refetched_bytes") > 0
        # The logical shuffle volume is the clean one; re-fetch traffic
        # is reported separately.
        assert faulted.shuffle_records == clean.shuffle_records
        assert faulted.shuffle_bytes == clean.shuffle_bytes

    def test_combined_faults_on_threaded_cluster(self):
        clean = self.run_job(None)
        plan = FaultPlan(
            seed=9,
            task_failure_rate=0.2,
            worker_crash_rate=0.4,
            corruption_rate=0.3,
            max_attempts=8,
            backoff_base=0.0,
        )
        faulted = self.run_job(plan, cluster_cls=ThreadedCluster)
        assert self.output_ids(faulted) == self.output_ids(clean)

    def test_skipped_outputs_counter(self):
        def scalar_reducer(key, blocks, ctx):
            return sum(b.size for b in blocks)

        runtime = MapReduceRuntime(SimulatedCluster(2))
        job = MapReduceJob("j", parity_mapper, scalar_reducer)
        result = runtime.run(job, make_blocks(), output_path="out")
        assert result.counters.get("dfs", "skipped_outputs") == 2
        assert runtime.dfs.read("out") == []

    def test_skipped_outputs_zero_for_block_outputs(self):
        runtime = MapReduceRuntime(SimulatedCluster(2))
        job = MapReduceJob("j", parity_mapper, concat_reducer)
        result = runtime.run(job, make_blocks(), output_path="out")
        assert result.counters.get("dfs", "skipped_outputs") == 0


class TestDFSChecksums:
    def test_verify_intact_file(self):
        dfs = InMemoryDFS()
        dfs.write("f", [Block(np.arange(3), np.ones((3, 2)))])
        assert dfs.verify("f")

    def test_verify_detects_mutation(self):
        dfs = InMemoryDFS()
        block = Block(np.arange(3), np.ones((3, 2)))
        dfs.write("f", [block])
        block.points[0, 0] = 99.0  # bit rot behind the DFS's back
        assert not dfs.verify("f")

    def test_verify_missing_path(self):
        with pytest.raises(MapReduceError):
            InMemoryDFS().verify("nope")

    def test_delete_clears_checksums(self):
        dfs = InMemoryDFS()
        dfs.write("f", [])
        dfs.delete("f")
        dfs.write("f", [])  # would raise if stale checksum state lingered
        assert dfs.verify("f")


# ----------------------------------------------------------------------
# the headline property: skyline identical under any fault schedule
# ----------------------------------------------------------------------
PLANS = [
    f"{part}+{local}"
    for part in ("Naive-Z", "ZHG", "ZDG")
    for local in ("SB", "ZS")
]

FAULTS = FaultPlan(
    seed=17,
    task_failure_rate=0.2,
    worker_crash_rate=0.25,
    corruption_rate=0.2,
    max_attempts=8,
    backoff_base=0.0,
)


class TestSkylineIdenticalUnderFaults:
    @pytest.fixture(scope="class")
    def dataset(self):
        return anticorrelated(900, 4, seed=2)

    @pytest.mark.parametrize("plan", PLANS)
    @pytest.mark.parametrize(
        "executor", ["simulated", "threaded", "procpool"]
    )
    def test_fault_free_equivalence(self, dataset, plan, executor):
        kwargs = dict(num_groups=8, num_workers=4, seed=0)
        clean = run_plan(plan, dataset, **kwargs)
        faulted = run_plan(
            plan, dataset, executor=executor, fault_plan=FAULTS, **kwargs
        )
        assert sorted(faulted.skyline.ids.tolist()) == sorted(
            clean.skyline.ids.tolist()
        )
        assert np.array_equal(
            faulted.skyline.points[np.argsort(faulted.skyline.ids)],
            clean.skyline.points[np.argsort(clean.skyline.ids)],
        )
        # The schedule genuinely fired (otherwise this test is vacuous).
        assert sum(faulted.fault_summary().values()) > 0

    def test_same_seed_same_schedule_and_counters(self, dataset):
        kwargs = dict(
            num_groups=8, num_workers=4, seed=0, fault_plan=FAULTS
        )
        first = run_plan("ZDG+ZS+ZM", dataset, **kwargs)
        second = run_plan("ZDG+ZS+ZM", dataset, **kwargs)
        assert first.fault_summary() == second.fault_summary()
        assert (
            first.phase1.counters.as_dict()
            == second.phase1.counters.as_dict()
        )
        assert sorted(first.skyline.ids.tolist()) == sorted(
            second.skyline.ids.tolist()
        )

    def test_counters_identical_across_executors(self, dataset):
        kwargs = dict(
            num_groups=8, num_workers=4, seed=0, fault_plan=FAULTS
        )
        simulated = run_plan("ZDG+ZS+ZM", dataset, **kwargs)
        threaded = run_plan(
            "ZDG+ZS+ZM", dataset, executor="threaded", **kwargs
        )
        pooled = run_plan(
            "ZDG+ZS+ZM", dataset, executor="procpool", **kwargs
        )
        assert simulated.fault_summary() == threaded.fault_summary()
        assert simulated.fault_summary() == pooled.fault_summary()

    def test_fault_plan_accepts_spec_string(self, dataset):
        report = run_plan(
            "ZDG+ZS",
            dataset,
            num_groups=8,
            num_workers=4,
            seed=0,
            fault_plan="seed=17,task=0.2,crash=0.25,corrupt=0.2,"
            "attempts=8,backoff=0.0",
        )
        clean = run_plan(
            "ZDG+ZS", dataset, num_groups=8, num_workers=4, seed=0
        )
        assert sorted(report.skyline.ids.tolist()) == sorted(
            clean.skyline.ids.tolist()
        )
