"""Unit tests for synthetic and real-world-simulator workloads."""

import numpy as np
import pytest

from repro.core.exceptions import DatasetError
from repro.core.skyline import skyline_indices_oracle
from repro.data.realworld import (
    dbpedia_lda_like,
    flickr_gist_like,
    hou_like,
    nba_like,
    nuswide_like,
)
from repro.data.scaling import scale_up
from repro.data.synthetic import (
    anticorrelated,
    correlated,
    generate,
    independent,
)


class TestSyntheticBasics:
    @pytest.mark.parametrize(
        "gen", [independent, correlated, anticorrelated]
    )
    def test_shape_and_range(self, gen):
        ds = gen(500, 6, seed=1)
        assert ds.size == 500
        assert ds.dimensions == 6
        assert ds.points.min() >= 0.0
        assert ds.points.max() <= 1.0

    @pytest.mark.parametrize(
        "gen", [independent, correlated, anticorrelated]
    )
    def test_deterministic_given_seed(self, gen):
        a = gen(100, 3, seed=42)
        b = gen(100, 3, seed=42)
        assert np.array_equal(a.points, b.points)

    @pytest.mark.parametrize(
        "gen", [independent, correlated, anticorrelated]
    )
    def test_different_seeds_differ(self, gen):
        a = gen(100, 3, seed=1)
        b = gen(100, 3, seed=2)
        assert not np.array_equal(a.points, b.points)

    def test_invalid_sizes(self):
        with pytest.raises(DatasetError):
            independent(0, 3)
        with pytest.raises(DatasetError):
            independent(10, 0)

    def test_generate_dispatch(self):
        assert generate("independent", 10, 2).size == 10
        assert generate("anti-correlated", 10, 2).size == 10
        with pytest.raises(DatasetError):
            generate("zipf", 10, 2)


class TestDistributionShapes:
    """The skyline-size ordering that defines the three regimes:
    correlated << independent << anti-correlated."""

    def test_skyline_size_ordering(self):
        n, d = 3000, 5
        sizes = {}
        for name, gen in [
            ("corr", correlated),
            ("indep", independent),
            ("anti", anticorrelated),
        ]:
            ds = gen(n, d, seed=7)
            sizes[name] = len(skyline_indices_oracle(ds.points))
        assert sizes["corr"] < sizes["indep"] < sizes["anti"]

    def test_correlated_dimensions_correlate(self):
        ds = correlated(3000, 2, seed=3)
        corr = np.corrcoef(ds.points[:, 0], ds.points[:, 1])[0, 1]
        assert corr > 0.5

    def test_anticorrelated_dimensions_anticorrelate(self):
        ds = anticorrelated(3000, 2, seed=3)
        corr = np.corrcoef(ds.points[:, 0], ds.points[:, 1])[0, 1]
        assert corr < -0.5


class TestRealWorldSimulators:
    def test_nba_like_shape(self):
        ds = nba_like(350, seed=1)
        assert ds.size == 350
        assert ds.dimensions == 7

    def test_nba_like_anticorrelated_structure(self):
        # Specialist trade-offs: average pairwise correlation negative.
        ds = nba_like(2000, seed=2)
        corr = np.corrcoef(ds.points.T)
        off_diag = corr[~np.eye(7, dtype=bool)]
        assert off_diag.mean() < 0.1

    def test_hou_like_spending(self):
        ds = hou_like(1000, seed=1)
        assert ds.dimensions == 6
        assert (ds.points >= 0).all()
        # Varying totals: records must NOT all sum to the same value
        # (raw fractions would make every record a skyline point).
        sums = ds.points.sum(axis=1)
        assert sums.std() > 0.1
        # Not everything is a skyline point.
        from repro.core.skyline import skyline_indices_oracle

        assert len(skyline_indices_oracle(ds.points)) < ds.size

    def test_nuswide_like_dimensionality(self):
        ds = nuswide_like(200, seed=1)
        assert ds.dimensions == 225
        assert ds.points.min() >= 0.0

    def test_gist_like_dimensionality(self):
        ds = flickr_gist_like(100, seed=1)
        assert ds.dimensions == 512

    def test_lda_like_sparse_simplex(self):
        ds = dbpedia_lda_like(100, seed=1, topics_per_doc=8)
        assert ds.dimensions == 250
        # Most coordinates are the "inactive" value 1.0.
        inactive = (ds.points == 1.0).mean()
        assert inactive > 0.9

    def test_lda_topics_validation(self):
        with pytest.raises(DatasetError):
            dbpedia_lda_like(10, topics_per_doc=0)
        with pytest.raises(DatasetError):
            dbpedia_lda_like(10, dimensions=5, topics_per_doc=6)

    @pytest.mark.parametrize(
        "gen", [nba_like, hou_like, nuswide_like, flickr_gist_like,
                dbpedia_lda_like]
    )
    def test_deterministic(self, gen):
        assert np.array_equal(
            gen(50, seed=9).points, gen(50, seed=9).points
        )

    def test_rejects_nonpositive_n(self):
        with pytest.raises(DatasetError):
            nba_like(0)


class TestScaleUp:
    def test_target_size(self):
        ds = independent(200, 4, seed=1)
        big = scale_up(ds, 5.0, seed=2)
        assert big.size == 1000

    def test_original_rows_preserved(self):
        ds = independent(100, 3, seed=1)
        big = scale_up(ds, 3.0, seed=2)
        assert np.array_equal(big.points[:100], ds.points)

    def test_support_not_exceeded(self):
        ds = independent(300, 4, seed=1)
        big = scale_up(ds, 10.0, seed=2)
        lo, hi = ds.bounds()
        assert (big.points >= lo).all()
        assert (big.points <= hi).all()

    def test_factor_one_is_copy(self):
        ds = independent(100, 3, seed=1)
        same = scale_up(ds, 1.0)
        assert same.size == 100

    def test_rejects_shrinking(self):
        ds = independent(100, 3, seed=1)
        with pytest.raises(DatasetError):
            scale_up(ds, 0.5)

    def test_distribution_roughly_preserved(self):
        ds = anticorrelated(1000, 2, seed=3)
        big = scale_up(ds, 5.0, seed=4)
        corr_small = np.corrcoef(ds.points.T)[0, 1]
        corr_big = np.corrcoef(big.points.T)[0, 1]
        assert abs(corr_small - corr_big) < 0.1
