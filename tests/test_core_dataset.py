"""Unit tests for the Dataset container."""

import numpy as np
import pytest

from repro.core.dataset import Dataset
from repro.core.exceptions import DatasetError


class TestConstruction:
    def test_basic_properties(self):
        ds = Dataset([[1.0, 2.0], [3.0, 4.0]], name="t")
        assert ds.size == 2
        assert ds.dimensions == 2
        assert len(ds) == 2
        assert ds.name == "t"
        assert ds.ids.tolist() == [0, 1]

    def test_rejects_1d_input(self):
        with pytest.raises(DatasetError):
            Dataset([1.0, 2.0])

    def test_rejects_empty(self):
        with pytest.raises(DatasetError):
            Dataset(np.empty((0, 3)))

    def test_rejects_zero_dimensions(self):
        with pytest.raises(DatasetError):
            Dataset(np.empty((3, 0)))

    def test_rejects_nan(self):
        with pytest.raises(DatasetError):
            Dataset([[1.0, float("nan")]])

    def test_rejects_inf(self):
        with pytest.raises(DatasetError):
            Dataset([[1.0, float("inf")]])

    def test_rejects_duplicate_ids(self):
        with pytest.raises(DatasetError):
            Dataset([[1.0], [2.0]], ids=[5, 5])

    def test_rejects_mismatched_ids(self):
        with pytest.raises(DatasetError):
            Dataset([[1.0], [2.0]], ids=[1, 2, 3])

    def test_points_are_immutable(self):
        ds = Dataset([[1.0, 2.0]])
        with pytest.raises(ValueError):
            ds.points[0, 0] = 9.0

    def test_input_array_is_copied(self):
        src = np.array([[1.0, 2.0]])
        ds = Dataset(src)
        src[0, 0] = 99.0
        assert ds.points[0, 0] == 1.0


class TestOperations:
    def test_iteration_yields_id_point_pairs(self):
        ds = Dataset([[1.0], [2.0]], ids=[10, 20])
        pairs = list(ds)
        assert pairs[0][0] == 10
        assert pairs[1][1][0] == 2.0

    def test_bounds(self):
        ds = Dataset([[1.0, 5.0], [3.0, 2.0]])
        lo, hi = ds.bounds()
        assert lo.tolist() == [1.0, 2.0]
        assert hi.tolist() == [3.0, 5.0]

    def test_select_preserves_ids(self):
        ds = Dataset([[1.0], [2.0], [3.0]], ids=[7, 8, 9])
        sub = ds.select([2, 0])
        assert sub.ids.tolist() == [9, 7]
        assert sub.points[:, 0].tolist() == [3.0, 1.0]

    def test_select_empty_raises(self):
        ds = Dataset([[1.0]])
        with pytest.raises(DatasetError):
            ds.select([])

    def test_select_by_mask(self):
        ds = Dataset([[1.0], [2.0], [3.0]])
        sub = ds.select_by_mask(np.array([True, False, True]))
        assert sub.size == 2

    def test_select_by_mask_validates_shape(self):
        ds = Dataset([[1.0], [2.0]])
        with pytest.raises(DatasetError):
            ds.select_by_mask(np.array([True]))

    def test_concat_keeps_ids(self):
        a = Dataset([[1.0]], ids=[0])
        b = Dataset([[2.0]], ids=[1])
        both = Dataset.concat([a, b])
        assert both.ids.tolist() == [0, 1]

    def test_concat_dimension_mismatch(self):
        a = Dataset([[1.0]])
        b = Dataset([[1.0, 2.0]])
        with pytest.raises(DatasetError):
            Dataset.concat([a, b])

    def test_concat_empty_list(self):
        with pytest.raises(DatasetError):
            Dataset.concat([])

    def test_normalized_unit_range(self):
        ds = Dataset([[0.0, 10.0], [5.0, 20.0], [10.0, 30.0]])
        norm = ds.normalized()
        assert norm.points.min() == 0.0
        assert norm.points.max() == 1.0

    def test_normalized_constant_dimension(self):
        ds = Dataset([[1.0, 5.0], [2.0, 5.0]])
        norm = ds.normalized()
        assert np.all(norm.points[:, 1] == 0.0)

    def test_repr_mentions_shape(self):
        ds = Dataset([[1.0, 2.0]], name="x")
        assert "n=1" in repr(ds) and "d=2" in repr(ds)
