"""Property-based tests of the full pipeline: routing completeness and
end-to-end exactness on randomly drawn configurations."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import run_plan
from repro.core.skyline import is_skyline_of
from repro.partitioning import get_partitioner
from repro.partitioning.base import DROPPED, available_partitioners
from repro.partitioning.sampling import reservoir_sample
from repro.zorder.encoding import quantize_dataset

PARTITIONERS = st.sampled_from(available_partitioners())
DISTS = st.sampled_from(["independent", "correlated", "anticorrelated"])


@st.composite
def snapped_dataset(draw):
    from repro.data.synthetic import generate

    dist = draw(DISTS)
    n = draw(st.integers(min_value=50, max_value=600))
    d = draw(st.integers(min_value=2, max_value=6))
    seed = draw(st.integers(min_value=0, max_value=100))
    ds = generate(dist, n, d, seed=seed)
    return quantize_dataset(ds, bits_per_dim=8)


@given(snapped_dataset(), PARTITIONERS, st.integers(2, 12))
@settings(max_examples=25, deadline=None)
def test_every_point_routed_or_safely_dropped(sc, name, num_groups):
    snapped, codec = sc
    sample = reservoir_sample(snapped, ratio=0.2, seed=0)
    rule = get_partitioner(name).fit(sample, codec, num_groups, seed=0)
    gids = rule.assign_groups(snapped.points, snapped.ids)
    assert gids.shape == (snapped.size,)
    valid = gids[gids != DROPPED]
    assert (valid >= 0).all()
    assert (valid < rule.num_groups).all()
    # Dropping is only ever allowed for dominated points (checked
    # exhaustively in the dedicated ZDG test; here: never drop a point
    # that nothing dominates).
    if (gids == DROPPED).any():
        from repro.core.skyline import skyline_indices_oracle

        sky = set(skyline_indices_oracle(snapped.points).tolist())
        dropped_positions = set(np.flatnonzero(gids == DROPPED).tolist())
        assert not (sky & dropped_positions)


@given(
    st.sampled_from(
        ["Grid+SB", "Angle+ZS", "Naive-Z+ZS", "ZHG+ZS", "ZDG+ZS+ZM"]
    ),
    DISTS,
    st.integers(0, 50),
)
@settings(max_examples=15, deadline=None)
def test_pipeline_exact_on_random_configs(plan, dist, seed):
    from repro.data.synthetic import generate

    ds = generate(dist, 400, 3, seed=seed)
    snapped, _ = quantize_dataset(ds, bits_per_dim=9)
    report = run_plan(
        plan, ds, num_groups=6, num_workers=3, bits_per_dim=9, seed=seed
    )
    assert is_skyline_of(report.skyline.points, snapped.points)


@given(snapped_dataset(), PARTITIONERS, st.integers(2, 12))
@settings(max_examples=25, deadline=None)
def test_rule_serialisation_preserves_assignment(sc, name, num_groups):
    """Every rule kind must survive the JSON wire format with its group
    assignment intact — the checkpoint store (and a real deployment's
    distributed cache) ships rules exactly this way."""
    from repro.pipeline.serialization import rule_from_json, rule_to_json

    snapped, codec = sc
    sample = reservoir_sample(snapped, ratio=0.2, seed=0)
    rule = get_partitioner(name).fit(sample, codec, num_groups, seed=0)
    restored = rule_from_json(rule_to_json(rule))
    assert restored.num_groups == rule.num_groups
    assert np.array_equal(
        rule.assign_groups(snapped.points, snapped.ids),
        restored.assign_groups(snapped.points, snapped.ids),
    )
