"""Unit and randomized tests for incremental skyline maintenance."""

import numpy as np
import pytest

from repro.core.exceptions import DatasetError
from repro.maintenance import SkylineMaintainer
from repro.zorder.encoding import ZGridCodec


@pytest.fixture
def codec() -> ZGridCodec:
    return ZGridCodec.grid_identity(3, bits_per_dim=5)


def fresh(codec, rng, n=60):
    m = SkylineMaintainer(codec)
    pts = rng.integers(0, 32, (n, 3)).astype(float)
    m.insert_block(pts, np.arange(n))
    return m, pts


class TestInserts:
    def test_empty_maintainer(self, codec):
        m = SkylineMaintainer(codec)
        assert m.size == 0
        assert m.skyline_size == 0
        m.verify()

    def test_single_insert(self, codec):
        m = SkylineMaintainer(codec)
        m.insert([1.0, 2.0, 3.0], 7)
        points, ids = m.skyline()
        assert ids.tolist() == [7]
        m.verify()

    def test_batch_insert_matches_oracle(self, codec):
        rng = np.random.default_rng(1)
        m, _ = fresh(codec, rng)
        m.verify()

    def test_incremental_batches_match_oracle(self, codec):
        rng = np.random.default_rng(2)
        m = SkylineMaintainer(codec)
        next_id = 0
        for _ in range(6):
            n = int(rng.integers(5, 40))
            pts = rng.integers(0, 32, (n, 3)).astype(float)
            m.insert_block(pts, np.arange(next_id, next_id + n))
            next_id += n
            m.verify()

    def test_dominating_insert_shrinks_skyline(self, codec):
        m = SkylineMaintainer(codec)
        m.insert_block(
            np.array([[10.0, 10.0, 10.0], [12.0, 9.0, 11.0]]),
            np.array([0, 1]),
        )
        assert m.skyline_size == 2
        m.insert([1.0, 1.0, 1.0], 2)
        points, ids = m.skyline()
        assert ids.tolist() == [2]
        assert m.size == 3

    def test_duplicate_id_rejected(self, codec):
        m = SkylineMaintainer(codec)
        m.insert([1.0, 1.0, 1.0], 0)
        with pytest.raises(DatasetError):
            m.insert([2.0, 2.0, 2.0], 0)

    def test_bad_shapes_rejected(self, codec):
        m = SkylineMaintainer(codec)
        with pytest.raises(DatasetError):
            m.insert_block(np.zeros((2, 3)), np.array([1]))


class TestDeletes:
    def test_delete_non_skyline_point_keeps_skyline(self, codec):
        m = SkylineMaintainer(codec)
        m.insert_block(
            np.array([[1.0, 1.0, 1.0], [9.0, 9.0, 9.0]]), np.array([0, 1])
        )
        before = m.skyline()[1].tolist()
        m.delete([1])
        assert m.skyline()[1].tolist() == before
        assert m.size == 1
        m.verify()

    def test_delete_skyline_point_promotes_shadowed(self, codec):
        m = SkylineMaintainer(codec)
        # 0 dominates 1 exclusively; deleting 0 must surface 1.
        m.insert_block(
            np.array([[1.0, 1.0, 1.0], [2.0, 2.0, 2.0], [9.0, 0.0, 9.0]]),
            np.array([0, 1, 2]),
        )
        assert m.is_skyline_member(0)
        assert not m.is_skyline_member(1)
        m.delete([0])
        assert m.is_skyline_member(1)
        assert m.is_skyline_member(2)
        m.verify()

    def test_delete_everything(self, codec):
        rng = np.random.default_rng(3)
        m, pts = fresh(codec, rng, n=30)
        m.delete(list(range(30)))
        assert m.size == 0
        assert m.skyline_size == 0
        m.verify()

    def test_delete_unknown_id_rejected(self, codec):
        m = SkylineMaintainer(codec)
        m.insert([1.0, 1.0, 1.0], 0)
        with pytest.raises(DatasetError):
            m.delete([5])

    def test_is_skyline_member_requires_alive(self, codec):
        m = SkylineMaintainer(codec)
        m.insert([1.0, 1.0, 1.0], 0)
        with pytest.raises(DatasetError):
            m.is_skyline_member(99)


class TestRandomizedStream:
    @pytest.mark.parametrize("seed", [5, 6, 7])
    def test_mixed_stream_matches_oracle(self, codec, seed):
        rng = np.random.default_rng(seed)
        m = SkylineMaintainer(codec)
        alive = []
        next_id = 0
        for step in range(15):
            if alive and rng.random() < 0.4:
                k = int(rng.integers(1, max(2, len(alive) // 2)))
                doomed = list(
                    rng.choice(alive, size=min(k, len(alive)), replace=False)
                )
                m.delete(doomed)
                alive = [a for a in alive if a not in set(doomed)]
            else:
                n = int(rng.integers(1, 25))
                pts = rng.integers(0, 32, (n, 3)).astype(float)
                ids = list(range(next_id, next_id + n))
                m.insert_block(pts, np.asarray(ids))
                alive.extend(ids)
                next_id += n
            m.verify()
        assert m.size == len(alive)


class TestSkylineIdCache:
    """The cached skyline id-set (membership must not rebuild a set
    per call, and must invalidate on every mutation)."""

    def test_id_set_is_cached_between_reads(self, codec):
        rng = np.random.default_rng(11)
        m, _ = fresh(codec, rng, n=40)
        first = m.skyline_id_set()
        assert m.skyline_id_set() is first  # same frozen object, no rebuild

    def test_insert_invalidates_cache(self, codec):
        rng = np.random.default_rng(12)
        m, _ = fresh(codec, rng, n=40)
        before = m.skyline_id_set()
        m.insert([0.0, 0.0, 0.0], 999)  # dominates everything
        after = m.skyline_id_set()
        assert after is not before
        assert after == frozenset({999})
        assert m.is_skyline_member(999)

    def test_delete_invalidates_cache_even_on_error(self, codec):
        m = SkylineMaintainer(codec)
        m.insert([1.0, 1.0, 1.0], 0)
        before = m.skyline_id_set()
        with pytest.raises(DatasetError):
            m.delete([5])
        # Failed validation must not poison the cache with stale state.
        assert m.skyline_id_set() == before
        m.delete([0])
        assert m.skyline_id_set() == frozenset()

    def test_membership_matches_skyline_arrays(self, codec):
        rng = np.random.default_rng(13)
        m, _ = fresh(codec, rng, n=50)
        m.delete(list(range(10)))
        _, sky_ids = m.skyline()
        expected = frozenset(int(i) for i in sky_ids)
        assert m.skyline_id_set() == expected
        for pid in range(10, 50):
            assert m.is_skyline_member(pid) == (pid in expected)


class TestMaintainerMetrics:
    def test_op_counters_flow_into_registry(self, codec):
        from repro.observability.metrics import MetricsRegistry

        metrics = MetricsRegistry()
        m = SkylineMaintainer(codec, metrics=metrics)
        rng = np.random.default_rng(14)
        pts = rng.integers(0, 32, (30, 3)).astype(float)
        m.insert_block(pts, np.arange(30))
        m.insert([0.0, 0.0, 1.0], 100)
        m.delete([100, 0, 1])
        assert metrics.counter("maintenance", "inserts") == 2
        assert metrics.counter("maintenance", "insert_records") == 31
        assert metrics.counter("maintenance", "deletes") == 1
        assert metrics.counter("maintenance", "delete_records") == 3
        # Dominance work was attributed to the ops that caused it.
        assert metrics.counter("maintenance", "point_tests") > 0
        timers = metrics.timers_as_dict()
        assert timers["maintenance.insert_seconds"]["calls"] == 2
        assert timers["maintenance.delete_seconds"]["calls"] == 1

    def test_metrics_are_optional(self, codec):
        m = SkylineMaintainer(codec)  # no registry: must not blow up
        m.insert([1.0, 2.0, 3.0], 0)
        m.delete([0])


class TestFromState:
    def test_adopts_state_without_recompute(self, codec):
        rng = np.random.default_rng(15)
        m, pts = fresh(codec, rng, n=45)
        points, ids = m.alive()
        _, sky_ids = m.skyline()
        clone = SkylineMaintainer.from_state(codec, points, ids, sky_ids)
        assert clone.size == m.size
        assert clone.skyline_id_set() == m.skyline_id_set()
        clone.verify()

    def test_rejects_unknown_skyline_ids(self, codec):
        rng = np.random.default_rng(16)
        m, _ = fresh(codec, rng, n=10)
        points, ids = m.alive()
        with pytest.raises(DatasetError):
            SkylineMaintainer.from_state(
                codec, points, ids, np.array([12345], dtype=np.int64)
            )

    def test_alive_roundtrip(self, codec):
        rng = np.random.default_rng(17)
        m, pts = fresh(codec, rng, n=20)
        m.delete([3, 4])
        points, ids = m.alive()
        assert points.shape[0] == ids.shape[0] == 18
        assert 3 not in set(ids.tolist())
