"""Tests for the vectorized Z-kernel layer and its batched consumers.

Pins the PR's two central equivalence claims:

* the uint64 **fast path** and the packed-byte **wide path** compute
  identical Z-addresses, region bounds, prefix lengths and sort orders —
  checked against each other (the wide path can be forced onto narrow
  shapes) and against scalar bit-twiddling references;
* the batched leaf screening in Z-search and the deferred-rebuild
  ``zmerge_all`` produce results identical to scalar references —
  including *exact* ``OpCounter`` totals for Z-search, which the
  simulated cost model and trace reconciliation rely on.

Plus the satellite fixes that ride along: the BNL empty-input shape,
vectorised ``decode_many``/``dominance_counts``, Z-address carry through
:class:`~repro.mapreduce.types.Block` and checkpoints, native-batch
partition routing, and the kernel-path metrics wiring.
"""

import functools
import pickle

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.bnl import bnl_skyline
from repro.core.exceptions import ZOrderError
from repro.core.point import dominance_counts
from repro.data.synthetic import independent
from repro.mapreduce.types import Block
from repro.observability import Tracer
from repro.partitioning.zcurve import ZCurveRule
from repro.pipeline.checkpoint import STAGE_PHASE1, CheckpointStore
from repro.pipeline.driver import run_plan
from repro.zorder.encoding import ZGridCodec
from repro.zorder.kernel import KernelStats, ZKernel
from repro.zorder.zbtree import OpCounter, build_zbtree
from repro.zorder.zmerge import zmerge, zmerge_all
from repro.zorder.zsearch import SkylineBuffer, _buffer_dominates_region, zsearch


# ----------------------------------------------------------------------
# references
# ----------------------------------------------------------------------
def _scalar_interleave(row, bits_per_dim):
    """The documented level-major, dimension-minor bit layout, one bit
    at a time — the oracle both kernel paths must reproduce."""
    z = 0
    for level in range(bits_per_dim - 1, -1, -1):
        for value in row:
            z = (z << 1) | ((int(value) >> level) & 1)
    return z


def _forced_wide(dimensions, bits_per_dim):
    """A kernel driven down the packed-byte wide path on a shape that
    would normally qualify for the uint64 fast path, so both code paths
    can be compared on identical inputs."""
    kernel = ZKernel(dimensions, bits_per_dim)
    assert kernel.fast_path, "force-wide only makes sense on narrow shapes"
    kernel.fast_path = False
    return kernel


def _scalar_zsearch(tree, counter):
    """The pre-batching Z-search leaf scan: one buffer probe per point,
    in Z-order.  Counter semantics are the accounting contract the
    batched implementation must reproduce exactly."""
    d = tree.codec.dimensions
    buffer = SkylineBuffer(d)
    if tree.root is None:
        return np.empty((0, d)), np.empty(0, dtype=np.int64)
    stack = [tree.root]
    while stack:
        node = stack.pop()
        counter.nodes_visited += 1
        counter.region_tests += 1
        if _buffer_dominates_region(buffer, node, counter):
            continue
        if node.is_leaf:
            for i in range(node.size):
                if buffer.dominates(node.points[i], counter):
                    continue
                buffer.append(
                    node.points[i], int(node.ids[i]), node.zaddresses[i]
                )
        else:
            stack.extend(reversed(node.children))
    return buffer.points.copy(), buffer.ids.copy()


# ----------------------------------------------------------------------
# strategies
# ----------------------------------------------------------------------
@st.composite
def shape_and_grid(draw, narrow, max_points=48):
    """A ``(d, bits_per_dim)`` shape plus a random grid batch.

    ``narrow=True`` keeps ``d * bits <= 64`` (fast-path eligible);
    ``narrow=False`` forces ``> 64`` (wide path, multi-byte rows).
    """
    if narrow:
        d = draw(st.integers(min_value=1, max_value=8))
        bits = draw(st.integers(min_value=1, max_value=min(32, 64 // d)))
    else:
        d = draw(st.integers(min_value=5, max_value=10))
        bits = draw(st.integers(min_value=64 // d + 1, max_value=16))
    n = draw(st.integers(min_value=1, max_value=max_points))
    cells = 1 << bits
    grid = draw(
        st.lists(
            st.lists(
                st.integers(min_value=0, max_value=cells - 1),
                min_size=d,
                max_size=d,
            ),
            min_size=n,
            max_size=n,
        )
    )
    return d, bits, np.asarray(grid, dtype=np.int64)


@st.composite
def shape_and_parts(draw, max_parts=4, max_points=24):
    """One narrow shape plus several independent grid batches on it."""
    d = draw(st.integers(min_value=1, max_value=6))
    bits = draw(st.integers(min_value=1, max_value=min(32, 64 // d)))
    cells = 1 << bits
    count = draw(st.integers(min_value=2, max_value=max_parts))
    parts = []
    for _ in range(count):
        n = draw(st.integers(min_value=1, max_value=max_points))
        grid = draw(
            st.lists(
                st.lists(
                    st.integers(min_value=0, max_value=cells - 1),
                    min_size=d,
                    max_size=d,
                ),
                min_size=n,
                max_size=n,
            )
        )
        parts.append(np.asarray(grid, dtype=np.int64))
    return d, bits, parts


class TestKernelPathsAgree:
    @given(shape_and_grid(narrow=True))
    @settings(max_examples=120, deadline=None)
    def test_fast_path_matches_scalar_reference(self, sg):
        d, bits, grid = sg
        kernel = ZKernel(d, bits)
        assert kernel.fast_path
        zbatch = kernel.interleave(grid)
        expected = [_scalar_interleave(row, bits) for row in grid]
        assert kernel.to_int_list(zbatch) == expected
        assert np.array_equal(
            kernel.deinterleave(zbatch).astype(np.int64), grid
        )

    @given(shape_and_grid(narrow=False, max_points=24))
    @settings(max_examples=60, deadline=None)
    def test_wide_path_matches_scalar_reference(self, sg):
        d, bits, grid = sg
        kernel = ZKernel(d, bits)
        assert not kernel.fast_path
        zbatch = kernel.interleave(grid)
        expected = [_scalar_interleave(row, bits) for row in grid]
        assert kernel.to_int_list(zbatch) == expected
        assert np.array_equal(
            kernel.deinterleave(zbatch).astype(np.int64), grid
        )

    @given(shape_and_grid(narrow=True))
    @settings(max_examples=120, deadline=None)
    def test_forced_wide_agrees_with_fast(self, sg):
        d, bits, grid = sg
        fast = ZKernel(d, bits)
        wide = _forced_wide(d, bits)
        zf = fast.interleave(grid)
        zw = wide.interleave(grid)
        ints = fast.to_int_list(zf)
        assert wide.to_int_list(zw) == ints
        # Stable sort permutations must match element-for-element, so
        # duplicate Z-addresses keep input order on both paths.
        assert np.array_equal(fast.argsort(zf), wide.argsort(zw))
        # Pairwise region bounds and prefix lengths.
        if grid.shape[0] >= 2:
            af, bf = zf[:-1], zf[1:]
            aw, bw = zw[:-1], zw[1:]
            min_f, max_f = fast.region_bounds(af, bf)
            min_w, max_w = wide.region_bounds(aw, bw)
            assert fast.to_int_list(min_f) == wide.to_int_list(min_w)
            assert fast.to_int_list(max_f) == wide.to_int_list(max_w)
            assert np.array_equal(
                fast.common_prefix_lengths(af, bf),
                wide.common_prefix_lengths(aw, bw),
            )
        # Int round-trip through the boundary converters.
        assert wide.to_int_list(wide.from_ints(ints)) == ints

    @given(shape_and_grid(narrow=False, max_points=24))
    @settings(max_examples=60, deadline=None)
    def test_batched_region_ops_match_scalar_codec(self, sg):
        d, bits, grid = sg
        codec = ZGridCodec.grid_identity(d, bits_per_dim=bits)
        kernel = codec.kernel
        zbatch = codec.encode_grid_batch(grid)
        ints = kernel.to_int_list(zbatch)
        if len(ints) < 2:
            return
        alpha, beta = zbatch[:-1], zbatch[1:]
        min_b, max_b = kernel.region_bounds(alpha, beta)
        prefixes = kernel.common_prefix_lengths(alpha, beta)
        for i, (a, b) in enumerate(zip(ints[:-1], ints[1:])):
            lo, hi = codec.region_bounds(min(a, b), max(a, b))
            assert kernel.to_int_list(min_b[i:i + 1]) == [lo]
            assert kernel.to_int_list(max_b[i:i + 1]) == [hi]
            assert prefixes[i] == codec.common_prefix_length(a, b)

    def test_from_ints_rejects_out_of_range(self):
        fast = ZKernel(2, 4)
        with pytest.raises(ZOrderError):
            fast.from_ints([1 << 70])
        wide = ZKernel(6, 12)
        with pytest.raises(ZOrderError):
            wide.from_ints([1 << wide.total_bits])


class TestBatchedTreeOpsEquivalence:
    @given(shape_and_grid(narrow=True, max_points=64))
    @settings(max_examples=60, deadline=None)
    def test_zsearch_matches_scalar_reference_with_exact_counters(self, sg):
        d, bits, grid = sg
        codec = ZGridCodec.grid_identity(d, bits_per_dim=bits)
        tree = build_zbtree(
            codec, grid.astype(float), leaf_capacity=4, fanout=3
        )
        batched_counter = OpCounter()
        pts_b, ids_b = zsearch(tree, counter=batched_counter)
        scalar_counter = OpCounter()
        pts_s, ids_s = _scalar_zsearch(tree, scalar_counter)
        assert np.array_equal(pts_b, pts_s)
        assert np.array_equal(ids_b, ids_s)
        assert batched_counter.point_tests == scalar_counter.point_tests
        assert batched_counter.region_tests == scalar_counter.region_tests
        assert batched_counter.nodes_visited == scalar_counter.nodes_visited

    @given(shape_and_parts())
    @settings(max_examples=40, deadline=None)
    def test_zmerge_all_deferred_rebuild_matches_sequential_folds(self, sp):
        d, bits, parts = sp
        codec = ZGridCodec.grid_identity(d, bits_per_dim=bits)

        def candidates():
            """Dominance-free candidate trees (the zmerge contract),
            with globally unique ids."""
            trees = []
            offset = 0
            for grid in parts:
                pts = grid.astype(float)
                ids = np.arange(offset, offset + pts.shape[0], dtype=np.int64)
                offset += pts.shape[0]
                sky_pts, sky_ids = zsearch(
                    build_zbtree(codec, pts, ids=ids)
                )
                trees.append(
                    build_zbtree(
                        codec, sky_pts, ids=sky_ids,
                        leaf_capacity=4, fanout=3,
                    )
                )
            return trees

        deferred = zmerge_all(candidates())
        deferred.validate()
        sequential = functools.reduce(zmerge, candidates())
        _, def_pts, def_ids = deferred.collect()
        _, seq_pts, seq_ids = sequential.collect()
        order_d, order_s = np.argsort(def_ids), np.argsort(seq_ids)
        assert np.array_equal(def_ids[order_d], seq_ids[order_s])
        assert np.array_equal(def_pts[order_d], seq_pts[order_s])
        # Oracle: the skyline of the union of all parts.
        union = np.vstack([grid.astype(float) for grid in parts])
        oracle_pts, _ = bnl_skyline(union)
        oracle = {tuple(row) for row in oracle_pts}
        assert {tuple(row) for row in def_pts} == oracle


# ----------------------------------------------------------------------
# satellites
# ----------------------------------------------------------------------
class TestBnlEmptyInputShape:
    def test_empty_2d_keeps_dimensionality(self):
        pts, ids = bnl_skyline(np.empty((0, 5)))
        assert pts.shape == (0, 5)
        assert ids.shape == (0,)

    def test_empty_1d_normalises_to_zero_dims(self):
        pts, ids = bnl_skyline(np.empty(0))
        assert pts.shape == (0, 0)
        assert ids.shape == (0,)


class TestVectorisedPointOps:
    def test_dominance_counts_chunked_matches_bruteforce(self):
        rng = np.random.default_rng(7)
        pts = rng.integers(0, 6, size=(97, 4)).astype(float)
        expected = np.array(
            [
                sum(
                    bool(np.all(q <= p) and np.any(q < p))
                    for q in pts
                )
                for p in pts
            ],
            dtype=np.int64,
        )
        assert np.array_equal(dominance_counts(pts, chunk=16), expected)
        assert np.array_equal(dominance_counts(pts, chunk=10_000), expected)

    def test_decode_many_accepts_ints_and_native_batches(self):
        codec = ZGridCodec.grid_identity(3, bits_per_dim=5)
        rng = np.random.default_rng(3)
        grid = rng.integers(0, 32, size=(40, 3))
        zbatch = codec.encode_grid_batch(grid)
        ints = codec.kernel.to_int_list(zbatch)
        assert np.array_equal(codec.decode_many(ints), grid.astype(np.uint32))
        assert np.array_equal(codec.decode_many(zbatch), grid.astype(np.uint32))


class TestKernelStats:
    def test_record_snapshot_reset(self):
        stats = KernelStats()
        stats.record("encode_fast", 10)
        stats.record("encode_fast", 5)
        stats.record("decode_wide", 3)
        snap = stats.snapshot()
        assert snap["encode_fast_calls"] == 2
        assert snap["encode_fast_rows"] == 15
        assert snap["decode_wide_calls"] == 1
        stats.reset()
        assert stats.snapshot() == {}

    def test_codec_pickles_identically_regardless_of_stats(self):
        # The distributed cache's idempotent-republish check compares
        # pickle bytes; process-local telemetry must not break it.
        a = ZGridCodec.grid_identity(4, bits_per_dim=8)
        b = ZGridCodec.grid_identity(4, bits_per_dim=8)
        a.encode_grid_batch(np.ones((5, 4), dtype=np.int64))
        assert a.kernel_stats.snapshot() != b.kernel_stats.snapshot()
        assert pickle.dumps(a) == pickle.dumps(b)
        restored = pickle.loads(pickle.dumps(a))
        assert restored.kernel_stats.snapshot() == {}


class TestBlockZCarry:
    def _block(self, codec, n=12, seed=5):
        rng = np.random.default_rng(seed)
        grid = rng.integers(0, 1 << codec.bits_per_dim, size=(n, codec.dimensions))
        z = codec.encode_grid_batch(grid)
        return Block(np.arange(n), grid.astype(float), zaddresses=z), z

    @pytest.mark.parametrize("shape", [(2, 8), (6, 12)])
    def test_select_and_concat_propagate(self, shape):
        codec = ZGridCodec.grid_identity(shape[0], bits_per_dim=shape[1])
        block, z = self._block(codec)
        mask = np.arange(block.size) % 2 == 0
        sub = block.select(mask)
        assert np.array_equal(sub.zaddresses, z[mask])
        both = Block.concat([sub, block.select(~mask)])
        assert both.zaddresses is not None
        assert both.zaddresses.shape[0] == block.size

    def test_concat_drops_z_when_any_input_lacks_it(self):
        codec = ZGridCodec.grid_identity(2, bits_per_dim=8)
        block, _ = self._block(codec)
        bare = Block(block.ids + 100, block.points)
        assert Block.concat([block, bare]).zaddresses is None

    def test_checksum_excludes_derived_zaddresses(self):
        codec = ZGridCodec.grid_identity(2, bits_per_dim=8)
        block, _ = self._block(codec)
        bare = Block(block.ids, block.points)
        assert block.checksum() == bare.checksum()


class TestCheckpointZPersistence:
    def test_zaddresses_roundtrip_and_stay_optional(self, tmp_path):
        codec = ZGridCodec.grid_identity(3, bits_per_dim=6)
        rng = np.random.default_rng(11)
        grid = rng.integers(0, 64, size=(20, 3))
        z = codec.encode_grid_batch(grid)
        carrying = Block(np.arange(20), grid.astype(float), zaddresses=z)
        bare = Block(np.arange(20, 40), grid.astype(float))
        store = CheckpointStore(str(tmp_path))
        store.begin({"run": "z"}, resume=False)
        store.save_stage(STAGE_PHASE1, blocks=[(0, carrying), (1, bare)])
        loaded = dict(CheckpointStore(str(tmp_path)).load_blocks(STAGE_PHASE1))
        assert np.array_equal(loaded[0].zaddresses, z)
        assert loaded[1].zaddresses is None


class TestZCurveNativeRouting:
    @pytest.mark.parametrize("shape", [(2, 8), (6, 12)])
    def test_partition_of_native_matches_int_path(self, shape):
        codec = ZGridCodec.grid_identity(shape[0], bits_per_dim=shape[1])
        rng = np.random.default_rng(13)
        grid = rng.integers(
            0, 1 << shape[1], size=(200, shape[0])
        )
        zbatch = codec.encode_grid_batch(grid)
        ints = codec.kernel.to_int_list(zbatch)
        pivots = sorted(set(ints[10:200:40]))
        rule = ZCurveRule(codec, pivots)
        assert np.array_equal(
            rule.partition_of(zbatch), rule.partition_of(ints)
        )
        # A pivot's own address belongs to the partition *after* the
        # boundary (``side="right"`` semantics), on both native paths.
        pivot_batch = codec.as_zbatch(list(pivots))
        assert np.array_equal(
            rule.partition_of(pivot_batch),
            np.arange(1, len(pivots) + 1, dtype=np.int64),
        )


class TestKernelMetricsWiring:
    def test_run_report_carries_zkernel_counters(self):
        ds = independent(400, 4, seed=2)
        rep = run_plan("ZHG+ZS+ZM", ds, seed=2, tracer=Tracer())
        assert rep.observed_metrics is not None
        groups = rep.observed_metrics.counters_as_dict()
        assert "zkernel" in groups
        # d=4 at the default 12 bits/dim is 48 bits: fast-path eligible.
        assert groups["zkernel"].get("encode_fast_calls", 0) > 0
        assert groups["zkernel"].get("encode_fast_rows", 0) > 0
