"""WAL framing, durable checkpoints, and crash/replay bit-identity."""

import numpy as np
import pytest

from repro.core.exceptions import ConfigurationError, WriterDownError
from repro.serving.faults import WRITER_PHASES, ServingFaultPlan
from repro.serving.registry import DatasetRegistry, DriftPolicy
from repro.serving.wal import DatasetStore, MutationWAL, WalRecord
from repro.zorder.encoding import ZGridCodec


def _points(rng, n, d=4, cells=64):
    return rng.integers(0, cells, size=(n, d)).astype(np.float64)


# ----------------------------------------------------------------------
# WAL framing
# ----------------------------------------------------------------------
class TestMutationWAL:
    def test_append_replay_roundtrip(self, tmp_path):
        wal = MutationWAL(str(tmp_path / "wal.log"))
        r1 = WalRecord.insert(
            2, np.array([[1.0, 2.0], [3.0, 4.0]]), np.array([10, 11])
        )
        r2 = WalRecord.delete(3, [10])
        wal.append(r1)
        wal.append(r2)
        wal.close()
        replay = wal.replay()
        assert replay.dropped_tail == 0
        assert replay.records == (r1, r2)
        assert replay.records[0].points == ((1.0, 2.0), (3.0, 4.0))

    def test_missing_file_replays_empty(self, tmp_path):
        replay = MutationWAL(str(tmp_path / "nope.log")).replay()
        assert replay.records == () and replay.dropped_tail == 0

    def test_torn_tail_is_dropped(self, tmp_path):
        wal = MutationWAL(str(tmp_path / "wal.log"))
        wal.append(WalRecord.delete(2, [1]))
        wal.close()
        # simulate a crash mid-append: a half-written final frame
        with open(wal.path, "ab") as handle:
            handle.write(b'deadbeef {"seq": 3, "op"')
        replay = wal.replay()
        assert replay.dropped_tail == 1
        assert [r.seq for r in replay.records] == [2]

    def test_mid_log_corruption_refuses_recovery(self, tmp_path):
        wal = MutationWAL(str(tmp_path / "wal.log"))
        wal.append(WalRecord.delete(2, [1]))
        wal.append(WalRecord.delete(3, [2]))
        wal.close()
        raw = open(wal.path, "rb").read()
        lines = raw.split(b"\n")
        lines[0] = lines[0][:-3] + b"zzz"  # flip bytes in frame 0
        open(wal.path, "wb").write(b"\n".join(lines))
        with pytest.raises(ConfigurationError, match="corrupt"):
            wal.replay()

    def test_sequence_jump_refuses_recovery(self, tmp_path):
        wal = MutationWAL(str(tmp_path / "wal.log"))
        wal.append(WalRecord.delete(2, [1]))
        wal.append(WalRecord.delete(4, [2]))  # gap: 3 missing
        wal.close()
        with pytest.raises(ConfigurationError, match="sequence jump"):
            wal.replay()

    def test_rotate_truncates_atomically(self, tmp_path):
        wal = MutationWAL(str(tmp_path / "wal.log"))
        wal.append(WalRecord.delete(2, [1]))
        wal.rotate()
        assert wal.replay().records == ()
        # still appendable after rotation
        wal.append(WalRecord.delete(3, [2]))
        wal.close()
        assert [r.seq for r in wal.replay().records] == [3]


# ----------------------------------------------------------------------
# durable checkpoints
# ----------------------------------------------------------------------
class TestDatasetStore:
    def _store_state(self, tmp_path):
        rng = np.random.default_rng(0)
        store = DatasetStore(str(tmp_path), "ds")
        codec = ZGridCodec.grid_identity(3, bits_per_dim=6)
        points = _points(rng, 50, d=3)
        ids = np.arange(50, dtype=np.int64)
        sky_ids = ids[:7]
        store.save_checkpoint(
            codec, seq=9, version=9, points=points, ids=ids,
            sky_ids=sky_ids, deletes_since_rebuild=4,
        )
        return store, points, ids, sky_ids

    def test_checkpoint_roundtrip(self, tmp_path):
        store, points, ids, sky_ids = self._store_state(tmp_path)
        state = store.load_checkpoint()
        assert state is not None
        assert state.seq == 9 and state.version == 9
        assert state.deletes_since_rebuild == 4
        np.testing.assert_array_equal(state.points, points)
        np.testing.assert_array_equal(state.ids, ids)
        np.testing.assert_array_equal(state.sky_ids, sky_ids)
        assert state.codec.dimensions == 3

    def test_no_checkpoint_returns_none(self, tmp_path):
        assert DatasetStore(str(tmp_path), "ds").load_checkpoint() is None

    def test_corrupt_state_fails_crc(self, tmp_path):
        store, points, ids, sky_ids = self._store_state(tmp_path)
        # overwrite the state file with different arrays, keep the meta
        np.savez(
            store.state_path, points=points + 1.0, ids=ids, sky_ids=sky_ids
        )
        with pytest.raises(ConfigurationError, match="CRC"):
            store.load_checkpoint()

    def test_checkpoint_rotates_wal(self, tmp_path):
        store, *_ = self._store_state(tmp_path)
        assert store.wal.replay().records == ()


# ----------------------------------------------------------------------
# registry durability + crash/replay bit-identity
# ----------------------------------------------------------------------
def _mutation_sequence(seed=5, batches=10, d=4):
    """A deterministic alternating insert/delete batch sequence."""
    rng = np.random.default_rng(seed)
    base = _points(rng, 120, d=d)
    ops = []
    next_id = 1000
    alive = set(range(120))
    for i in range(batches):
        if i % 3 == 2 and len(alive) > 8:
            doomed = sorted(alive)[:3]
            ops.append(("delete", None, np.array(doomed, dtype=np.int64)))
            alive -= set(doomed)
        else:
            pts = _points(rng, 4, d=d)
            ids = np.arange(next_id, next_id + 4, dtype=np.int64)
            next_id += 4
            ops.append(("insert", pts, ids))
            alive |= set(int(x) for x in ids)
    return base, ops


def _apply_all(registry, name, ops):
    """Apply the batch sequence, self-healing injected writer crashes
    the way the service's mutate worker does."""
    for op, pts, ids in ops:
        try:
            if op == "insert":
                registry.insert(name, pts, ids)
            else:
                registry.delete(name, ids)
        except WriterDownError as exc:
            registry.recover(name)
            if not exc.applied:
                if op == "insert":
                    registry.insert(name, pts, ids)
                else:
                    registry.delete(name, ids)


class TestRegistryDurability:
    def test_recover_is_idempotent_and_bit_identical(self, tmp_path):
        base, ops = _mutation_sequence()
        registry = DatasetRegistry(
            durability_dir=str(tmp_path), checkpoint_every=4
        )
        registry.register("ds", base, drift=DriftPolicy.never())
        _apply_all(registry, "ds", ops)
        before = registry.snapshot("ds")
        result = registry.recover("ds")
        after = registry.snapshot("ds")
        assert result.recovered
        assert after.version == before.version
        assert after.state_digest() == before.state_digest()

    @pytest.mark.parametrize("phase", WRITER_PHASES)
    def test_crash_phase_replays_bit_identical(self, tmp_path, phase):
        base, ops = _mutation_sequence()
        # ground truth: the uninterrupted run
        clean = DatasetRegistry(
            durability_dir=str(tmp_path / "clean"), checkpoint_every=4
        )
        clean.register("ds", base, drift=DriftPolicy.never())
        _apply_all(clean, "ds", ops)
        expected = clean.snapshot("ds")

        # chaos run: the writer crashes publishing batch seq=5
        plan = ServingFaultPlan(
            scripted_writer_crashes={("ds", 5): phase}
        )
        registry = DatasetRegistry(
            durability_dir=str(tmp_path / "chaos"),
            checkpoint_every=4,
            fault_plan=plan,
        )
        registry.register("ds", base, drift=DriftPolicy.never())
        _apply_all(registry, "ds", ops)
        recovered = registry.snapshot("ds")
        assert recovered.version == expected.version
        assert recovered.state_digest() == expected.state_digest()

    def test_crash_semantics_per_phase(self, tmp_path):
        rng = np.random.default_rng(1)
        base = _points(rng, 60)
        plan = ServingFaultPlan(
            scripted_writer_crashes={("ds", 2): "during"}
        )
        registry = DatasetRegistry(
            durability_dir=str(tmp_path), fault_plan=plan
        )
        registry.register("ds", base, drift=DriftPolicy.never())
        pts = _points(rng, 3)
        with pytest.raises(WriterDownError) as excinfo:
            registry.insert("ds", pts, [900, 901, 902])
        # "during": the batch reached the WAL before the crash
        assert excinfo.value.applied is True
        assert registry.writer_status("ds")["writer_down"]
        assert registry.writer_status("ds")["pending_batches"] == 1
        # reads keep serving the stale snapshot
        assert registry.snapshot("ds").version == 1
        # further mutations fail fast while down
        with pytest.raises(WriterDownError) as down:
            registry.delete("ds", [0])
        assert down.value.applied is False
        # recovery applies the durable batch and republishes v2
        result = registry.recover("ds")
        assert result.version == 2
        snapshot = registry.snapshot("ds")
        assert snapshot.row_of(900) is not None
        assert not registry.writer_status("ds")["writer_down"]
        assert snapshot.meta["recovered"] is True

    def test_before_crash_loses_batch(self, tmp_path):
        rng = np.random.default_rng(2)
        base = _points(rng, 60)
        plan = ServingFaultPlan(
            scripted_writer_crashes={("ds", 2): "before"}
        )
        registry = DatasetRegistry(
            durability_dir=str(tmp_path), fault_plan=plan
        )
        registry.register("ds", base, drift=DriftPolicy.never())
        with pytest.raises(WriterDownError) as excinfo:
            registry.insert("ds", _points(rng, 2), [700, 701])
        assert excinfo.value.applied is False
        registry.recover("ds")
        # the batch never reached the WAL: recovery cannot resurrect it
        assert registry.snapshot("ds").version == 1
        assert registry.snapshot("ds").row_of(700) is None

    def test_torn_tail_recovery_marks_partial(self, tmp_path):
        rng = np.random.default_rng(3)
        base = _points(rng, 60)
        registry = DatasetRegistry(
            durability_dir=str(tmp_path), checkpoint_every=100
        )
        registry.register("ds", base, drift=DriftPolicy.never())
        registry.insert("ds", _points(rng, 2), [800, 801])
        # tear the WAL tail by hand (crash mid-append of seq 3)
        wal_path = tmp_path / "ds" / "wal.log"
        with open(wal_path, "ab") as handle:
            handle.write(b'00000000 {"torn')
        result = registry.recover("ds")
        assert result.version == 2
        assert registry.snapshot("ds").meta["dropped_tail"] == 1

    def test_recover_without_durability_raises(self):
        rng = np.random.default_rng(4)
        registry = DatasetRegistry()
        registry.register("ds", _points(rng, 30))
        with pytest.raises(ConfigurationError, match="durab"):
            registry.recover("ds")

    def test_checkpoint_cadence(self, tmp_path):
        rng = np.random.default_rng(5)
        registry = DatasetRegistry(
            durability_dir=str(tmp_path), checkpoint_every=3
        )
        registry.register("ds", _points(rng, 60), drift=DriftPolicy.never())
        next_id = 2000
        for _ in range(3):
            registry.insert("ds", _points(rng, 2), [next_id, next_id + 1])
            next_id += 2
        store = DatasetStore(str(tmp_path), "ds")
        state = store.load_checkpoint()
        # register checkpointed v1; three publishes later the cadence
        # (every 3) checkpointed v4 and rotated the WAL
        assert state is not None and state.version == 4
        assert store.wal.replay().records == ()

    def test_inapplicable_batch_leaves_no_orphan_wal_frame(self, tmp_path):
        # A batch that cannot apply (duplicate id) must be rejected
        # BEFORE the WAL append: an orphan frame would never publish
        # its seq, the next batch would reuse it, and recovery would
        # refuse the duplicate-seq log.
        from repro.core.exceptions import DatasetError

        rng = np.random.default_rng(6)
        registry = DatasetRegistry(
            durability_dir=str(tmp_path), checkpoint_every=100
        )
        registry.register("ds", _points(rng, 40), drift=DriftPolicy.never())
        registry.insert("ds", _points(rng, 2), [500, 501])
        with pytest.raises(DatasetError, match="already alive"):
            registry.insert("ds", _points(rng, 1), [500])
        with pytest.raises(DatasetError, match="not alive"):
            registry.delete("ds", [99_999])
        # the rejected batches left no frame behind: seq stays dense
        store = DatasetStore(str(tmp_path), "ds")
        assert [r.seq for r in store.wal.replay().records] == [2]
        registry.delete("ds", [500])
        result = registry.recover("ds")
        assert result.version == 3

    def test_writer_crash_draw_varies_by_incarnation(self):
        plan = ServingFaultPlan(seed=9, writer_crash_rate=0.4)
        phases = {
            inc: plan.writer_crash_phase("ds", 7, inc) for inc in range(12)
        }
        # same (dataset, seq) must not crash in every incarnation —
        # otherwise a crashed batch could never succeed on retry
        assert any(p is None for p in phases.values())
        # and the draw is deterministic
        assert phases[0] == plan.writer_crash_phase("ds", 7, 0)


# ----------------------------------------------------------------------
# recovery across the checkpoint/rotation boundary
# ----------------------------------------------------------------------
class TestRotationBoundary:
    def test_adopt_across_rotated_boundary_is_bit_identical(self, tmp_path):
        """A checkpoint cadence that rotates the WAL mid-sequence must
        not change what a cold adoption reconstructs: checkpoint +
        post-rotation WAL frames replay to the uninterrupted state."""
        base, ops = _mutation_sequence(seed=8, batches=11)
        # ground truth: same batches, no durability machinery at all
        clean = DatasetRegistry(keep_versions=64)
        clean.register("ds", base, drift=DriftPolicy.never())
        _apply_all(clean, "ds", ops)
        expected = clean.snapshot("ds")

        durable = DatasetRegistry(
            durability_dir=str(tmp_path), checkpoint_every=3
        )
        durable.register("ds", base, drift=DriftPolicy.never())
        _apply_all(durable, "ds", ops)
        # the cadence (every 3) rotated at least once, and the live WAL
        # holds only frames past the last checkpoint
        store = DatasetStore(str(tmp_path), "ds")
        state = store.load_checkpoint()
        assert state is not None and state.seq > 1
        tail = [r.seq for r in store.wal.replay().records]
        assert all(seq > state.seq for seq in tail)

        # cold-start adoption (the failover path) spans the boundary
        fresh = DatasetRegistry(durability_dir=str(tmp_path))
        result = fresh.adopt("ds", drift=DriftPolicy.never())
        recovered = fresh.snapshot("ds")
        assert result.recovered
        assert recovered.version == expected.version
        assert recovered.state_digest() == expected.state_digest()

    def test_recover_refuses_seq_jump_past_checkpoint(self, tmp_path):
        """A WAL that resumes *beyond* checkpoint.seq + 1 means an
        acknowledged batch vanished across the rotation point; recovery
        must refuse rather than silently replay past the hole."""
        rng = np.random.default_rng(9)
        registry = DatasetRegistry(
            durability_dir=str(tmp_path), checkpoint_every=1
        )
        registry.register("ds", _points(rng, 40), drift=DriftPolicy.never())
        registry.insert("ds", _points(rng, 2), [600, 601])
        # checkpoint_every=1: every publish checkpoints + rotates, so
        # the live WAL is empty and the checkpoint ends at seq 2
        store = DatasetStore(str(tmp_path), "ds")
        state = store.load_checkpoint()
        assert state is not None and state.seq == 2
        assert store.wal.replay().records == ()
        # forge a frame that skips seq 3 — as if rotation ate its head
        store.wal.append(WalRecord.delete(state.seq + 2, [600]))
        store.wal.close()

        fresh = DatasetRegistry(durability_dir=str(tmp_path))
        with pytest.raises(ConfigurationError, match="sequence gap"):
            fresh.adopt("ds")

    def test_recover_skips_frames_the_checkpoint_covers(self, tmp_path):
        """Crash *between* checkpoint and rotation: the WAL still holds
        frames at or below checkpoint.seq.  Recovery must skip them
        (replaying would double-apply) and land bit-identical."""
        rng = np.random.default_rng(10)
        registry = DatasetRegistry(
            durability_dir=str(tmp_path), checkpoint_every=100
        )
        registry.register("ds", _points(rng, 40), drift=DriftPolicy.never())
        registry.insert("ds", _points(rng, 2), [700, 701])
        registry.delete("ds", [0])
        expected = registry.snapshot("ds")

        store = DatasetStore(str(tmp_path), "ds")
        wal_records = store.wal.replay().records
        assert [r.seq for r in wal_records] == [2, 3]
        # hand-roll the "checkpointed but crashed before rotate" state
        snap = registry.snapshot("ds")
        store.save_checkpoint(
            snap.codec, seq=3, version=3, points=snap.points,
            ids=snap.ids, sky_ids=snap.sky_ids,
            deletes_since_rebuild=0,
        )
        # save_checkpoint rotates; write the pre-rotation frames back
        for record in wal_records:
            store.wal.append(record)
        store.wal.close()

        fresh = DatasetRegistry(durability_dir=str(tmp_path))
        fresh.adopt("ds", drift=DriftPolicy.never())
        recovered = fresh.snapshot("ds")
        assert recovered.version == expected.version
        assert recovered.state_digest() == expected.state_digest()
