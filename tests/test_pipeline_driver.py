"""End-to-end integration tests: every plan x distribution is exact."""

import numpy as np
import pytest

from repro import EngineConfig, SkylineEngine, run_plan
from repro.core.dataset import Dataset
from repro.core.exceptions import ConfigurationError
from repro.core.skyline import is_skyline_of
from repro.data.synthetic import anticorrelated, correlated, independent
from repro.pipeline.plans import parse_plan
from repro.zorder.encoding import quantize_dataset

PLANS = [
    "Grid+SB",
    "Grid+ZS",
    "Grid+BBS",
    "Angle+SB",
    "Angle+ZS",
    "Random+BNL",
    "Naive-Z+ZS",
    "ZHG+ZS",
    "ZHG+SB",
    "ZDG+ZS",
    "ZDG+ZS+ZM",
    "ZDG+SB+ZM",
    "ZDG+ZS+ZMP",
    "ZDG+BBS+ZM",
]

DISTRIBUTIONS = [independent, correlated, anticorrelated]


@pytest.mark.parametrize("plan", PLANS)
@pytest.mark.parametrize("dist_fn", DISTRIBUTIONS)
def test_every_plan_exact(plan, dist_fn):
    ds = dist_fn(1500, 4, seed=11)
    snapped, _ = quantize_dataset(ds, bits_per_dim=10)
    report = run_plan(
        plan, ds, num_groups=8, num_workers=4, bits_per_dim=10, seed=0
    )
    assert is_skyline_of(report.skyline.points, snapped.points)


class TestEngineBehaviour:
    def test_high_dimensional_run(self):
        ds = independent(800, 12, seed=3)
        snapped, _ = quantize_dataset(ds, bits_per_dim=8)
        report = run_plan(
            "ZDG+ZS+ZM", ds, num_groups=8, num_workers=4, bits_per_dim=8
        )
        assert is_skyline_of(report.skyline.points, snapped.points)

    def test_two_dimensional_run(self):
        ds = independent(2000, 2, seed=4)
        snapped, _ = quantize_dataset(ds, bits_per_dim=10)
        report = run_plan(
            "ZDG+ZS+ZM", ds, num_groups=8, num_workers=4, bits_per_dim=10
        )
        assert is_skyline_of(report.skyline.points, snapped.points)

    def test_skyline_ids_trace_back_to_input(self):
        ds = independent(1200, 4, seed=5)
        snapped, _ = quantize_dataset(ds, bits_per_dim=10)
        report = run_plan(
            "ZDG+ZS+ZM", ds, num_groups=8, num_workers=4, bits_per_dim=10
        )
        lookup = {int(i): row for i, row in zip(snapped.ids, snapped.points)}
        for pid, point in zip(report.skyline.ids, report.skyline.points):
            assert np.array_equal(lookup[int(pid)], point)

    def test_report_summary_fields(self):
        ds = independent(1000, 3, seed=6)
        report = run_plan("ZHG+ZS", ds, num_groups=4, num_workers=2)
        summary = report.summary()
        for field in (
            "plan", "skyline", "candidates", "shuffle_records",
            "preprocess_s", "phase1_s", "merge_s", "total_s",
            "makespan_cost", "reducer_skew",
        ):
            assert field in summary
        assert summary["skyline"] == report.skyline_size
        assert report.total_cost >= report.makespan_cost

    def test_straggler_injection_slows_makespan(self):
        ds = independent(3000, 4, seed=7)
        base = run_plan(
            "Naive-Z+ZS", ds, num_groups=8, num_workers=4, seed=0
        )
        slowed = run_plan(
            "Naive-Z+ZS", ds, num_groups=8, num_workers=4, seed=0,
            slowdown_factors=[50.0, 1.0, 1.0, 1.0],
        )
        assert (
            slowed.phase1.map_metrics.makespan_seconds
            > base.phase1.map_metrics.makespan_seconds
        )

    def test_deterministic_skyline_across_runs(self):
        ds = anticorrelated(1500, 4, seed=8)
        a = run_plan("ZDG+ZS+ZM", ds, num_groups=8, num_workers=4, seed=1)
        b = run_plan("ZDG+ZS+ZM", ds, num_groups=8, num_workers=4, seed=1)
        assert sorted(a.skyline.ids.tolist()) == sorted(b.skyline.ids.tolist())

    def test_config_validation(self):
        plan = parse_plan("Grid+SB")
        with pytest.raises(ConfigurationError):
            EngineConfig(plan=plan, num_groups=0)
        with pytest.raises(ConfigurationError):
            EngineConfig(plan=plan, num_workers=0)
        with pytest.raises(ConfigurationError):
            EngineConfig(plan=plan, sample_ratio=0.0)

    def test_num_input_splits_override(self):
        ds = independent(1000, 3, seed=9)
        cfg = EngineConfig.from_plan_string(
            "ZHG+ZS", num_groups=4, num_workers=2, num_input_splits=16
        )
        report = SkylineEngine(cfg).run(ds)
        assert report.phase1.map_metrics.ledgers[0].tasks == 8

    def test_zdg_dropped_partitions_end_to_end(self):
        # Two well-separated diagonal clusters: the upper cluster's
        # partitions are fully dominated by the lower cluster's regions
        # and must be dropped by the mapper — without losing exactness.
        rng = np.random.default_rng(31)
        low = rng.random((1500, 4)) * 0.25
        high = rng.random((1500, 4)) * 0.25 + 0.7
        ds = Dataset(np.vstack([low, high]), name="two-clusters")
        snapped, _ = quantize_dataset(ds, bits_per_dim=10)
        report = run_plan(
            "ZDG+ZS+ZM", ds, num_groups=8, num_workers=4,
            bits_per_dim=10, seed=0,
        )
        assert is_skyline_of(report.skyline.points, snapped.points)
        # Points were eliminated before the shuffle, via prefilter
        # and/or dominated-partition drops.
        counters = report.phase1.counters
        eliminated = counters.get("phase1", "prefiltered_records") + (
            counters.get("phase1", "dropped_records")
        )
        assert eliminated > 1000

    def test_failed_worker_engine_run(self):
        ds = independent(2000, 4, seed=32)
        snapped, _ = quantize_dataset(ds, bits_per_dim=10)
        report = run_plan(
            "ZDG+ZS+ZM", ds, num_groups=8, num_workers=4,
            bits_per_dim=10, seed=0, failed_workers=[0],
        )
        assert is_skyline_of(report.skyline.points, snapped.points)
        # The failed worker did nothing in any phase.
        for metrics in (
            report.phase1.map_metrics, report.phase1.reduce_metrics,
            report.phase2.reduce_metrics,
        ):
            assert metrics.ledgers[0].tasks == 0

    def test_zmp_populates_partial_phase(self):
        ds = anticorrelated(2000, 4, seed=12)
        report = run_plan(
            "ZDG+ZS+ZMP", ds, num_groups=8, num_workers=4, seed=0
        )
        assert report.phase2_partial is not None
        assert report.merge_makespan_cost > 0
        # The partial round fans out over more than one worker.
        busy = [
            w for w in report.phase2_partial.reduce_metrics.ledgers
            if w.tasks > 0
        ]
        assert len(busy) > 1
        # ZM has no partial phase.
        plain = run_plan(
            "ZDG+ZS+ZM", ds, num_groups=8, num_workers=4, seed=0
        )
        assert plain.phase2_partial is None
        assert sorted(plain.skyline.ids.tolist()) == sorted(
            report.skyline.ids.tolist()
        )

    def test_tiny_dataset(self):
        ds = independent(5, 3, seed=10)
        snapped, _ = quantize_dataset(ds, bits_per_dim=10)
        report = run_plan(
            "ZDG+ZS+ZM", ds, num_groups=4, num_workers=2, bits_per_dim=10
        )
        assert is_skyline_of(report.skyline.points, snapped.points)
