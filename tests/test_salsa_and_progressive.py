"""Unit tests for SaLSa and progressive BBS."""

import numpy as np

from repro.algorithms.bbs import bbs_progressive
from repro.algorithms.salsa import salsa_skyline
from repro.core.skyline import is_skyline_of, skyline_indices_oracle
from repro.data.synthetic import anticorrelated, correlated
from repro.rtree import bulk_load_str
from repro.zorder.zbtree import OpCounter


class TestSalsa:
    def test_matches_oracle_random(self):
        rng = np.random.default_rng(1)
        for d in (1, 2, 4, 6):
            pts = rng.integers(0, 16, (150, d)).astype(float)
            sky, ids = salsa_skyline(pts, None, None)
            assert is_skyline_of(sky, pts)
            for point, pid in zip(sky, ids):
                assert np.array_equal(pts[pid], point)

    def test_empty_input(self):
        sky, ids = salsa_skyline(np.empty((0, 3)), None, None)
        assert sky.shape[0] == 0

    def test_duplicates_kept(self):
        pts = np.array([[2.0, 2.0], [2.0, 2.0], [3.0, 3.0]])
        sky, _ = salsa_skyline(pts, None, None)
        assert sky.shape[0] == 2

    def test_early_termination_on_correlated_data(self):
        ds = correlated(3000, 4, seed=2)
        counter = OpCounter()
        sky, _ = salsa_skyline(ds.points, None, counter)
        assert is_skyline_of(sky, ds.points)
        # nodes_visited counts points actually read: far fewer than n.
        assert counter.nodes_visited < 3000

    def test_no_early_exit_on_anticorrelated_data(self):
        ds = anticorrelated(500, 4, seed=3)
        counter = OpCounter()
        sky, _ = salsa_skyline(ds.points, None, counter)
        assert is_skyline_of(sky, ds.points)

    def test_registered(self):
        from repro.algorithms.registry import get_algorithm
        from repro.pipeline.plans import parse_plan

        assert get_algorithm("SALSA") is salsa_skyline
        assert parse_plan("ZDG+SALSA").local_algorithm == "SALSA"

    def test_stop_point_correctness_edge(self):
        # A point whose min equals the threshold must still be read
        # (strict inequality required to stop).
        pts = np.array([[0.0, 2.0], [2.0, 2.0], [2.0, 1.0]])
        sky, _ = salsa_skyline(pts, None, None)
        assert is_skyline_of(sky, pts)


class TestProgressiveBBS:
    def test_yields_full_skyline(self):
        rng = np.random.default_rng(4)
        pts = rng.integers(0, 16, (200, 3)).astype(float)
        tree = bulk_load_str(pts)
        got = list(bbs_progressive(tree))
        expected = skyline_indices_oracle(pts)
        assert sorted(pid for _, pid in got) == expected.tolist()

    def test_yields_in_sum_order(self):
        rng = np.random.default_rng(5)
        pts = rng.integers(0, 16, (200, 3)).astype(float)
        tree = bulk_load_str(pts)
        sums = [float(p.sum()) for p, _ in bbs_progressive(tree)]
        assert sums == sorted(sums)

    def test_first_result_is_cheap(self):
        # Progressive: the first skyline point arrives after touching a
        # small fraction of the tree.
        rng = np.random.default_rng(6)
        pts = rng.random((5000, 3)) * 100
        tree = bulk_load_str(pts)
        counter = OpCounter()
        gen = bbs_progressive(tree, counter)
        next(gen)
        assert counter.nodes_visited < 2500

    def test_empty_tree(self):
        tree = bulk_load_str(np.empty((0, 2)))
        assert list(bbs_progressive(tree)) == []

    def test_partial_consumption_is_valid_prefix(self):
        rng = np.random.default_rng(7)
        pts = rng.integers(0, 16, (150, 3)).astype(float)
        tree = bulk_load_str(pts)
        first_three = [pid for _, pid in bbs_progressive(tree)][:3]
        all_of_them = [pid for _, pid in bbs_progressive(tree)]
        assert all_of_them[:3] == first_three
