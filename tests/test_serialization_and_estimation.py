"""Unit tests for rule/report serialisation and cardinality estimation."""

import json

import numpy as np
import pytest

from repro import run_plan
from repro.analysis.cardinality import (
    capture_recapture_estimate,
    harmonic_estimate,
    sample_scaling_estimate,
)
from repro.core.exceptions import ConfigurationError, DatasetError
from repro.core.skyline import skyline_indices_oracle
from repro.data.synthetic import anticorrelated, correlated, independent
from repro.partitioning import get_partitioner, reservoir_sample
from repro.pipeline.serialization import (
    codec_from_dict,
    codec_to_dict,
    report_to_dict,
    report_to_json,
    rule_from_dict,
    rule_from_json,
    rule_to_dict,
    rule_to_json,
)
from repro.zorder.encoding import ZGridCodec, quantize_dataset


def fitted_rule(name, num_groups=8):
    ds = independent(1200, 4, seed=2)
    snapped, codec = quantize_dataset(ds, bits_per_dim=8)
    sample = reservoir_sample(snapped, ratio=0.1, seed=0)
    rule = get_partitioner(name).fit(sample, codec, num_groups)
    return rule, snapped, codec


class TestCodecSerialisation:
    def test_roundtrip(self):
        codec = ZGridCodec([0.0, -5.0], [1.0, 5.0], bits_per_dim=9)
        back = codec_from_dict(codec_to_dict(codec))
        assert back.bits_per_dim == 9
        pts = np.array([[0.3, -2.0], [0.9, 4.9]])
        assert np.array_equal(back.quantize(pts), codec.quantize(pts))


@pytest.mark.parametrize(
    "name",
    [
        "random", "grid", "angle", "naive-z", "zhg", "zdg",
        "kdtree", "grid-grouped", "angle-grouped",
    ],
)
class TestRuleRoundTrip:
    def test_same_assignment_after_roundtrip(self, name):
        rule, snapped, codec = fitted_rule(name)
        back = rule_from_json(rule_to_json(rule))
        original = rule.assign_groups(snapped.points, snapped.ids)
        restored = back.assign_groups(snapped.points, snapped.ids)
        assert np.array_equal(original, restored)

    def test_json_is_plain_text(self, name):
        rule, _, _ = fitted_rule(name)
        payload = rule_to_json(rule)
        parsed = json.loads(payload)
        assert parsed["version"] == 1


class TestRuleErrors:
    def test_unknown_kind(self):
        with pytest.raises(ConfigurationError):
            rule_from_dict({"version": 1, "kind": "quadtree"})

    def test_wrong_version(self):
        with pytest.raises(ConfigurationError):
            rule_from_dict({"version": 99, "kind": "random"})

    def test_unserialisable_rule(self):
        class Fake:
            pass

        with pytest.raises(ConfigurationError):
            rule_to_dict(Fake())  # type: ignore[arg-type]


class TestReportSerialisation:
    def test_report_to_json(self):
        ds = independent(500, 3, seed=1)
        report = run_plan(
            "ZHG+ZS", ds, num_groups=4, num_workers=2, seed=0
        )
        payload = json.loads(report_to_json(report))
        assert payload["plan"] == "ZHG+ZS"
        assert payload["summary"]["skyline"] == report.skyline_size
        assert len(payload["skyline_ids"]) == report.skyline_size
        assert "phase1" in payload["counters"]

    def test_report_dict_is_json_safe(self):
        ds = independent(400, 3, seed=2)
        report = run_plan(
            "Grid+SB", ds, num_groups=4, num_workers=2, seed=0
        )
        json.dumps(report_to_dict(report))  # must not raise


class TestExactRecurrence:
    def test_one_dimension_is_one(self):
        from repro.analysis.cardinality import expected_skyline_size_exact

        assert expected_skyline_size_exact(1000, 1) == 1.0

    def test_two_dimensions_is_harmonic_number(self):
        from repro.analysis.cardinality import expected_skyline_size_exact

        n = 100
        h_n = sum(1.0 / j for j in range(1, n + 1))
        assert expected_skyline_size_exact(n, 2) == pytest.approx(h_n)

    def test_matches_empirical_mean(self):
        from repro.analysis.cardinality import expected_skyline_size_exact

        n, d, trials = 300, 3, 30
        rng = np.random.default_rng(7)
        sizes = [
            len(skyline_indices_oracle(rng.random((n, d))))
            for _ in range(trials)
        ]
        expected = expected_skyline_size_exact(n, d)
        assert abs(np.mean(sizes) - expected) < 4 * np.std(sizes)

    def test_monotone_in_dimension(self):
        from repro.analysis.cardinality import expected_skyline_size_exact

        values = [
            expected_skyline_size_exact(500, d) for d in (1, 2, 3, 4)
        ]
        assert values == sorted(values)

    def test_validation(self):
        from repro.analysis.cardinality import expected_skyline_size_exact

        with pytest.raises(DatasetError):
            expected_skyline_size_exact(0, 2)


class TestHarmonicEstimate:
    def test_one_dimension(self):
        assert harmonic_estimate(1000, 1) == 1.0

    def test_grows_with_dimension(self):
        values = [harmonic_estimate(100_000, d) for d in (2, 3, 4, 5)]
        assert values == sorted(values)

    def test_never_exceeds_n(self):
        assert harmonic_estimate(10, 50) <= 10

    def test_validation(self):
        with pytest.raises(DatasetError):
            harmonic_estimate(0, 3)

    def test_roughly_matches_independent_data(self):
        ds = independent(5000, 3, seed=3)
        actual = len(skyline_indices_oracle(ds.points))
        predicted = harmonic_estimate(5000, 3)
        assert 0.25 < predicted / actual < 4.0


class TestSamplingEstimators:
    def test_sample_scaling_on_independent(self):
        ds = independent(5000, 3, seed=4)
        actual = len(skyline_indices_oracle(ds.points))
        estimate = sample_scaling_estimate(ds, sample_ratio=0.1, seed=0)
        assert 0.25 < estimate / actual < 4.0

    def test_sample_scaling_validation(self):
        ds = independent(100, 2, seed=0)
        with pytest.raises(DatasetError):
            sample_scaling_estimate(ds, sample_ratio=0.0)

    def test_capture_recapture_on_anticorrelated(self):
        # Anti-correlated skylines are huge; the distribution-free
        # estimator should land within a small factor.
        ds = anticorrelated(3000, 4, seed=5)
        actual = len(skyline_indices_oracle(ds.points))
        estimate = capture_recapture_estimate(ds, sample_ratio=0.15, seed=0)
        assert 0.2 < estimate / actual < 5.0

    def test_capture_recapture_validation(self):
        ds = independent(100, 2, seed=0)
        with pytest.raises(DatasetError):
            capture_recapture_estimate(ds, sample_ratio=0.9)

    def test_estimators_bounded_by_n(self):
        ds = correlated(500, 3, seed=6)
        assert sample_scaling_estimate(ds) <= 500
        assert capture_recapture_estimate(ds) <= 500
