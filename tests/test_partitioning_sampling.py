"""Unit tests for reservoir sampling."""

import numpy as np
import pytest

from repro.core.dataset import Dataset
from repro.core.exceptions import DatasetError
from repro.partitioning.sampling import (
    reservoir_sample,
    reservoir_sample_indices,
)


class TestIndices:
    def test_exact_size(self):
        rng = np.random.default_rng(0)
        idx = reservoir_sample_indices(1000, 50, rng)
        assert idx.shape == (50,)
        assert len(np.unique(idx)) == 50
        assert idx.min() >= 0 and idx.max() < 1000

    def test_k_at_least_n_returns_everything(self):
        rng = np.random.default_rng(0)
        assert reservoir_sample_indices(10, 10, rng).tolist() == list(range(10))
        assert reservoir_sample_indices(10, 99, rng).tolist() == list(range(10))

    def test_rejects_nonpositive_k(self):
        rng = np.random.default_rng(0)
        with pytest.raises(DatasetError):
            reservoir_sample_indices(10, 0, rng)

    def test_deterministic_given_seed(self):
        a = reservoir_sample_indices(500, 20, np.random.default_rng(42))
        b = reservoir_sample_indices(500, 20, np.random.default_rng(42))
        assert np.array_equal(a, b)

    def test_roughly_uniform(self):
        # Every position should be selected with probability ~k/n.
        n, k, trials = 200, 20, 400
        hits = np.zeros(n)
        for seed in range(trials):
            rng = np.random.default_rng(seed)
            hits[reservoir_sample_indices(n, k, rng)] += 1
        freq = hits / trials
        # Expected 0.1; allow generous tolerance.
        assert abs(freq.mean() - k / n) < 1e-9
        assert freq.min() > 0.03
        assert freq.max() < 0.25


class TestDatasetSampling:
    def test_sample_by_ratio(self):
        ds = Dataset(np.arange(200.0).reshape(100, 2))
        sample = reservoir_sample(ds, ratio=0.1, seed=1)
        assert sample.size == 10
        # Sampled rows exist in the original dataset.
        assert set(sample.ids.tolist()) <= set(ds.ids.tolist())

    def test_sample_by_size(self):
        ds = Dataset(np.arange(200.0).reshape(100, 2))
        assert reservoir_sample(ds, size=7, seed=1).size == 7

    def test_requires_exactly_one_of_ratio_size(self):
        ds = Dataset(np.arange(20.0).reshape(10, 2))
        with pytest.raises(DatasetError):
            reservoir_sample(ds)
        with pytest.raises(DatasetError):
            reservoir_sample(ds, ratio=0.5, size=3)

    def test_ratio_bounds(self):
        ds = Dataset(np.arange(20.0).reshape(10, 2))
        with pytest.raises(DatasetError):
            reservoir_sample(ds, ratio=0.0)
        with pytest.raises(DatasetError):
            reservoir_sample(ds, ratio=1.5)

    def test_tiny_ratio_gives_at_least_one(self):
        ds = Dataset(np.arange(20.0).reshape(10, 2))
        assert reservoir_sample(ds, ratio=0.001, seed=0).size == 1
