"""Unit tests for ZDG (Algorithm 2) dominance-based grouping."""

import math

import numpy as np
import pytest

from repro.core.exceptions import ConfigurationError
from repro.core.skyline import skyline_indices_oracle
from repro.data.synthetic import anticorrelated, independent
from repro.partitioning.base import DROPPED
from repro.partitioning.dominance_grouping import (
    DominanceGroupingPartitioner,
    build_dominance_matrix,
    log_dominance_volume,
    prune_dominated_partitions,
)
from repro.zorder.encoding import quantize_dataset
from repro.zorder.rzregion import RZRegion, dominance_volume


def snapped(dist_fn, n=3000, d=4, seed=0, bits=8):
    return quantize_dataset(dist_fn(n, d, seed=seed), bits_per_dim=bits)


def box(lo, hi) -> RZRegion:
    return RZRegion.from_corners(0, 0, np.array(lo), np.array(hi))


class TestLogDominanceVolume:
    def test_agrees_with_exact_volume(self):
        a = box([0, 0], [3, 3])
        b = box([2, 2], [5, 5])
        exact = dominance_volume(a, b)
        assert math.exp(log_dominance_volume(a, b)) == pytest.approx(exact)

    def test_zero_volume_is_minus_inf(self):
        a = box([0, 0], [3, 3])
        assert log_dominance_volume(a, a) == -math.inf

    def test_no_overflow_in_high_dimensions(self):
        d = 512
        a = box([0] * d, [10] * d)
        b = box([5] * d, [500] * d)
        val = log_dominance_volume(a, b)
        assert math.isfinite(val)


class TestDominanceMatrix:
    def test_symmetric_zero_diagonal(self):
        regions = [
            box([0, 0], [3, 3]),
            box([2, 2], [5, 5]),
            box([8, 0], [9, 1]),
        ]
        dm = build_dominance_matrix(regions)
        assert np.array_equal(dm, dm.T)
        assert np.all(np.diag(dm) == 0.0)

    def test_relative_order_preserved(self):
        a = box([0, 0], [3, 3])
        big = box([2, 2], [9, 9])
        small = box([4, 4], [5, 5])
        dm = build_dominance_matrix([a, big, small])
        assert dm[0, 1] > dm[0, 2]

    def test_all_zero_volumes(self):
        a = box([0, 0], [1, 1])
        dm = build_dominance_matrix([a, a])
        assert np.all(dm == 0.0)

    def test_high_dimensional_matrix_finite(self):
        rng = np.random.default_rng(0)
        d = 200
        regions = []
        for _ in range(6):
            lo = rng.integers(0, 100, d)
            hi = lo + rng.integers(1, 100, d)
            regions.append(box(lo, hi))
        dm = build_dominance_matrix(regions)
        assert np.isfinite(dm).all()
        assert dm.max() <= 1.0 + 1e-12


class TestPruning:
    def test_fully_dominated_partition_pruned(self):
        low = box([0, 0], [1, 1])
        high = box([8, 8], [9, 9])
        pruned = prune_dominated_partitions(
            [low, high], nonempty=np.array([True, True])
        )
        assert pruned.tolist() == [False, True]

    def test_empty_partitions_cannot_prune(self):
        low = box([0, 0], [1, 1])
        high = box([8, 8], [9, 9])
        pruned = prune_dominated_partitions(
            [low, high], nonempty=np.array([False, True])
        )
        assert pruned.tolist() == [False, False]

    def test_incomparable_partitions_not_pruned(self):
        a = box([0, 8], [1, 9])
        b = box([8, 0], [9, 1])
        pruned = prune_dominated_partitions(
            [a, b], nonempty=np.array([True, True])
        )
        assert not pruned.any()


class TestZDG:
    def test_rejects_bad_expansion(self):
        with pytest.raises(ConfigurationError):
            DominanceGroupingPartitioner(expansion=0)

    def test_rejects_bad_num_groups(self):
        sample, codec = snapped(independent, n=200)
        with pytest.raises(ConfigurationError):
            DominanceGroupingPartitioner().fit(sample, codec, 0)

    def test_group_ids_contiguous_with_optional_drops(self):
        sample, codec = snapped(independent)
        rule = DominanceGroupingPartitioner().fit(sample, codec, 8)
        used = sorted(set(rule.group_map[rule.group_map >= 0].tolist()))
        assert used == list(range(rule.num_groups))

    def test_dropping_never_loses_skyline_points(self):
        # The safety property behind Algorithm 3 line 7: every dropped
        # point is dominated by some kept point.
        for dist_fn, seed in [(independent, 1), (anticorrelated, 2)]:
            full, codec = snapped(dist_fn, n=2500, seed=seed)
            rule = DominanceGroupingPartitioner().fit(full, codec, 8)
            gids = rule.assign_groups(full.points, full.ids)
            dropped = gids == DROPPED
            if not dropped.any():
                continue
            sky_idx = set(skyline_indices_oracle(full.points).tolist())
            dropped_idx = set(np.flatnonzero(dropped).tolist())
            assert not (sky_idx & dropped_idx)

    def test_groups_have_positive_affinity_when_possible(self):
        # Partitions sharing a group should typically have non-zero
        # mutual dominance volume (the objective being maximised).
        sample, codec = snapped(independent, n=4000)
        partitioner = DominanceGroupingPartitioner()
        rule = partitioner.fit(sample, codec, 8)
        regions = rule.regions()
        gm = rule.group_map
        dm = build_dominance_matrix(regions)
        intra_volumes = []
        for gid in range(rule.num_groups):
            members = np.flatnonzero(gm == gid)
            for i in range(len(members)):
                for j in range(i + 1, len(members)):
                    intra_volumes.append(dm[members[i], members[j]])
        m = dm.shape[0]
        all_volumes = dm[np.triu_indices(m, k=1)]
        if intra_volumes and all_volumes.size:
            # Greedy grouping should concentrate dominance volume inside
            # groups: mean intra-group affinity beats the all-pairs mean.
            assert np.mean(intra_volumes) >= all_volumes.mean()

    def test_capacity_constraints_respected(self):
        # Each group's sample-point and sample-skyline totals stay
        # within the caps, except for single-partition groups (a
        # partition bigger than the cap must still live somewhere).
        import math

        from repro.partitioning.grouping import compute_sample_stats

        sample, codec = snapped(anticorrelated, n=4000)
        M = 8
        partitioner = DominanceGroupingPartitioner()
        rule = partitioner.fit(sample, codec, M)
        stats = compute_sample_stats(
            sample, codec, parts=M * partitioner.expansion
        )
        tcons = max(1, math.ceil(stats.sample_size / M))
        scons = max(1, math.ceil(max(stats.skyline_size, 1) / M))
        gm = rule.group_map
        for gid in range(rule.num_groups):
            members = np.flatnonzero(gm == gid)
            if len(members) <= 1:
                continue
            assert stats.point_counts[members].sum() <= tcons
            assert stats.skyline_counts[members].sum() <= scons

    def test_deterministic_given_seed(self):
        sample, codec = snapped(independent)
        a = DominanceGroupingPartitioner().fit(sample, codec, 8, seed=3)
        b = DominanceGroupingPartitioner().fit(sample, codec, 8, seed=3)
        assert a.pivots == b.pivots
        assert np.array_equal(a.group_map, b.group_map)
