"""Unit tests for Z-address encoding."""

import numpy as np
import pytest

from repro.core.dataset import Dataset
from repro.core.exceptions import ZOrderError
from repro.zorder.encoding import ZGridCodec, quantize_dataset


class TestConstruction:
    def test_rejects_bad_bounds(self):
        with pytest.raises(ZOrderError):
            ZGridCodec([0.0, 0.0], [1.0])
        with pytest.raises(ZOrderError):
            ZGridCodec([1.0], [0.0])

    def test_rejects_bad_bits(self):
        with pytest.raises(ZOrderError):
            ZGridCodec([0.0], [1.0], bits_per_dim=0)
        with pytest.raises(ZOrderError):
            ZGridCodec([0.0], [1.0], bits_per_dim=33)

    def test_total_bits(self):
        codec = ZGridCodec.unit_cube(3, bits_per_dim=5)
        assert codec.total_bits == 15
        assert codec.max_zaddress == 2**15 - 1


class TestQuantize:
    def test_corners_map_to_grid_corners(self):
        codec = ZGridCodec.unit_cube(2, bits_per_dim=4)
        assert codec.quantize(np.array([0.0, 0.0])).tolist() == [0, 0]
        # The upper bound clips into the last cell.
        assert codec.quantize(np.array([1.0, 1.0])).tolist() == [15, 15]

    def test_out_of_box_points_clip(self):
        codec = ZGridCodec.unit_cube(2, bits_per_dim=4)
        assert codec.quantize(np.array([-5.0, 7.0])).tolist() == [0, 15]

    def test_monotone(self):
        codec = ZGridCodec.unit_cube(3, bits_per_dim=8)
        rng = np.random.default_rng(5)
        p = rng.random((50, 3))
        q = p + rng.random((50, 3)) * 0.1  # q >= p componentwise
        gp = codec.quantize(np.clip(p, 0, 1))
        gq = codec.quantize(np.clip(q, 0, 1))
        assert np.all(gp <= gq)

    def test_wrong_dimensionality_rejected(self):
        codec = ZGridCodec.unit_cube(3)
        with pytest.raises(ZOrderError):
            codec.quantize(np.zeros((4, 2)))

    def test_constant_dimension_maps_to_zero(self):
        codec = ZGridCodec([0.0, 5.0], [1.0, 5.0], bits_per_dim=4)
        g = codec.quantize(np.array([[0.5, 5.0]]))
        assert g[0, 1] == 0

    def test_dequantize_returns_cell_lower_corner(self):
        codec = ZGridCodec([0.0], [16.0], bits_per_dim=4)
        assert codec.dequantize(np.array([3]))[0] == 3.0


class TestEncodeDecode:
    def test_known_2d_interleave(self):
        # 2 bits/dim, point (x=0b10, y=0b01): level-major, dim0 first:
        # bits = x1 y1 x0 y0 = 1 0 0 1 = 9
        codec = ZGridCodec.grid_identity(2, bits_per_dim=2)
        assert codec.encode_grid(np.array([[0b10, 0b01]]))[0] == 0b1001

    def test_roundtrip_various_dims(self):
        rng = np.random.default_rng(6)
        for d in (1, 2, 3, 7, 30, 100):
            codec = ZGridCodec.grid_identity(d, bits_per_dim=7)
            grid = rng.integers(0, 2**7, (20, d))
            zs = codec.encode_grid(grid)
            back = codec.decode_many(zs)
            assert np.array_equal(back, grid.astype(np.uint32))

    def test_z_order_monotone_wrt_dominance(self):
        codec = ZGridCodec.grid_identity(4, bits_per_dim=6)
        rng = np.random.default_rng(8)
        g = rng.integers(0, 64, (100, 4))
        delta = rng.integers(0, 5, (100, 4))
        g2 = np.minimum(g + delta, 63)  # g2 >= g componentwise
        z1 = codec.encode_grid(g)
        z2 = codec.encode_grid(g2)
        assert all(a <= b for a, b in zip(z1, z2))

    def test_encode_is_injective_on_grid(self):
        codec = ZGridCodec.grid_identity(2, bits_per_dim=3)
        all_points = np.array(
            [[x, y] for x in range(8) for y in range(8)]
        )
        zs = codec.encode_grid(all_points)
        assert len(set(zs)) == 64

    def test_out_of_range_grid_rejected(self):
        codec = ZGridCodec.grid_identity(2, bits_per_dim=3)
        with pytest.raises(ZOrderError):
            codec.encode_grid(np.array([[8, 0]]))

    def test_decode_out_of_range_rejected(self):
        codec = ZGridCodec.grid_identity(2, bits_per_dim=3)
        with pytest.raises(ZOrderError):
            codec.decode_to_grid(1 << 6)

    def test_encode_one_matches_encode(self):
        codec = ZGridCodec.unit_cube(3, bits_per_dim=5)
        p = np.array([0.3, 0.6, 0.9])
        assert codec.encode_one(p) == codec.encode(p[None, :])[0]


class TestPrefixArithmetic:
    def test_common_prefix_length(self):
        codec = ZGridCodec.grid_identity(1, bits_per_dim=8)
        assert codec.common_prefix_length(0b10110000, 0b10111111) == 4
        assert codec.common_prefix_length(5, 5) == 8
        assert codec.common_prefix_length(0, 0b10000000) == 0

    def test_region_bounds_paper_example(self):
        # Paper §3.2: addresses 10110, 10011, 10010 share prefix "10";
        # minpt = 10000, maxpt = 10111.
        codec = ZGridCodec.grid_identity(1, bits_per_dim=5)
        minz, maxz = codec.region_bounds(0b10010, 0b10110)
        assert minz == 0b10000
        assert maxz == 0b10111

    def test_region_bounds_equal_addresses(self):
        codec = ZGridCodec.grid_identity(1, bits_per_dim=5)
        assert codec.region_bounds(7, 7) == (7, 7)

    def test_region_bounds_order_insensitive(self):
        codec = ZGridCodec.grid_identity(1, bits_per_dim=5)
        assert codec.region_bounds(3, 9) == codec.region_bounds(9, 3)


class TestQuantizeDataset:
    def test_snapped_values_are_integers(self):
        ds = Dataset(np.random.default_rng(0).random((50, 3)))
        snapped, codec = quantize_dataset(ds, bits_per_dim=6)
        assert np.array_equal(snapped.points, np.floor(snapped.points))
        assert snapped.points.max() < 64
        assert snapped.ids.tolist() == ds.ids.tolist()

    def test_identity_codec_is_identity_on_snapped(self):
        ds = Dataset(np.random.default_rng(1).random((50, 3)))
        snapped, codec = quantize_dataset(ds, bits_per_dim=6)
        again = codec.quantize(snapped.points)
        assert np.array_equal(again.astype(float), snapped.points)
