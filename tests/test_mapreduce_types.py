"""Unit tests for Block and dataset splitting."""

import numpy as np
import pytest

from repro.core.dataset import Dataset
from repro.core.exceptions import MapReduceError
from repro.mapreduce.types import Block, split_dataset


class TestBlock:
    def test_basic_properties(self):
        b = Block(np.array([1, 2]), np.array([[1.0, 2.0], [3.0, 4.0]]))
        assert b.size == 2
        assert b.dimensions == 2
        assert b.nbytes == 2 * (2 * 8 + 8)

    def test_rejects_mismatched_ids(self):
        with pytest.raises(MapReduceError):
            Block(np.array([1]), np.zeros((2, 2)))

    def test_rejects_1d_points(self):
        with pytest.raises(MapReduceError):
            Block(np.array([1]), np.zeros(2))

    def test_select_by_mask(self):
        b = Block(np.array([1, 2, 3]), np.arange(6.0).reshape(3, 2))
        sub = b.select(np.array([True, False, True]))
        assert sub.ids.tolist() == [1, 3]

    def test_empty_block(self):
        b = Block.empty(4)
        assert b.size == 0
        assert b.dimensions == 4

    def test_concat(self):
        a = Block(np.array([1]), np.array([[1.0, 1.0]]))
        b = Block(np.array([2]), np.array([[2.0, 2.0]]))
        both = Block.concat([a, b])
        assert both.size == 2
        assert both.ids.tolist() == [1, 2]

    def test_concat_single_is_identity(self):
        a = Block(np.array([1]), np.array([[1.0, 1.0]]))
        assert Block.concat([a]) is a

    def test_concat_empty_list_rejected(self):
        with pytest.raises(MapReduceError):
            Block.concat([])

    def test_from_dataset(self):
        ds = Dataset([[1.0, 2.0]], ids=[9])
        b = Block.from_dataset(ds)
        assert b.ids.tolist() == [9]


class TestSplitDataset:
    def test_splits_cover_all_points(self):
        ds = Dataset(np.arange(40.0).reshape(20, 2))
        splits = split_dataset(ds, 3)
        assert sum(s.size for s in splits) == 20
        ids = np.concatenate([s.ids for s in splits])
        assert sorted(ids.tolist()) == list(range(20))

    def test_more_splits_than_points(self):
        ds = Dataset(np.arange(6.0).reshape(3, 2))
        splits = split_dataset(ds, 10)
        assert len(splits) == 3
        assert all(s.size == 1 for s in splits)

    def test_rejects_nonpositive(self):
        ds = Dataset(np.arange(6.0).reshape(3, 2))
        with pytest.raises(MapReduceError):
            split_dataset(ds, 0)

    def test_roughly_equal_split_sizes(self):
        ds = Dataset(np.arange(200.0).reshape(100, 2))
        splits = split_dataset(ds, 7)
        sizes = [s.size for s in splits]
        assert max(sizes) - min(sizes) <= 1
