"""Unit tests for the skyline oracle (everything else is verified
against it, so it gets its own brute-force verification here)."""

import numpy as np

from repro.core.point import dominates
from repro.core.skyline import (
    is_skyline_of,
    skyline_indices_oracle,
)


def brute_force_skyline_indices(points: np.ndarray) -> list:
    out = []
    for i in range(points.shape[0]):
        if not any(
            dominates(points[j], points[i])
            for j in range(points.shape[0])
            if j != i
        ):
            out.append(i)
    return out


class TestOracle:
    def test_matches_brute_force_on_random_inputs(self):
        rng = np.random.default_rng(3)
        for _ in range(20):
            pts = rng.integers(0, 6, (30, 3)).astype(float)
            assert (
                skyline_indices_oracle(pts).tolist()
                == brute_force_skyline_indices(pts)
            )

    def test_empty_input(self):
        assert skyline_indices_oracle(np.empty((0, 2))).size == 0

    def test_single_point(self):
        assert skyline_indices_oracle(np.array([[1.0, 2.0]])).tolist() == [0]

    def test_hotel_example(self):
        # Figure 1(a) style: p5 dominates p6.
        pts = np.array(
            [[1.0, 9.0], [4.0, 5.0], [2.0, 7.0], [5.0, 3.0], [3.0, 4.0],
             [6.0, 6.0]]
        )
        idx = skyline_indices_oracle(pts).tolist()
        assert 5 not in idx  # dominated by [3, 4]
        assert 0 in idx and 4 in idx

    def test_duplicates_all_kept(self):
        pts = np.array([[1.0, 1.0], [1.0, 1.0], [2.0, 2.0]])
        assert skyline_indices_oracle(pts).tolist() == [0, 1]

    def test_totally_ordered_chain(self):
        pts = np.array([[3.0, 3.0], [1.0, 1.0], [2.0, 2.0]])
        assert skyline_indices_oracle(pts).tolist() == [1]

    def test_anti_diagonal_all_skyline(self):
        pts = np.array([[0.0, 3.0], [1.0, 2.0], [2.0, 1.0], [3.0, 0.0]])
        assert skyline_indices_oracle(pts).tolist() == [0, 1, 2, 3]


class TestIsSkylineOf:
    def test_accepts_permutation(self):
        pts = np.array([[0.0, 3.0], [1.0, 2.0], [5.0, 5.0]])
        candidate = np.array([[1.0, 2.0], [0.0, 3.0]])
        assert is_skyline_of(candidate, pts)

    def test_rejects_wrong_size(self):
        pts = np.array([[0.0, 3.0], [1.0, 2.0], [5.0, 5.0]])
        assert not is_skyline_of(pts[:1], pts)

    def test_rejects_wrong_points(self):
        pts = np.array([[0.0, 3.0], [1.0, 2.0], [5.0, 5.0]])
        candidate = np.array([[0.0, 3.0], [5.0, 5.0]])
        assert not is_skyline_of(candidate, pts)
