"""Sharded serving: scatter-gather identity, certified partial
answers, failover, health checks, and hedged sub-queries.

The contract hierarchy:

* with every shard healthy, the router is *indistinguishable* from a
  single :class:`SkylineService` — bit-identical answers (id-sorted
  canonical) for every query kind, at every shard count;
* with shards lost, every non-failed answer is either exact or carries
  a ``partial`` certificate whose floor bounds make the degradation
  *verifiable* — the returned set is provably a subset of the true
  answer;
* a durable shard that crashes fails over onto a bit-identical
  replacement (``Snapshot.state_digest()`` oracle).
"""

import time

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.exceptions import (
    ConfigurationError,
    DatasetError,
    ShardDownError,
)
from repro.core.skyline import skyline_indices_oracle
from repro.observability.metrics import MetricsRegistry
from repro.serving import (
    DatasetRegistry,
    DriftPolicy,
    Mutation,
    Query,
    RouterConfig,
    ServingFaultPlan,
    ShardMap,
    ShardedSkylineService,
    SkylineClient,
    SkylineService,
    WorkloadSpec,
    floor_dominated_mask,
    floor_k_dominated_mask,
    replay_workload,
)
from repro.zorder.encoding import ZGridCodec

D = 4
CELLS = 64
CODEC = ZGridCodec.grid_identity(D, bits_per_dim=8)


def _grid(rng, n, d=D, cells=CELLS):
    return rng.integers(0, cells, size=(n, d)).astype(np.float64)


def _single(points, ids):
    registry = DatasetRegistry(keep_versions=16)
    registry.register(
        "ds", points, ids=ids, codec=CODEC, drift=DriftPolicy.never()
    )
    return SkylineService(registry)


def _router(points, ids, shards, hedge=0.0, **kw):
    config = RouterConfig(
        num_shards=shards,
        hedge_after_seconds=hedge,
        breaker_cooldown_seconds=kw.pop("cooldown", 0.05),
        heartbeat_every_ops=kw.pop("heartbeat_every_ops", 0),
    )
    return ShardedSkylineService(
        "ds",
        points,
        ids=ids,
        codec=CODEC,
        config=config,
        drift=DriftPolicy.never(),
        **kw,
    )


def _all_variants(d=D):
    """Every query kind the service understands (explain separately)."""
    return [
        Query.full("ds"),
        Query.subspace("ds", [0, 1]),
        Query.subspace("ds", [1, 2, 3]),
        Query.kdominant("ds", d - 1),
        Query.topk("ds", 5, method="sum"),
        Query.topk("ds", 5, method="dominance"),
        Query.topk("ds", 5, method="weighted", weights=[1.0] * d),
        Query.topk("ds", 5, method="representative"),
    ]


def _assert_same_answer(got, want, label=""):
    np.testing.assert_array_equal(got.ids, want.ids, err_msg=label)
    np.testing.assert_array_equal(got.points, want.points, err_msg=label)
    if want.scores is None:
        assert got.scores is None, label
    else:
        np.testing.assert_array_equal(got.scores, want.scores, label)


# ----------------------------------------------------------------------
# shard map geometry
# ----------------------------------------------------------------------
class TestShardMap:
    def test_routing_is_total_and_stable(self):
        rng = np.random.default_rng(0)
        points = _grid(rng, 200)
        smap = ShardMap.fit(CODEC, points, 4)
        sids = smap.shard_of(points)
        assert sids.shape == (200,)
        assert set(np.unique(sids)) <= set(range(smap.num_shards))
        # routing is a pure function of coordinates
        np.testing.assert_array_equal(sids, smap.shard_of(points))

    def test_split_partitions_exactly(self):
        rng = np.random.default_rng(1)
        points = _grid(rng, 150)
        ids = np.arange(150, dtype=np.int64)
        smap = ShardMap.fit(CODEC, points, 3)
        parts = smap.split(points, ids)
        seen = np.concatenate([i for _, i in parts.values()])
        assert sorted(seen.tolist()) == ids.tolist()
        for sid, (pts, pids) in parts.items():
            np.testing.assert_array_equal(smap.shard_of(pts), sid)
            assert pts.shape[0] == pids.shape[0] > 0

    def test_floor_bounds_every_owned_point(self):
        rng = np.random.default_rng(2)
        points = _grid(rng, 300)
        smap = ShardMap.fit(CODEC, points, 4)
        parts = smap.split(points, np.arange(300, dtype=np.int64))
        for sid, (pts, _ids) in parts.items():
            floor = smap.floor(sid)
            assert (pts >= floor).all(), (
                f"shard {sid} owns a point below its region floor"
            )

    def test_floors_matrix_matches_per_shard(self):
        rng = np.random.default_rng(3)
        smap = ShardMap.fit(CODEC, _grid(rng, 100), 4)
        sids = list(range(smap.num_shards))
        stacked = smap.floors(sids)
        for row, sid in zip(stacked, sids):
            np.testing.assert_array_equal(row, smap.floor(sid))
        assert smap.floors([]).shape == (0, D)

    def test_validation(self):
        rng = np.random.default_rng(4)
        with pytest.raises(ConfigurationError):
            ShardMap.fit(CODEC, _grid(rng, 10), 0)
        with pytest.raises(DatasetError):
            ShardMap.fit(CODEC, np.empty((0, D)), 2)

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=40, deadline=None)
    def test_floor_mask_is_sound(self, seed):
        """If any *actual* point of a lost shard dominates q, the floor
        mask must flag q (the certificate's soundness)."""
        rng = np.random.default_rng(seed)
        lost_pts = _grid(rng, 20, cells=16)
        floors = lost_pts.min(axis=0, keepdims=True)
        queries = _grid(rng, 40, cells=16)
        mask = floor_dominated_mask(queries, floors)
        for qi, q in enumerate(queries):
            dominated = any(
                (p <= q).all() and (p < q).any() for p in lost_pts
            )
            if dominated:
                assert mask[qi]

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=40, deadline=None)
    def test_floor_k_mask_is_sound(self, seed):
        k = D - 1
        rng = np.random.default_rng(seed)
        lost_pts = _grid(rng, 20, cells=16)
        floors = lost_pts.min(axis=0, keepdims=True)
        queries = _grid(rng, 40, cells=16)
        mask = floor_k_dominated_mask(queries, floors, k)
        for qi, q in enumerate(queries):
            kdom = any(
                (p <= q).sum() >= k and ((p <= q) & (p < q)).any()
                for p in lost_pts
            )
            if kdom:
                assert mask[qi]


# ----------------------------------------------------------------------
# scatter-gather bit-identity (the core gate)
# ----------------------------------------------------------------------
class TestScatterGatherIdentity:
    @pytest.mark.parametrize("shards", [2, 3, 4])
    def test_every_query_kind_matches_single_service(self, shards):
        rng = np.random.default_rng(7)
        points = _grid(rng, 400)
        ids = np.arange(400, dtype=np.int64)
        with _single(points, ids) as single, _router(
            points, ids, shards
        ) as router:
            for query in _all_variants():
                want = single.query(query)
                got = router.query(query)
                _assert_same_answer(got, want, label=repr(query))
                assert got.certificate["kind"] == "fresh"
                assert got.version == sum(
                    int(v)
                    for v in got.certificate["version_vector"].values()
                )

    @pytest.mark.parametrize("shards", [2, 4])
    def test_explain_matches_single_service(self, shards):
        rng = np.random.default_rng(8)
        points = _grid(rng, 300)
        ids = np.arange(300, dtype=np.int64)
        with _single(points, ids) as single, _router(
            points, ids, shards
        ) as router:
            for query in (
                Query.explain("ds", point=[CELLS - 1.0] * D),
                Query.explain("ds", point_id=17),
            ):
                want = single.query(query).explanation
                got = router.query(query).explanation
                assert got.is_skyline_member == want.is_skyline_member
                np.testing.assert_array_equal(
                    got.dominator_ids, want.dominator_ids
                )
                np.testing.assert_array_equal(
                    got.dominator_points, want.dominator_points
                )
                assert (
                    got.single_dimension_fixes
                    == want.single_dimension_fixes
                )

    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        n=st.integers(min_value=4, max_value=60),
    )
    @settings(max_examples=15, deadline=None)
    def test_identity_on_arbitrary_inputs(self, seed, n):
        """Hypothesis gate: full / subspace / kdominant / topk answers
        are shard-count invariant on arbitrary grid inputs."""
        rng = np.random.default_rng(seed)
        points = _grid(rng, n, cells=16)
        ids = np.arange(n, dtype=np.int64)
        queries = [
            Query.full("ds"),
            Query.subspace("ds", [0, 1]),
            Query.kdominant("ds", D - 1),
            Query.topk("ds", 3, method="sum"),
        ]
        with _single(points, ids) as single:
            wants = [single.query(q) for q in queries]
        for shards in (2, 4):
            with _router(points, ids, shards) as router:
                for query, want in zip(queries, wants):
                    got = router.query(query)
                    _assert_same_answer(
                        got, want, label=f"{shards} shards {query!r}"
                    )

    def test_identity_survives_mutations(self):
        rng = np.random.default_rng(9)
        points = _grid(rng, 250)
        ids = np.arange(250, dtype=np.int64)
        new_pts = _grid(rng, 12)
        new_ids = np.arange(1000, 1012, dtype=np.int64)
        doomed = [3, 77, 140, 1004]
        with _single(points, ids) as single, _router(
            points, ids, 4
        ) as router:
            for target in (single, router):
                target.mutate(Mutation.insert("ds", new_pts, new_ids))
                target.mutate(Mutation.delete("ds", doomed))
            for query in _all_variants():
                _assert_same_answer(
                    router.query(query), single.query(query),
                    label=repr(query),
                )

    def test_logical_version_monotone_under_mutation(self):
        rng = np.random.default_rng(10)
        points = _grid(rng, 120)
        ids = np.arange(120, dtype=np.int64)
        with _router(points, ids, 4) as router:
            seen = [router.logical_version()]
            for i in range(4):
                pts = _grid(rng, 3)
                pids = np.arange(2000 + 3 * i, 2003 + 3 * i, dtype=np.int64)
                result = router.mutate(Mutation.insert("ds", pts, pids))
                assert result.publish.version == router.logical_version()
                seen.append(router.logical_version())
            assert seen == sorted(seen) and len(set(seen)) == len(seen)

    def test_delete_of_unknown_id_raises_like_single_service(self):
        rng = np.random.default_rng(11)
        points = _grid(rng, 50)
        ids = np.arange(50, dtype=np.int64)
        with _router(points, ids, 2) as router:
            with pytest.raises(DatasetError, match="not alive"):
                router.mutate(Mutation.delete("ds", [99_999]))

    def test_wrong_dataset_rejected(self):
        rng = np.random.default_rng(12)
        with _router(_grid(rng, 30), np.arange(30), 2) as router:
            with pytest.raises(DatasetError, match="not served"):
                router.query(Query.full("other"))


# ----------------------------------------------------------------------
# certified partial answers
# ----------------------------------------------------------------------
class TestCertifiedPartial:
    def _crashed_router(self, rng, crash_sid=1, n=400):
        points = _grid(rng, n)
        ids = np.arange(n, dtype=np.int64)
        plan = ServingFaultPlan(
            seed=3, scripted_shard_crashes={crash_sid: 1}
        )
        # no durability_dir: the crash is terminal, answers stay partial
        router = _router(points, ids, 4, fault_plan=plan)
        return router, points, ids

    def test_partial_certificate_is_verifiable(self):
        rng = np.random.default_rng(20)
        router, points, ids = self._crashed_router(rng)
        with router:
            result = router.query(Query.full("ds"))  # op 1: crash fires
            cert = result.certificate
            assert cert["kind"] == "partial"
            assert cert["lost_shards"] == [1]
            assert cert["scope"] == "shards"
            floors = np.asarray(cert["floors"], dtype=np.float64)
            assert floors.shape == (1, D)
            np.testing.assert_array_equal(floors[0], router.map.floor(1))

            # soundness: every returned point is in the TRUE skyline of
            # the full dataset (including the lost shard's rows)
            truth = set(
                ids[skyline_indices_oracle(points)].tolist()
            )
            assert set(result.ids.tolist()) <= truth

            # completeness of the certificate: the answer is exactly the
            # alive-union skyline minus the floor-masked uncertain set
            alive = router.map.shard_of(points) != 1
            alive_pts, alive_ids = points[alive], ids[alive]
            sky = skyline_indices_oracle(alive_pts)
            sky_pts, sky_ids = alive_pts[sky], alive_ids[sky]
            keep = ~floor_dominated_mask(sky_pts, floors)
            order = np.argsort(sky_ids[keep], kind="stable")
            np.testing.assert_array_equal(
                result.ids, sky_ids[keep][order]
            )
            assert cert["masked"] == int((~keep).sum())

    def test_kdominant_partial_uses_k_mask(self):
        rng = np.random.default_rng(21)
        router, points, ids = self._crashed_router(rng)
        with router:
            k = D - 1
            result = router.query(Query.kdominant("ds", k))
            cert = result.certificate
            assert cert["kind"] == "partial"
            floors = np.asarray(cert["floors"], dtype=np.float64)
            # nothing returned may be k-dominated by the lost floor
            if result.ids.shape[0]:
                assert not floor_k_dominated_mask(
                    result.points, floors, k
                ).any()

    def test_explain_on_lost_shard_point_raises_typed(self):
        rng = np.random.default_rng(22)
        router, points, ids = self._crashed_router(rng)
        with router:
            router.query(Query.full("ds"))  # trigger the crash
            lost_ids = ids[router.map.shard_of(points) == 1]
            with pytest.raises(ShardDownError) as excinfo:
                router.query(
                    Query.explain("ds", point_id=int(lost_ids[0]))
                )
            assert excinfo.value.shard == 1
            assert excinfo.value.terminal  # no durable home
            assert not excinfo.value.retryable

    def test_explain_by_point_flags_uncertainty(self):
        rng = np.random.default_rng(23)
        router, points, ids = self._crashed_router(rng)
        with router:
            router.query(Query.full("ds"))
            # a corner point the lost floor certainly dominates
            result = router.query(
                Query.explain("ds", point=[CELLS - 1.0] * D)
            )
            assert result.certificate["kind"] == "partial"
            assert result.certificate.get("explain_uncertain") is True

    def test_writes_to_lost_shard_fail_typed_and_fast(self):
        rng = np.random.default_rng(24)
        metrics = MetricsRegistry()
        points = _grid(rng, 400)
        ids = np.arange(400, dtype=np.int64)
        plan = ServingFaultPlan(seed=3, scripted_shard_crashes={1: 1})
        router = _router(
            points, ids, 4, fault_plan=plan, metrics=metrics
        )
        with router:
            router.query(Query.full("ds"))
            lost_ids = ids[router.map.shard_of(points) == 1]
            with pytest.raises(ShardDownError) as excinfo:
                router.mutate(Mutation.delete("ds", [int(lost_ids[0])]))
            assert excinfo.value.terminal
            assert (
                metrics.counter("serving", "mutations_rejected_shard_down")
                == 1
            )
            # writes to healthy shards keep working
            healthy = ids[router.map.shard_of(points) == 0]
            router.mutate(Mutation.delete("ds", [int(healthy[0])]))


# ----------------------------------------------------------------------
# failover
# ----------------------------------------------------------------------
class TestFailover:
    def test_failover_republishes_bit_identically(self, tmp_path):
        rng = np.random.default_rng(30)
        points = _grid(rng, 300)
        ids = np.arange(300, dtype=np.int64)
        plan = ServingFaultPlan(
            seed=5, scripted_shard_crashes={2: 3}
        )
        metrics = MetricsRegistry()
        with _router(
            points, ids, 4,
            durability_dir=str(tmp_path),
            fault_plan=plan,
            metrics=metrics,
            cooldown=0.02,
        ) as router:
            before = router.query(Query.full("ds"))
            router.mutate(
                Mutation.insert(
                    "ds", _grid(rng, 4), np.arange(900, 904)
                )
            )
            want = router.query(Query.full("ds"))  # op 3: crash fires
            # op 3 crashed shard 2 *before* the scatter: this answer is
            # already partial for its region
            assert want.certificate["kind"] == "partial"
            version_before = router.logical_version()

            time.sleep(0.03)  # past the breaker cooldown
            after = router.query(Query.full("ds"))  # half-open -> failover
            assert after.certificate["kind"] == "fresh"
            state = router.shard_states()[2]
            assert not state["down"]
            assert state["failovers"] == 1
            assert state["incarnation"] == 1
            assert state["last_failover_identical"] is True
            # bit-identical republish leaves the logical version alone
            assert router.logical_version() == version_before
            assert metrics.counter("serving", "shard_crashes") == 1
            assert metrics.counter("serving", "shard_failovers") == 1
            assert (
                metrics.counter("serving", "shard_failover_identical") == 1
            )
            # the post-failover skyline must contain every pre-crash
            # member plus reflect the insert — recompute offline
            alive_ids = np.asarray(
                sorted(router._owner), dtype=np.int64
            )
            assert int(before.version) <= int(after.version)
            assert alive_ids.shape[0] == 304

    def test_failover_answers_match_single_service(self, tmp_path):
        rng = np.random.default_rng(31)
        points = _grid(rng, 250)
        ids = np.arange(250, dtype=np.int64)
        plan = ServingFaultPlan(seed=6, scripted_shard_crashes={0: 1})
        with _single(points, ids) as single, _router(
            points, ids, 4,
            durability_dir=str(tmp_path),
            fault_plan=plan,
            cooldown=0.01,
        ) as router:
            router.query(Query.full("ds"))  # crash
            time.sleep(0.02)
            for query in _all_variants():
                _assert_same_answer(
                    router.query(query), single.query(query),
                    label=repr(query),
                )

    def test_terminal_schedule_blocks_failover(self, tmp_path):
        rng = np.random.default_rng(32)
        points = _grid(rng, 150)
        ids = np.arange(150, dtype=np.int64)
        plan = ServingFaultPlan(
            seed=7,
            scripted_shard_crashes={1: 1},
            terminal_shards=(1,),
        )
        with _router(
            points, ids, 4,
            durability_dir=str(tmp_path),
            fault_plan=plan,
            cooldown=0.0,
        ) as router:
            router.query(Query.full("ds"))
            time.sleep(0.01)
            result = router.query(Query.full("ds"))
            assert result.certificate["kind"] == "partial"
            assert router.shard_states()[1]["terminal"]
            assert router.shard_states()[1]["failovers"] == 0


# ----------------------------------------------------------------------
# health checks and breaker-driven degradation
# ----------------------------------------------------------------------
class TestHealth:
    def test_heartbeat_loss_opens_then_self_heals(self):
        rng = np.random.default_rng(40)
        points = _grid(rng, 200)
        ids = np.arange(200, dtype=np.int64)
        plan = ServingFaultPlan(seed=8, heartbeat_loss_rate=1.0)
        metrics = MetricsRegistry()
        with _router(
            points, ids, 4,
            fault_plan=plan,
            metrics=metrics,
            cooldown=0.02,
        ) as router:
            # every heartbeat is lost: two rounds open every breaker
            router.health.tick()
            router.health.tick()
            assert all(
                s["state"] == "open"
                for s in router.health.status().values()
            )
            result = router.query(Query.full("ds"))
            assert result.certificate["kind"] == "partial"
            assert result.certificate["lost_shards"] == [0, 1, 2, 3]
            assert result.ids.shape[0] == 0  # nothing is certain
            assert metrics.counter("serving", "heartbeat_lost") == 8
            assert metrics.counter("serving", "shard_skipped_open") == 4

            # false positive self-heals: real traffic is let through as
            # the half-open probe and closes the breakers
            time.sleep(0.03)
            healed = router.query(Query.full("ds"))
            assert healed.certificate["kind"] == "fresh"
            assert all(
                not s["down"] for s in router.shard_states().values()
            )

    def test_heartbeats_report_versions(self):
        rng = np.random.default_rng(41)
        points = _grid(rng, 100)
        ids = np.arange(100, dtype=np.int64)
        with _router(points, ids, 3) as router:
            healthy = router.health.tick()
            assert healthy == {0: True, 1: True, 2: True}
            status = router.health.status()
            for sid, entry in status.items():
                assert entry["state"] == "closed"
                assert entry["last_version"] == 1
                assert entry["consecutive_misses"] == 0
            assert router.health.ticks == 1

    def test_inline_heartbeat_cadence(self):
        rng = np.random.default_rng(42)
        points = _grid(rng, 80)
        ids = np.arange(80, dtype=np.int64)
        with _router(
            points, ids, 2, heartbeat_every_ops=2
        ) as router:
            for _ in range(6):
                router.query(Query.full("ds"))
            assert router.health.ticks == 3

    def test_heartbeat_probe_drives_failover(self, tmp_path):
        rng = np.random.default_rng(43)
        points = _grid(rng, 150)
        ids = np.arange(150, dtype=np.int64)
        plan = ServingFaultPlan(seed=9, scripted_shard_crashes={1: 1})
        with _router(
            points, ids, 4,
            durability_dir=str(tmp_path),
            fault_plan=plan,
            cooldown=30.0,  # queries alone could not recover in time
        ) as router:
            router.query(Query.full("ds"))  # crash shard 1
            assert router.shard_states()[1]["down"]
            # the probe path recovers the shard out-of-band (ungated)
            healthy = router.health.tick()
            assert healthy[1] is True
            assert not router.shard_states()[1]["down"]
            assert router.shard_states()[1]["failovers"] == 1


# ----------------------------------------------------------------------
# hedged sub-queries
# ----------------------------------------------------------------------
class TestHedging:
    def test_straggler_is_hedged_and_answer_identical(self):
        rng = np.random.default_rng(50)
        points = _grid(rng, 300)
        ids = np.arange(300, dtype=np.int64)
        plan = ServingFaultPlan(
            seed=10, shard_slow_rate=1.0, shard_slow_seconds=0.25
        )
        metrics = MetricsRegistry()
        with _single(points, ids) as single, _router(
            points, ids, 4,
            hedge=0.02,
            fault_plan=plan,
            metrics=metrics,
        ) as router:
            want = single.query(Query.full("ds"))
            got = router.query(Query.full("ds"))
            _assert_same_answer(got, want)
            assert got.certificate["kind"] == "fresh"
        assert metrics.counter("serving", "shard_slow_injected") == 4
        assert metrics.counter("serving", "hedged_subqueries") == 4
        assert metrics.counter("serving", "hedge_wins") == 4

    def test_hedging_disabled_waits_out_the_straggler(self):
        rng = np.random.default_rng(51)
        points = _grid(rng, 100)
        ids = np.arange(100, dtype=np.int64)
        plan = ServingFaultPlan(
            seed=11, shard_slow_rate=1.0, shard_slow_seconds=0.02
        )
        metrics = MetricsRegistry()
        with _router(
            points, ids, 2, hedge=0.0, fault_plan=plan, metrics=metrics
        ) as router:
            result = router.query(Query.full("ds"))
            assert result.certificate["kind"] == "fresh"
        assert metrics.counter("serving", "hedged_subqueries") == 0


# ----------------------------------------------------------------------
# client facade + replayed workload through the router
# ----------------------------------------------------------------------
class TestClientFacade:
    def test_skyline_client_speaks_to_router(self):
        rng = np.random.default_rng(60)
        points = _grid(rng, 150)
        ids = np.arange(150, dtype=np.int64)
        with _router(points, ids, 3) as router:
            client = SkylineClient(router, "ds")
            full = client.skyline()
            assert full.certificate["kind"] == "fresh"
            snap = router.registry.snapshot("ds")
            assert snap.size == 150
            assert snap.skyline_size == full.ids.shape[0]
            assert snap.version == router.logical_version()

    def test_replay_workload_under_shard_chaos(self, tmp_path):
        rng = np.random.default_rng(61)
        points = _grid(rng, 400)
        ids = np.arange(400, dtype=np.int64)
        plan = ServingFaultPlan(
            seed=12,
            scripted_shard_crashes={2: 20},
            shard_slow_rate=0.05,
            shard_slow_seconds=0.06,
            heartbeat_loss_rate=0.05,
        )
        metrics = MetricsRegistry()
        with _router(
            points, ids, 4,
            hedge=0.02,
            durability_dir=str(tmp_path),
            fault_plan=plan,
            metrics=metrics,
            cooldown=0.02,
            heartbeat_every_ops=16,
        ) as router:
            report = replay_workload(
                router,
                WorkloadSpec(
                    dataset="ds",
                    operations=120,
                    read_fraction=0.8,
                    seed=29,
                    retry_attempts=4,
                    retry_base_delay=0.005,
                ),
            )
            assert report.operations == 120
            assert report.availability >= 0.99, report.failures
            assert metrics.counter("serving", "shard_crashes") == 1
            # the crashed shard came back bit-identically
            state = router.shard_states()[2]
            assert not state["down"]
            assert state["last_failover_identical"] is True


# ----------------------------------------------------------------------
# coordinator merge cache
# ----------------------------------------------------------------------
class TestMergeCacheIdentity:
    """The cached read path is invisible except for being faster.

    Every answer produced from the merge cache, the result cache, or an
    incremental re-merge must be bit-identical to the uncached
    scatter-gather answer — which is itself bit-identical to a single
    unsharded service.
    """

    @pytest.mark.parametrize("shards", [1, 2, 4])
    def test_repeat_queries_hit_and_stay_identical(self, shards):
        rng = np.random.default_rng(70)
        points, ids = _grid(rng, 300), np.arange(300, dtype=np.int64)
        single = _single(points, ids)
        with _router(points, ids, shards) as router:
            for query in _all_variants():
                first = router.query(query)
                second = router.query(query)
                want = single.query(query)
                _assert_same_answer(first, want, f"first {query.kind}")
                _assert_same_answer(second, want, f"second {query.kind}")
                assert second.cached, query.kind
            stats = router.stats()
            assert stats["merge_cache"]["hits"] > 0
            assert stats["result_cache"]["hits"] > 0

    def test_single_shard_mutation_remerges_incrementally(self):
        rng = np.random.default_rng(71)
        points, ids = _grid(rng, 400), np.arange(400, dtype=np.int64)
        single = _single(points, ids)
        with _router(points, ids, 4) as router:
            router.query(Query.full("ds"))
            # Delete ids owned by exactly one shard: the other three
            # shards keep their versions, so the re-merge should fold
            # retained trees with fresh ones.
            sid = sorted(router._shards)[0]
            victims = np.array(
                [pid for pid, owner in router._owner.items()
                 if owner == sid][:3],
                dtype=np.int64,
            )
            mutation = Mutation.delete("ds", victims)
            router.mutate(mutation)
            single.mutate(mutation)
            got = router.query(Query.full("ds"))
            _assert_same_answer(got, single.query(Query.full("ds")))
            stats = router.stats()["merge_cache"]
            assert stats["incremental"] >= 1
            assert stats["trees_reused"] >= 1

    def test_disabled_caches_still_identical(self):
        rng = np.random.default_rng(72)
        points, ids = _grid(rng, 250), np.arange(250, dtype=np.int64)
        single = _single(points, ids)
        config = RouterConfig(
            num_shards=3, merge_cache_entries=0, result_cache_entries=0
        )
        with ShardedSkylineService(
            "ds", points, ids=ids, codec=CODEC, config=config,
            drift=DriftPolicy.never(),
        ) as router:
            for query in _all_variants():
                got = router.query(query)
                _assert_same_answer(got, single.query(query), query.kind)
            stats = router.stats()
            assert stats["merge_cache"] is None
            assert stats["result_cache"] is None

    def test_negative_cache_sizes_rejected(self):
        with pytest.raises(ConfigurationError):
            RouterConfig(merge_cache_entries=-1)
        with pytest.raises(ConfigurationError):
            RouterConfig(result_cache_entries=-1)

    def test_mutation_invalidates_via_version_vector(self):
        rng = np.random.default_rng(73)
        points, ids = _grid(rng, 300), np.arange(300, dtype=np.int64)
        single = _single(points, ids)
        with _router(points, ids, 4) as router:
            assert not router.query(Query.full("ds")).cached
            assert router.query(Query.full("ds")).cached
            extra = _grid(rng, 8)
            new_ids = np.arange(1000, 1008, dtype=np.int64)
            mutation = Mutation.insert("ds", extra, new_ids)
            router.mutate(mutation)
            single.mutate(mutation)
            # New vector -> the old entry no longer matches.
            after = router.query(Query.full("ds"))
            assert not after.cached
            _assert_same_answer(after, single.query(Query.full("ds")))
            assert router.query(Query.full("ds")).cached


class TestMergeCacheSemantics:
    """Version-vector keying on the cache object itself: a publish on
    one shard invalidates exactly the keys containing that shard's old
    version, and a reader pinned to an old vector keeps seeing its own
    merge."""

    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        shards=st.integers(min_value=2, max_value=5),
        publishes=st.lists(
            st.integers(min_value=0, max_value=4), min_size=1, max_size=8
        ),
    )
    @settings(max_examples=30, deadline=None)
    def test_publish_invalidates_exactly_affected_keys(
        self, seed, shards, publishes
    ):
        from repro.serving import MergeCache, MergedSkyline

        rng = np.random.default_rng(seed)
        cache = MergeCache(max_entries=64)
        vector = {sid: 1 for sid in range(shards)}

        def entry_for(vec):
            pts = rng.random((2, 3))
            return MergedSkyline(
                vector=dict(vec), lost=(),
                points=pts,
                ids=np.arange(2, dtype=np.int64),
            )

        stored = {}
        first = entry_for(vector)
        cache.store(first)
        stored[cache.key(vector, ())] = first
        for publish in publishes:
            sid = publish % shards
            old_vector = dict(vector)
            vector[sid] += 1
            # Pinned read: the old vector still answers from its own
            # merge — a newer publish never leaks into it.
            old_key = cache.key(old_vector, ())
            if old_key in stored:
                got = cache.get(old_vector, ())
                assert got is stored[old_key]
            # The new vector has no entry until someone merges it.
            assert cache.get(vector, ()) is None
            fresh = entry_for(vector)
            cache.store(fresh)
            stored[cache.key(vector, ())] = fresh
            assert cache.get(vector, ()) is fresh

    def test_lost_shards_get_their_own_key(self):
        from repro.serving import MergeCache, MergedSkyline

        cache = MergeCache(max_entries=8)
        vector = {0: 3, 1: 5}
        whole = MergedSkyline(
            vector=dict(vector), lost=(),
            points=np.zeros((1, 2)), ids=np.array([7], dtype=np.int64),
        )
        partial = MergedSkyline(
            vector=dict(vector), lost=(1,),
            points=np.ones((1, 2)), ids=np.array([9], dtype=np.int64),
        )
        cache.store(whole)
        cache.store(partial)
        assert cache.get(vector, ()) is whole
        assert cache.get(vector, (1,)) is partial


# ----------------------------------------------------------------------
# shed-rate fairness
# ----------------------------------------------------------------------
class TestShedFairness:
    def test_ratios_from_admission_deltas(self):
        from repro.serving import shed_ratios_from_admission

        before = {
            0: {"read": {"admitted": 10, "rejected": 0}},
            1: {"read": {"admitted": 5, "rejected": 5}},
        }
        after = {
            0: {"read": {"admitted": 40, "rejected": 10}},
            1: {"read": {"admitted": 25, "rejected": 15}},
            # shard adopted mid-replay: counted from zero
            2: {"read": {"admitted": 9, "rejected": 1}},
            # shard with no traffic in the window: omitted
            3: {"read": {"admitted": 0, "rejected": 0}},
        }
        ratios = shed_ratios_from_admission(before, after)
        assert ratios == {0: 0.25, 1: 1 / 3, 2: 0.1}

    def test_fairness_edge_cases(self):
        from repro.serving import ReplayReport

        report = ReplayReport()
        assert report.shed_fairness == 1.0  # no shards
        report.shard_shed_ratios = {0: 0.2}
        assert report.shed_fairness == 1.0  # one shard: moot
        report.shard_shed_ratios = {0: 0.0, 1: 0.0}
        assert report.shed_fairness == 1.0  # nobody shed
        report.shard_shed_ratios = {0: 0.0, 1: 0.2}
        assert report.shed_fairness == float("inf")
        report.shard_shed_ratios = {0: 0.1, 1: 0.4}
        assert report.shed_fairness == pytest.approx(4.0)
        assert "shed_fairness" in report.summary()

    def test_replay_collects_per_shard_ratios(self):
        rng = np.random.default_rng(74)
        points, ids = _grid(rng, 300), np.arange(300, dtype=np.int64)
        with _router(points, ids, 3) as router:
            report = replay_workload(
                router,
                WorkloadSpec(
                    dataset="ds", operations=40, read_fraction=0.8,
                    seed=5,
                ),
            )
        # Healthy unthrottled run: every shard saw traffic, nobody shed.
        assert set(report.shard_shed_ratios) == {0, 1, 2}
        assert all(r == 0.0 for r in report.shard_shed_ratios.values())
        assert report.shed_fairness == 1.0
