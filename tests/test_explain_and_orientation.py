"""Unit tests for why-not explanations and dataset orientation."""

import numpy as np
import pytest

from repro.core.dataset import Dataset
from repro.core.exceptions import DatasetError
from repro.core.point import dominates
from repro.core.skyline import skyline_indices_oracle
from repro.extensions import why_not


class TestWhyNot:
    def test_skyline_member(self):
        data = np.array([[0.0, 3.0], [3.0, 0.0], [2.0, 2.0]])
        explanation = why_not(np.array([0.0, 3.0]), data)
        assert explanation.is_skyline_member
        assert explanation.num_dominators == 0
        assert explanation.cheapest_fix() is None

    def test_dominated_point_lists_dominators(self):
        data = np.array([[1.0, 1.0], [0.0, 5.0], [4.0, 4.0]])
        explanation = why_not(np.array([4.0, 4.0]), data, np.array([7, 8, 9]))
        assert not explanation.is_skyline_member
        assert explanation.dominator_ids.tolist() == [7]

    def test_self_row_not_its_own_dominator(self):
        data = np.array([[2.0, 2.0], [2.0, 2.0]])
        explanation = why_not(np.array([2.0, 2.0]), data)
        assert explanation.is_skyline_member

    def test_fixes_escape_all_dominators(self):
        rng = np.random.default_rng(1)
        data = rng.integers(0, 10, (80, 3)).astype(float)
        sky = set(skyline_indices_oracle(data).tolist())
        for i in range(80):
            if i in sky:
                continue
            explanation = why_not(data[i], data)
            dim, reduction = explanation.cheapest_fix()
            improved = data[i].copy()
            improved[dim] -= reduction + 1e-9
            # No former dominator dominates the improved point.
            for dominator in explanation.dominator_points:
                assert not dominates(dominator, improved)

    def test_what_if_query_for_nonmember_point(self):
        data = np.array([[1.0, 1.0]])
        explanation = why_not(np.array([0.5, 0.5]), data)
        assert explanation.is_skyline_member

    def test_dimension_mismatch(self):
        with pytest.raises(DatasetError):
            why_not(np.array([1.0]), np.zeros((3, 2)))


class TestOrientation:
    def test_max_columns_flip(self):
        ds = Dataset([[1.0, 10.0], [3.0, 30.0]])
        flipped = ds.oriented(["min", "max"])
        # Max column: 30 is best -> becomes 0; 10 -> 20.
        assert flipped.points[:, 1].tolist() == [20.0, 0.0]
        # Min column untouched.
        assert flipped.points[:, 0].tolist() == [1.0, 3.0]

    def test_skyline_semantics_after_orientation(self):
        # Cheap+good beats expensive+bad once rating is flipped.
        ds = Dataset([[100.0, 4.8], [200.0, 3.0]])  # (price, rating)
        flipped = ds.oriented(["min", "max"])
        sky = skyline_indices_oracle(flipped.points)
        assert sky.tolist() == [0]

    def test_all_min_is_identity(self):
        ds = Dataset([[1.0, 2.0], [3.0, 4.0]])
        same = ds.oriented(["min", "min"])
        assert np.array_equal(same.points, ds.points)

    def test_ids_preserved(self):
        ds = Dataset([[1.0]], ids=[42])
        assert ds.oriented(["max"]).ids.tolist() == [42]

    def test_validation(self):
        ds = Dataset([[1.0, 2.0]])
        with pytest.raises(DatasetError):
            ds.oriented(["min"])
        with pytest.raises(DatasetError):
            ds.oriented(["min", "sideways"])
