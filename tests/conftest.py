"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.dataset import Dataset
from repro.zorder.encoding import ZGridCodec


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture
def grid_codec_2d() -> ZGridCodec:
    """Identity codec over a 4-bit 2-D grid (16x16 cells)."""
    return ZGridCodec.grid_identity(2, bits_per_dim=4)


@pytest.fixture
def grid_codec_3d() -> ZGridCodec:
    return ZGridCodec.grid_identity(3, bits_per_dim=6)


@pytest.fixture
def small_grid_dataset(rng: np.random.Generator) -> Dataset:
    """120 integer grid points in [0, 16)^3 (exact for all algorithms)."""
    points = rng.integers(0, 16, (120, 3)).astype(float)
    return Dataset(points, name="small-grid")


def random_grid_points(
    rng: np.random.Generator, n: int, d: int, top: int = 64
) -> np.ndarray:
    """Integer-valued float points suitable for exact z-order tests."""
    return rng.integers(0, top, (n, d)).astype(float)
