"""Hammer tests: snapshot isolation and cache coherence under real
concurrent mutation.

A writer thread streams insert/delete batches through the service
while reader threads continuously issue all five query types.  The
invariants checked are the serving layer's whole contract:

* every answer is internally consistent with the *single* version it
  claims (skyline of that version's alive set, verified against the
  brute-force oracle) — i.e. no result ever mixes two versions;
* versions observed by any one reader never go backwards;
* cached answers are bit-identical to uncached recomputation even
  while the writer races ahead.
"""

from __future__ import annotations

import threading

import numpy as np

from repro.core.exceptions import DatasetError
from repro.core.skyline import skyline_indices_oracle
from repro.extensions.kdominant import k_dominant_skyline
from repro.extensions.subspace import subspace_skyline
from repro.serving import (
    DatasetRegistry,
    DriftPolicy,
    Mutation,
    Query,
    SkylineService,
)

DIMS = 3
TOP = 16


def _oracle_ids(points: np.ndarray, ids: np.ndarray) -> np.ndarray:
    if points.shape[0] == 0:
        return np.empty(0, dtype=np.int64)
    return np.sort(ids[skyline_indices_oracle(points)])


class TestSnapshotIsolationUnderWrites:
    def test_readers_never_observe_torn_versions(self, rng):
        registry = DatasetRegistry(keep_versions=4)
        points = rng.integers(0, TOP, size=(120, DIMS)).astype(np.float64)
        registry.register(
            "h", points,
            drift=DriftPolicy.bounded(max_deletes=30,
                                      max_delete_fraction=None),
        )
        errors: list = []
        stop = threading.Event()

        def writer() -> None:
            wrng = np.random.default_rng(99)
            next_id = 10_000
            try:
                for step in range(40):
                    if step % 2 == 0:
                        batch = wrng.integers(
                            0, TOP, size=(6, DIMS)
                        ).astype(np.float64)
                        ids = np.arange(next_id, next_id + 6)
                        next_id += 6
                        registry.insert("h", batch, ids)
                    else:
                        alive = registry.snapshot("h").ids
                        doomed = wrng.choice(
                            alive, size=min(4, alive.size - 10),
                            replace=False,
                        )
                        registry.delete("h", doomed)
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)
            finally:
                stop.set()

        def reader(seed: int) -> None:
            last_version = 0
            try:
                while not stop.is_set():
                    snap = registry.snapshot("h")
                    # monotone versions per reader
                    assert snap.version >= last_version
                    last_version = snap.version
                    # the snapshot is a consistent cut: its skyline is
                    # exactly the oracle skyline of its own alive set
                    assert np.array_equal(
                        np.sort(snap.sky_ids),
                        _oracle_ids(snap.points, snap.ids),
                    )
                    # and immutable: ids/points agree in length forever
                    assert snap.ids.shape[0] == snap.points.shape[0]
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        writer_thread = threading.Thread(target=writer)
        readers = [
            threading.Thread(target=reader, args=(i,)) for i in range(3)
        ]
        writer_thread.start()
        for thread in readers:
            thread.start()
        writer_thread.join(timeout=60)
        for thread in readers:
            thread.join(timeout=60)
        assert not errors, errors[0]
        final = registry.snapshot("h")
        assert final.version == 41  # register + 40 mutation batches

    def test_held_snapshot_is_immune_to_later_writes(self, rng):
        registry = DatasetRegistry()
        points = rng.integers(0, TOP, size=(60, DIMS)).astype(np.float64)
        registry.register("h", points)
        held = registry.snapshot("h")
        held_ids = held.ids.copy()
        held_sky = held.sky_ids.copy()
        for step in range(10):
            registry.insert(
                "h",
                rng.integers(0, TOP, size=(3, DIMS)).astype(np.float64),
                np.arange(1000 + 3 * step, 1003 + 3 * step),
            )
        registry.delete("h", held_ids[:5])
        assert held.version == 1
        assert np.array_equal(held.ids, held_ids)
        assert np.array_equal(held.sky_ids, held_sky)


class TestCacheCoherenceUnderWrites:
    def test_all_query_types_bit_identical_cached_vs_fresh(self, rng):
        """Reader threads hammer all five query types (getting a mix of
        hits and misses) while a writer mutates; every answer must be
        bit-identical to an offline recomputation on the snapshot of the
        version it reports."""
        registry = DatasetRegistry()
        points = rng.integers(0, TOP, size=(100, DIMS)).astype(np.float64)
        registry.register("h", points)
        errors: list = []
        stop = threading.Event()

        queries = [
            Query.full("h"),
            Query.subspace("h", [0, 2]),
            Query.kdominant("h", 2),
            Query.topk("h", 4, method="sum"),
            Query.explain("h", point=[float(TOP - 1)] * DIMS),
        ]

        with SkylineService(registry) as service:

            def writer() -> None:
                wrng = np.random.default_rng(7)
                try:
                    for step in range(25):
                        batch = wrng.integers(
                            0, TOP, size=(4, DIMS)
                        ).astype(np.float64)
                        ids = np.arange(5000 + 4 * step, 5004 + 4 * step)
                        service.mutate(Mutation.insert("h", batch, ids))
                except Exception as exc:  # pragma: no cover
                    errors.append(exc)
                finally:
                    stop.set()

            def check(result, query, snap) -> None:
                if query.kind == "full":
                    expected = _oracle_ids(snap.points, snap.ids)
                elif query.kind == "subspace":
                    _, ids = subspace_skyline(
                        snap.points, list(query.dims), ids=snap.ids
                    )
                    expected = np.sort(ids)
                elif query.kind == "kdominant":
                    _, ids = k_dominant_skyline(
                        snap.points, query.k, ids=snap.ids
                    )
                    expected = np.sort(ids)
                elif query.kind == "topk":
                    assert result.size == min(query.k, snap.skyline_size)
                    assert np.all(np.diff(result.scores) >= 0)
                    return
                else:  # explain: worst corner is dominated by all
                    assert not result.explanation.is_skyline_member
                    return
                assert np.array_equal(result.ids, expected), (
                    f"{query.kind}@v{result.version}: "
                    f"{result.ids} != {expected}"
                )

            def reader(seed: int) -> None:
                rrng = np.random.default_rng(seed)
                try:
                    while not stop.is_set():
                        query = queries[int(rrng.integers(0, len(queries)))]
                        result = service.query(query)
                        try:
                            # Re-fetch exactly the version the answer
                            # claims; it can age out of the retention
                            # ring while the writer races ahead, in
                            # which case there is nothing to verify.
                            snap = registry.snapshot_at("h", result.version)
                        except DatasetError:
                            continue
                        check(result, query, snap)
                except Exception as exc:  # pragma: no cover
                    errors.append(exc)

            writer_thread = threading.Thread(target=writer)
            readers = [
                threading.Thread(target=reader, args=(100 + i,))
                for i in range(3)
            ]
            writer_thread.start()
            for thread in readers:
                thread.start()
            writer_thread.join(timeout=60)
            for thread in readers:
                thread.join(timeout=60)
        assert not errors, errors[0]
        # The cache actually participated.
        assert service.cache is not None and service.cache.hits > 0

    def test_cached_equals_fresh_service_for_every_kind(self, rng):
        """Same query against a cached service and an uncached one:
        answers must be indistinguishable."""
        points = rng.integers(0, TOP, size=(90, DIMS)).astype(np.float64)

        def build(cache_entries):
            registry = DatasetRegistry()
            registry.register("h", points)
            from repro.serving import ServiceConfig

            return SkylineService(
                registry, config=ServiceConfig(cache_entries=cache_entries)
            )

        queries = [
            Query.full("h"),
            Query.subspace("h", [1, 2]),
            Query.kdominant("h", 2),
            Query.topk("h", 5, method="sum"),
            Query.explain("h", point=[float(TOP - 1)] * DIMS),
        ]
        with build(256) as cached_svc, build(0) as uncached_svc:
            for query in queries:
                cached_svc.query(query)  # warm
                warm = cached_svc.query(query)
                cold = uncached_svc.query(query)
                assert warm.cached and not cold.cached
                assert np.array_equal(warm.ids, cold.ids)
                assert np.array_equal(warm.points, cold.points)
                if warm.scores is not None:
                    assert np.array_equal(warm.scores, cold.scores)
