"""Pooled drift rebuilds: the RebuildPool and the registry's async
recompute path.

The contract: pooled mode changes *when* the maintainer is compacted,
never *what* any reader or writer observes.  Incremental maintenance is
exact, so the deferred swap is compaction, not correction — a pooled
registry's snapshots stay bit-identical (``state_digest()``) to an
inline registry fed the same mutations, mutations are never blocked on
a recompute, and WAL replay (recover/adopt) always runs inline.
"""

import threading

import numpy as np
import pytest

from repro.core.dataset import Dataset
from repro.core.exceptions import ConfigurationError
from repro.serving import (
    DatasetRegistry,
    DriftPolicy,
    Mutation,
    Query,
    RebuildConfig,
    RebuildPool,
    RouterConfig,
    ShardedSkylineService,
)
from repro.zorder.encoding import quantize_dataset

N, D = 400, 4


@pytest.fixture(scope="module")
def grid():
    rng = np.random.default_rng(9)
    raw = rng.random((N, D))
    snapped, codec = quantize_dataset(Dataset(raw, name="g"), bits_per_dim=10)
    return snapped.points, codec


def _registry(grid, pool, drift=None, durability_dir=None):
    points, codec = grid
    registry = DatasetRegistry(
        rebuild_pool=pool, durability_dir=durability_dir
    )
    registry.register(
        "ds",
        points.copy(),
        codec=codec,
        drift=drift or DriftPolicy(max_deletes=8),
        rebuild=RebuildConfig(pooled=pool is not None),
    )
    return registry


def _churn(registry, rounds=20, batch=4):
    for i in range(0, rounds * batch, batch):
        registry.delete("ds", list(range(i, i + batch)))


class TestRebuildPool:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            RebuildPool(num_workers=0)

    def test_submit_after_close_rejected(self):
        pool = RebuildPool(num_workers=1, executor="simulated")
        pool.close()
        assert pool.closed
        with pytest.raises(ConfigurationError):
            pool.submit(lambda: None)

    def test_stats_shape(self):
        with RebuildPool(num_workers=2, executor="simulated") as pool:
            stats = pool.stats()
        assert stats["executor"] == "simulated"
        assert stats["num_workers"] == 2
        assert stats["submitted"] == 0


class TestPooledRegistry:
    def test_digest_identical_to_inline(self, grid):
        with RebuildPool(num_workers=2, executor="simulated") as pool:
            pooled = _registry(grid, pool)
            _churn(pooled)
            pooled.flush_rebuilds()
            pooled_digest = pooled.snapshot("ds").state_digest()
            status = pooled.rebuild_status("ds")
        inline = _registry(grid, None)
        _churn(inline)
        assert pooled_digest == inline.snapshot("ds").state_digest()
        # Drift actually fired on the pool (otherwise this test is
        # vacuous) and nothing is left in flight after the flush.
        assert status["pooled_rebuilds"] >= 1
        assert not status["in_flight"]
        assert pool.stats()["failed"] == 0

    def test_mutations_not_blocked_by_inflight_rebuild(self, grid):
        with RebuildPool(num_workers=1, executor="simulated") as pool:
            registry = _registry(grid, pool)
            gate = threading.Event()
            started = threading.Event()
            original = registry._pooled_skyline_ids

            def stalled(state, points, ids):
                started.set()
                assert gate.wait(5.0)
                return original(state, points, ids)

            registry._pooled_skyline_ids = stalled
            _churn(registry, rounds=3)  # crosses the drift budget
            assert started.wait(5.0), "no pooled rebuild was requested"
            # The recompute is stalled on the pool; the writer must
            # keep accepting mutations meanwhile.
            registry.delete("ds", [200, 201])
            version_during = registry.snapshot("ds").version
            gate.set()
            registry.flush_rebuilds()
            assert registry.snapshot("ds").version >= version_during
            status = registry.rebuild_status("ds")
            # The stalled job came back to a moved version: superseded.
            assert status["pooled_superseded"] >= 1

    def test_superseded_result_changes_nothing(self, grid):
        with RebuildPool(num_workers=1, executor="simulated") as pool:
            registry = _registry(grid, pool)
            gate = threading.Event()
            started = threading.Event()
            original = registry._pooled_skyline_ids

            def stalled(state, points, ids):
                started.set()
                assert gate.wait(5.0)
                return original(state, points, ids)

            registry._pooled_skyline_ids = stalled
            _churn(registry, rounds=3)
            assert started.wait(5.0)
            registry.delete("ds", [210, 211])
            before = registry.snapshot("ds").state_digest()
            gate.set()
            registry.flush_rebuilds()
            # The flush may run a *fresh* rebuild (re-armed drift), but
            # adopting it must not change observable state.
            assert registry.snapshot("ds").state_digest() == before

    def test_recompute_failure_is_contained(self, grid):
        with RebuildPool(num_workers=1, executor="simulated") as pool:
            registry = _registry(grid, pool)

            def boom(state, points, ids):
                raise RuntimeError("injected recompute failure")

            registry._pooled_skyline_ids = boom
            _churn(registry, rounds=3)
            # Writer is unharmed; the failure is counted, not raised.
            registry.delete("ds", [220])
            deadline = 5.0
            import time as _time

            start = _time.monotonic()
            while (
                pool.stats()["failed"] == 0
                and _time.monotonic() - start < deadline
            ):
                _time.sleep(0.01)
            assert pool.stats()["failed"] >= 1
            assert not registry.rebuild_status("ds")["in_flight"]
            registry.delete("ds", [221])  # still serving mutations

    def test_adopt_replays_inline_never_on_pool(self, grid, tmp_path):
        points, codec = grid
        with RebuildPool(num_workers=1, executor="simulated") as pool:
            origin = _registry(grid, pool, durability_dir=str(tmp_path))
            _churn(origin)
            origin.flush_rebuilds()
            origin.delete("ds", [230, 231])  # WAL tail past a checkpoint
            want = origin.snapshot("ds").state_digest()
            submitted_before = pool.stats()["submitted"]
            takeover = DatasetRegistry(
                rebuild_pool=pool, durability_dir=str(tmp_path)
            )
            takeover.adopt(
                "ds",
                drift=DriftPolicy(max_deletes=8),
                rebuild=RebuildConfig(pooled=True),
            )
            assert takeover.snapshot("ds").state_digest() == want
            # Replay is deterministic and single-threaded: nothing was
            # shipped to the pool while reconstructing.
            assert pool.stats()["submitted"] == submitted_before

    def test_flush_without_pool_is_noop(self, grid):
        registry = _registry(grid, None)
        registry.flush_rebuilds()  # must not raise
        assert registry.rebuild_status("ds")["pooled"] is False


class TestPooledRouter:
    def test_sharded_pooled_identity(self, grid):
        points, codec = grid
        ids = np.arange(N, dtype=np.int64)
        drift = DriftPolicy(max_deletes=6)

        def build(pool):
            return ShardedSkylineService(
                "ds",
                points.copy(),
                ids=ids,
                codec=codec,
                config=RouterConfig(num_shards=2),
                drift=drift,
                rebuild=RebuildConfig(pooled=pool is not None),
                rebuild_pool=pool,
            )

        def drive(router):
            for i in range(0, 80, 4):
                router.mutate(
                    Mutation.delete(
                        "ds", np.arange(i, i + 4, dtype=np.int64)
                    )
                )
            return router.query(Query.full("ds"))

        with RebuildPool(num_workers=2, executor="simulated") as pool:
            with build(pool) as pooled:
                got = drive(pooled)
                pooled.flush_rebuilds()
                pooled_digests = {
                    sid: shard.registry.snapshot("ds").state_digest()
                    for sid, shard in pooled._shards.items()
                }
                status = pooled.rebuild_status()
        with build(None) as inline:
            want = drive(inline)
            inline_digests = {
                sid: shard.registry.snapshot("ds").state_digest()
                for sid, shard in inline._shards.items()
            }
        np.testing.assert_array_equal(got.ids, want.ids)
        np.testing.assert_array_equal(got.points, want.points)
        assert pooled_digests == inline_digests
        assert sum(s["pooled_rebuilds"] for s in status.values()) >= 1
