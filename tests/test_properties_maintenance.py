"""Property-based test: arbitrary insert/delete streams keep the
maintained skyline equal to the oracle's."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.maintenance import SkylineMaintainer
from repro.zorder.encoding import ZGridCodec


@st.composite
def update_stream(draw):
    """A short stream of insert/delete operations on a 3-D grid."""
    ops = []
    next_id = 0
    alive = []
    n_ops = draw(st.integers(min_value=1, max_value=8))
    for _ in range(n_ops):
        if alive and draw(st.booleans()):
            count = draw(st.integers(1, len(alive)))
            positions = draw(
                st.lists(
                    st.integers(0, len(alive) - 1),
                    min_size=count,
                    max_size=count,
                    unique=True,
                )
            )
            doomed = [alive[p] for p in positions]
            ops.append(("delete", doomed))
            alive = [a for a in alive if a not in set(doomed)]
        else:
            n = draw(st.integers(1, 12))
            rows = draw(
                st.lists(
                    st.lists(st.integers(0, 15), min_size=3, max_size=3),
                    min_size=n,
                    max_size=n,
                )
            )
            ids = list(range(next_id, next_id + n))
            ops.append(("insert", (rows, ids)))
            alive.extend(ids)
            next_id += n
    return ops


@given(update_stream())
@settings(max_examples=40, deadline=None)
def test_stream_always_matches_oracle(ops):
    codec = ZGridCodec.grid_identity(3, bits_per_dim=4)
    maintainer = SkylineMaintainer(codec)
    for kind, payload in ops:
        if kind == "insert":
            rows, ids = payload
            maintainer.insert_block(
                np.asarray(rows, dtype=float),
                np.asarray(ids, dtype=np.int64),
            )
        else:
            maintainer.delete(payload)
        maintainer.verify()
