"""Integration tests for the MapReduce runtime (word-count-ish jobs over
point blocks, plus combiner/shuffle semantics)."""

import numpy as np
import pytest

from repro.core.exceptions import MapReduceError
from repro.mapreduce.cluster import SimulatedCluster
from repro.mapreduce.job import MapReduceJob
from repro.mapreduce.runtime import MapReduceRuntime
from repro.mapreduce.types import Block


def make_blocks(n_blocks=4, per_block=10, d=2, seed=0):
    rng = np.random.default_rng(seed)
    blocks = []
    next_id = 0
    for _ in range(n_blocks):
        ids = np.arange(next_id, next_id + per_block)
        next_id += per_block
        blocks.append(Block(ids, rng.integers(0, 10, (per_block, d)).astype(float)))
    return blocks


def partition_by_parity(block, ctx):
    """Mapper: split records by id parity."""
    for parity in (0, 1):
        mask = block.ids % 2 == parity
        if mask.any():
            yield parity, block.select(mask)


def count_reducer(key, blocks, ctx):
    return sum(b.size for b in blocks)


class TestRuntime:
    def test_map_shuffle_reduce(self):
        runtime = MapReduceRuntime(SimulatedCluster(3))
        job = MapReduceJob(
            name="parity", mapper=partition_by_parity, reducer=count_reducer
        )
        result = runtime.run(job, make_blocks())
        assert result.outputs == {0: 20, 1: 20}
        assert result.counters.get("map", "input_records") == 40
        assert result.shuffle_records == 40
        assert result.elapsed_seconds > 0

    def test_combiner_cuts_shuffle(self):
        def halving_combiner(key, blocks, ctx):
            merged = Block.concat(blocks)
            return [merged.select(np.arange(merged.size // 2))]

        runtime = MapReduceRuntime(SimulatedCluster(2))
        without = runtime.run(
            MapReduceJob("no-comb", partition_by_parity, count_reducer),
            make_blocks(),
        )
        with_comb = runtime.run(
            MapReduceJob(
                "comb",
                partition_by_parity,
                count_reducer,
                combiner=halving_combiner,
            ),
            make_blocks(),
        )
        assert with_comb.shuffle_records < without.shuffle_records

    def test_reduce_output_blocks_written_to_dfs(self):
        def id_mapper(block, ctx):
            yield 0, block

        def passthrough_reducer(key, blocks, ctx):
            return Block.concat(blocks)

        runtime = MapReduceRuntime(SimulatedCluster(2))
        runtime.run(
            MapReduceJob("w", id_mapper, passthrough_reducer),
            make_blocks(),
            output_path="out",
        )
        stored = runtime.dfs.read("out")
        assert sum(b.size for b in stored) == 40

    def test_empty_input_rejected(self):
        runtime = MapReduceRuntime(SimulatedCluster(1))
        job = MapReduceJob("x", partition_by_parity, count_reducer)
        with pytest.raises(MapReduceError):
            runtime.run(job, [])

    def test_job_requires_name(self):
        with pytest.raises(MapReduceError):
            MapReduceJob("", partition_by_parity, count_reducer)

    def test_metrics_cover_both_phases(self):
        runtime = MapReduceRuntime(SimulatedCluster(2))
        job = MapReduceJob("m", partition_by_parity, count_reducer)
        result = runtime.run(job, make_blocks())
        assert result.map_metrics.phase == "m:map"
        assert result.reduce_metrics.phase == "m:reduce"
        assert result.map_metrics.total_cost > 0

    def test_cache_shared_across_jobs(self):
        runtime = MapReduceRuntime(SimulatedCluster(1))
        runtime.cache.put("threshold", 5)

        def filter_mapper(block, ctx):
            limit = ctx.cache.get("threshold")
            mask = block.ids < limit
            if mask.any():
                yield 0, block.select(mask)

        result = runtime.run(
            MapReduceJob("f", filter_mapper, count_reducer), make_blocks()
        )
        assert result.outputs[0] == 5

    def test_counters_visible_to_tasks(self):
        def counting_mapper(block, ctx):
            ctx.counters.inc("custom", "blocks")
            yield 0, block

        runtime = MapReduceRuntime(SimulatedCluster(2))
        result = runtime.run(
            MapReduceJob("c", counting_mapper, count_reducer),
            make_blocks(n_blocks=6),
        )
        assert result.counters.get("custom", "blocks") == 6

    def test_mapper_emitting_nothing(self):
        def silent_mapper(block, ctx):
            return iter(())

        runtime = MapReduceRuntime(SimulatedCluster(1))
        result = runtime.run(
            MapReduceJob("s", silent_mapper, count_reducer), make_blocks()
        )
        assert result.outputs == {}
        assert result.shuffle_records == 0

    def test_rerun_same_output_path_does_not_crash(self):
        """Regression: rerunning a job against the same DFS output path
        used to die on the DFS "path already exists" check.  Reruns now
        land in attempt-scoped paths, keeping every attempt's output."""

        def id_mapper(block, ctx):
            yield 0, block

        def passthrough_reducer(key, blocks, ctx):
            return Block.concat(blocks)

        runtime = MapReduceRuntime(SimulatedCluster(2))
        job = MapReduceJob("rerun", id_mapper, passthrough_reducer)
        first = runtime.run(job, make_blocks(), output_path="out")
        second = runtime.run(job, make_blocks(), output_path="out")
        assert first.outputs.keys() == second.outputs.keys()
        assert runtime.dfs.read("out")
        assert runtime.dfs.read("out/attempt-1")

    def test_retry_attempt_tags_phases(self):
        """attempt > 0 re-tags the job's phases so a deterministic fault
        schedule draws a fresh outcome on the whole-job retry."""
        runtime = MapReduceRuntime(SimulatedCluster(2))
        job = MapReduceJob("tagged", partition_by_parity, count_reducer)
        retried = runtime.run(job, make_blocks(), attempt=2)
        assert retried.map_metrics.phase == "tagged@2:map"
        assert retried.outputs == {0: 20, 1: 20}

    def test_attempt_carried_on_job_result(self):
        """Regression: ``run(..., attempt=k)`` used to tag the phase
        names but build the JobResult from ``job.name`` alone, so the
        retry attempt was invisible downstream."""
        runtime = MapReduceRuntime(SimulatedCluster(2))
        job = MapReduceJob("tagged", partition_by_parity, count_reducer)
        first = runtime.run(job, make_blocks())
        retried = runtime.run(job, make_blocks(), attempt=2)
        assert first.attempt == 0
        assert first.tagged_name == "tagged"
        assert retried.attempt == 2
        assert retried.tagged_name == "tagged@2"
        assert retried.fault_summary()["job.attempt"] == 2
        # counters are per-execution, not bled across attempts
        assert retried.counters.get("map", "input_records") == 40
