"""Seeded chaos: the service under injected faults.

The contract under chaos: every submitted future resolves (to an
answer or a *typed* error — nothing hangs), and no non-certified
answer is ever wrong — any result whose certificate is ``fresh`` or
``stale`` must be bit-identical to an offline recomputation against
the snapshot version it names.
"""

import threading

import numpy as np
import pytest

from repro.core.exceptions import (
    CircuitOpenError,
    DatasetError,
    DeadlineExceededError,
    OverloadedError,
    QueryPoisonedError,
    ServingError,
    WriterDownError,
)
from repro.observability.metrics import MetricsRegistry
from repro.serving import (
    DatasetRegistry,
    DriftPolicy,
    Mutation,
    Query,
    ServiceConfig,
    ServingFaultPlan,
    SkylineService,
    WorkloadSpec,
    replay_workload,
)
from repro.serving.service import _EXECUTORS

#: terminal outcomes a chaos run is allowed to produce
ALLOWED_ERRORS = (
    OverloadedError,
    DeadlineExceededError,
    QueryPoisonedError,
    WriterDownError,
    CircuitOpenError,
    DatasetError,
)


def _grid(rng, n, d=4, cells=64):
    return rng.integers(0, cells, size=(n, d)).astype(np.float64)


def _verify_result(registry, query, result):
    """Recompute the answer offline on the version the result names."""
    try:
        snapshot = registry.snapshot_at(query.dataset, result.version)
    except DatasetError:
        return  # version aged out of the retention ring
    expected = _EXECUTORS[query.kind](query, snapshot)
    np.testing.assert_array_equal(result.ids, expected.ids)
    np.testing.assert_array_equal(result.points, expected.points)


@pytest.fixture()
def chaos_setup(tmp_path):
    plan = ServingFaultPlan(
        seed=13,
        worker_crash_rate=0.05,
        writer_crash_rate=0.15,
        cache_corruption_rate=0.2,
        queue_delay_rate=0.1,
        queue_delay_seconds=0.001,
    )
    metrics = MetricsRegistry()
    registry = DatasetRegistry(
        metrics=metrics,
        keep_versions=256,
        durability_dir=str(tmp_path),
        checkpoint_every=5,
        fault_plan=plan,
    )
    rng = np.random.default_rng(99)
    registry.register("ds", _grid(rng, 300), drift=DriftPolicy.never())
    service = SkylineService(
        registry, ServiceConfig(fault_plan=plan), metrics=metrics
    )
    return plan, metrics, registry, service


class TestChaosHammer:
    def test_every_future_resolves_and_no_wrong_answer(self, chaos_setup):
        plan, metrics, registry, service = chaos_setup
        rng = np.random.default_rng(7)
        queries = [
            Query.full("ds"),
            Query.subspace("ds", [0, 1, 2]),
            Query.topk("ds", 5),
            Query.kdominant("ds", 3),
        ]
        outcomes = []
        lock = threading.Lock()

        def reader(worker_seed):
            local = np.random.default_rng(worker_seed)
            for _ in range(40):
                query = queries[int(local.integers(0, len(queries)))]
                try:
                    future = service.submit(query)
                    result = future.result(timeout=30.0)
                except ALLOWED_ERRORS as exc:
                    with lock:
                        outcomes.append(("error", type(exc).__name__))
                    continue
                with lock:
                    outcomes.append(("ok", (query, result)))

        def writer():
            next_id = 10_000
            for i in range(30):
                batch = _grid(rng, 3)
                try:
                    future = service.submit(
                        Mutation.insert(
                            "ds", batch, list(range(next_id, next_id + 3))
                        )
                    )
                    next_id += 3
                    future.result(timeout=30.0)
                except ALLOWED_ERRORS:
                    continue

        threads = [
            threading.Thread(target=reader, args=(seed,))
            for seed in (1, 2, 3)
        ] + [threading.Thread(target=writer)]
        with service:
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=60.0)
                assert not t.is_alive(), "chaos hammer hung"

        read_ok = 0
        for kind, payload in outcomes:
            if kind == "error":
                continue
            query, result = payload
            assert result.certificate is not None
            if result.certificate["kind"] in ("fresh", "stale"):
                _verify_result(registry, query, result)
                read_ok += 1
        # chaos must not have starved the run of successful reads
        assert read_ok > 50
        # the pool self-healed every injected worker crash
        crashes = metrics.counter("serving", "worker_crashes")
        respawns = metrics.counter("serving", "worker_respawns")
        assert respawns == crashes
        # admission accounting balanced out (nothing leaked a slot)
        stats = service.admission.stats()
        for klass in stats:
            assert stats[klass]["queued"] == 0
            assert stats[klass]["running"] == 0

    def test_cache_never_serves_corrupted_payload(self, tmp_path):
        plan = ServingFaultPlan(seed=5, cache_corruption_rate=1.0)
        metrics = MetricsRegistry()
        registry = DatasetRegistry(metrics=metrics, keep_versions=8)
        rng = np.random.default_rng(0)
        registry.register("ds", _grid(rng, 150), drift=DriftPolicy.never())
        with SkylineService(
            registry, ServiceConfig(fault_plan=plan), metrics=metrics
        ) as service:
            first = service.query(Query.full("ds"))
            second = service.query(Query.full("ds"))
        # every store is corrupted, so the repeat query must detect the
        # flip, miss, and recompute — never return corrupted bytes
        assert not second.cached
        np.testing.assert_array_equal(first.ids, second.ids)
        np.testing.assert_array_equal(first.points, second.points)
        assert metrics.counter("serving", "cache_corrupt") >= 1
        assert metrics.counter("serving", "cache_corrupt") == (
            metrics.counter("serving", "cache_corruption_detected")
        )  # legacy alias stays in lockstep
        assert service.cache.corruptions_detected >= 1
        # a detected corruption is its own outcome, not a cold miss:
        # the dedicated counter must not leak into the miss accounting
        assert metrics.counter("serving", "cache_misses") == (
            service.cache.misses
        )
        assert service.cache.corruptions_detected == (
            metrics.counter("serving", "cache_corrupt")
        )

    def test_poison_query_is_quarantined(self, tmp_path):
        # worker_crash_rate=1: every handling attempt kills its worker
        plan = ServingFaultPlan(seed=1, worker_crash_rate=0.999999,
                                max_requeues=1)
        registry = DatasetRegistry(keep_versions=4)
        rng = np.random.default_rng(0)
        registry.register("ds", _grid(rng, 50))
        metrics = MetricsRegistry()
        with SkylineService(
            registry, ServiceConfig(fault_plan=plan), metrics=metrics
        ) as service:
            future = service.submit(Query.full("ds"))
            with pytest.raises(QueryPoisonedError) as excinfo:
                future.result(timeout=30.0)
            assert excinfo.value.attempts == 2  # 1 try + 1 requeue
            stats = service.admission.stats()
            assert stats["read"]["dropped"] == 1
            assert stats["read"]["queued"] == 0
        assert metrics.counter("serving", "worker_crashes") == 2
        assert metrics.counter("serving", "requeued") == 1

    def test_circuit_breaker_trips_on_writer_failures(self, tmp_path):
        # writer always crashes "before" and never recovers (no
        # durability + auto-recover off) -> consecutive mutation
        # failures must trip the per-dataset breaker
        plan = ServingFaultPlan(
            seed=2,
            scripted_writer_crashes={("ds", 2): "before"},
        )
        registry = DatasetRegistry(fault_plan=plan, keep_versions=4)
        rng = np.random.default_rng(0)
        registry.register("ds", _grid(rng, 50))
        config = ServiceConfig(
            auto_recover_writer=False,
            circuit_failure_threshold=2,
            circuit_cooldown_seconds=60.0,
        )
        with SkylineService(registry, config) as service:
            for expected in (WriterDownError, WriterDownError):
                with pytest.raises(expected):
                    service.mutate(
                        Mutation.insert("ds", _grid(rng, 1), [777])
                    )
            # breaker is now open: mutations are rejected at submit
            with pytest.raises(CircuitOpenError) as excinfo:
                service.mutate(Mutation.insert("ds", _grid(rng, 1), [778]))
            assert excinfo.value.retry_after_seconds > 0
            # reads still flow, degraded to the stale snapshot
            result = service.query(Query.full("ds"))
            assert result.certificate["kind"] == "stale"
            assert result.certificate["writer_down"] is True


class TestReplayDeterminism:
    def _run(self, tmp_path, tag):
        plan = ServingFaultPlan(
            seed=21,
            worker_crash_rate=0.04,
            writer_crash_rate=0.2,
            cache_corruption_rate=0.15,
        )
        metrics = MetricsRegistry()
        registry = DatasetRegistry(
            metrics=metrics,
            keep_versions=64,
            durability_dir=str(tmp_path / tag),
            fault_plan=plan,
        )
        rng = np.random.default_rng(3)
        registry.register("ds", _grid(rng, 200), drift=DriftPolicy.never())
        with SkylineService(
            registry, ServiceConfig(fault_plan=plan), metrics=metrics
        ) as service:
            report = replay_workload(
                service,
                WorkloadSpec(
                    dataset="ds", operations=150, read_fraction=0.8,
                    seed=17, retry_attempts=4,
                ),
            )
        digest = registry.snapshot("ds").state_digest()
        return report, digest

    def test_same_seed_same_outcome(self, tmp_path):
        """The whole chaos run — faults, retries, recoveries — replays
        identically: same op counts, same failures, same final state."""
        a, digest_a = self._run(tmp_path, "a")
        b, digest_b = self._run(tmp_path, "b")
        assert (a.reads, a.writes, a.shed, a.expired) == (
            b.reads, b.writes, b.shed, b.expired
        )
        assert a.failures == b.failures
        assert a.final_version == b.final_version
        assert digest_a == digest_b

    def test_workload_stream_unchanged_by_retries(self, tmp_path):
        """Enabling retries must not perturb the seeded operation
        stream: with no faults, a retrying replay and a plain replay
        issue identical operations and land on the identical state."""
        def run(retries, tag):
            registry = DatasetRegistry(keep_versions=8)
            rng = np.random.default_rng(3)
            registry.register(
                "ds", _grid(rng, 200), drift=DriftPolicy.never()
            )
            with SkylineService(registry) as service:
                report = replay_workload(
                    service,
                    WorkloadSpec(
                        dataset="ds", operations=100, read_fraction=0.7,
                        seed=29, retry_attempts=retries,
                    ),
                )
            return report, registry.snapshot("ds").state_digest()

        plain, digest_plain = run(1, "plain")
        retried, digest_retried = run(4, "retried")
        assert plain.reads == retried.reads
        assert plain.writes == retried.writes
        assert plain.final_version == retried.final_version
        assert digest_plain == digest_retried
        assert retried.retries == 0  # nothing failed, nothing retried
