"""Unit tests for the sliding-window skyline and strategy comparison."""

import numpy as np
import pytest

from repro.core.exceptions import DatasetError, ReproError
from repro.data.synthetic import independent
from repro.maintenance import SlidingWindowSkyline
from repro.pipeline.compare import compare_plans
from repro.zorder.encoding import ZGridCodec


@pytest.fixture
def codec() -> ZGridCodec:
    return ZGridCodec.grid_identity(2, bits_per_dim=5)


class TestSlidingWindow:
    def test_window_size_validation(self, codec):
        with pytest.raises(DatasetError):
            SlidingWindowSkyline(codec, 0)

    def test_fills_up_then_slides(self, codec):
        window = SlidingWindowSkyline(codec, 3)
        for i in range(5):
            window.append([float(i), float(i)])
        assert window.size == 3
        assert window.window_ids() == (2, 3, 4)

    def test_skyline_reflects_only_window(self, codec):
        window = SlidingWindowSkyline(codec, 2)
        window.append([0.0, 0.0])    # global best...
        window.append([5.0, 4.0])
        window.append([4.0, 5.0])    # ...now expired
        points, ids = window.skyline()
        assert 0 not in ids.tolist()
        assert window.skyline_size == 2
        window.verify()

    def test_expired_dominator_resurfaces_shadowed(self, codec):
        window = SlidingWindowSkyline(codec, 2)
        window.append([1.0, 1.0])    # dominates the next point
        window.append([2.0, 2.0])
        assert window.skyline_size == 1
        window.append([9.0, 9.0])    # expires the dominator
        points, ids = window.skyline()
        assert 1 in ids.tolist()     # shadowed point resurfaces
        window.verify()

    def test_randomized_stream_matches_oracle(self, codec):
        rng = np.random.default_rng(3)
        window = SlidingWindowSkyline(codec, 25)
        for _ in range(120):
            window.append(rng.integers(0, 32, 2).astype(float))
        window.verify()
        assert window.size == 25

    def test_extend(self, codec):
        rng = np.random.default_rng(4)
        window = SlidingWindowSkyline(codec, 10)
        window.extend(rng.integers(0, 32, (30, 2)).astype(float))
        assert window.size == 10
        window.verify()


class TestComparePlans:
    def test_all_plans_agree(self):
        ds = independent(1200, 4, seed=5)
        table = compare_plans(
            ds,
            plans=("Grid+ZS", "ZDG+ZS+ZM", "KDTree+ZS", "MR-GPMRS"),
            num_groups=8,
            num_workers=4,
        )
        assert len(table) == 4
        assert len(set(table.column("skyline"))) == 1

    def test_columns_present(self):
        ds = independent(600, 3, seed=6)
        table = compare_plans(
            ds, plans=("ZHG+ZS",), num_groups=4, num_workers=2
        )
        row = table.rows[0]
        for column in ("candidates", "reducer_skew", "makespan_cost"):
            assert row[column] != ""

    def test_disagreement_raises(self, monkeypatch):
        # Force a disagreement by tampering with one report.
        from repro.pipeline import compare as compare_module

        real = compare_module.run_plan_measured
        calls = {"n": 0}

        def crooked(plan, dataset, **kwargs):
            report = real(plan, dataset, **kwargs)
            calls["n"] += 1
            if calls["n"] == 2:
                # Truncate the skyline block to fake a wrong answer.
                report.skyline = report.skyline.select(
                    np.arange(max(report.skyline.size - 1, 0))
                )
            return report

        monkeypatch.setattr(
            compare_module, "run_plan_measured", crooked
        )
        ds = independent(600, 3, seed=7)
        with pytest.raises(ReproError):
            compare_plans(
                ds, plans=("Grid+ZS", "ZHG+ZS"), num_groups=4,
                num_workers=2,
            )

    def test_cli_compare(self, capsys):
        from repro.cli import main

        code = main(
            ["compare", "-n", "600", "-d", "3", "--groups", "4",
             "--workers", "2"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Strategy comparison" in out
        assert "MR-GPMRS" in out
