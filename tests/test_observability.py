"""Tests for the unified observability layer (spans + metrics).

The acceptance contract:

* a traced run's span tree is structurally valid — every executed
  map/reduce task appears exactly once (re-executed attempts are marked
  superseded), parents resolve, durations are non-negative;
* aggregating span attributes reproduces the job ``Counters`` totals
  *exactly* (dominance tests, shuffle records/bytes), including under
  fault injection and recovery;
* the :class:`MetricsRegistry` is safe to hammer from concurrent
  ThreadedCluster tasks;
* both exports round-trip through JSONL.
"""

import threading

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.exceptions import ConfigurationError
from repro.data.synthetic import independent
from repro.mapreduce.cluster import SimulatedCluster
from repro.mapreduce.counters import Counters
from repro.mapreduce.faults import FaultPlan
from repro.mapreduce.job import MapReduceJob
from repro.mapreduce.parallel import ThreadedCluster
from repro.mapreduce.runtime import MapReduceRuntime
from repro.mapreduce.types import Block
from repro.observability import (
    NULL_SPAN,
    NULL_TRACER,
    SUPERSEDED,
    MetricsRegistry,
    Tracer,
    aggregate_trace_rows,
    load_metrics_jsonl,
    load_trace_jsonl,
    registry_from_rows,
)
from repro.pipeline.supervisor import SupervisorConfig, supervised_run

# ----------------------------------------------------------------------
# spans and tracers
# ----------------------------------------------------------------------


class TestSpan:
    def test_lifecycle_and_attributes(self):
        tracer = Tracer()
        span = tracer.start_span("work", records=3)
        span.set("bytes", 128)
        span.update(records=5, extra=True)
        assert span.duration is None
        span.finish()
        first_end = span.end
        span.finish()  # idempotent: first finish wins
        assert span.end == first_end
        assert span.duration >= 0
        assert span.attributes == {"records": 5, "bytes": 128, "extra": True}

    def test_context_manager_finishes(self):
        tracer = Tracer()
        with tracer.span("scoped") as span:
            assert span.end is None
        assert span.end is not None

    def test_parent_linkage(self):
        tracer = Tracer()
        root = tracer.start_span("root")
        child = tracer.start_span("child", parent=root)
        grandchild = tracer.start_span("leaf", parent=child)
        assert root.parent_id is None
        assert child.parent_id == root.span_id
        assert grandchild.parent_id == child.span_id
        assert tracer.children_of(root) == [child]

    def test_null_span_parent_means_root(self):
        tracer = Tracer()
        span = tracer.start_span("s", parent=NULL_SPAN)
        assert span.parent_id is None


class TestTracer:
    def finished(self, tracer):
        for span in tracer.spans:
            span.finish()
        return tracer

    def test_totals_sum_numeric_attributes(self):
        tracer = Tracer()
        tracer.start_span("a", records=3, label="x").finish()
        tracer.start_span("b", records=4, bytes=100).finish()
        totals = tracer.totals("records", "bytes", "missing")
        assert totals == {"records": 7, "bytes": 100, "missing": 0}

    def test_totals_skip_superseded_spans(self):
        tracer = Tracer()
        live = tracer.start_span("task", records=10)
        dead = tracer.start_span("task", records=10)
        dead.set(SUPERSEDED, True)
        live.finish()
        dead.finish()
        assert tracer.totals("records")["records"] == 10
        assert (
            tracer.totals("records", include_superseded=True)["records"]
            == 20
        )

    def test_totals_ignore_bools(self):
        tracer = Tracer()
        tracer.start_span("a", flag=True, n=1).finish()
        assert tracer.totals("flag", "n") == {"flag": 0, "n": 1}

    def test_validate_accepts_good_tree(self):
        tracer = Tracer()
        root = tracer.start_span("root")
        tracer.start_span("child", parent=root).finish()
        root.finish()
        tracer.validate()

    def test_validate_rejects_unfinished_span(self):
        tracer = Tracer()
        tracer.start_span("open")
        with pytest.raises(ConfigurationError, match="never finished"):
            tracer.validate()

    def test_validate_rejects_dangling_parent(self):
        tracer = Tracer()
        span = tracer.start_span("s")
        span.parent_id = 999
        span.finish()
        with pytest.raises(ConfigurationError, match="dangling"):
            tracer.validate()

    def test_jsonl_round_trip(self, tmp_path):
        tracer = Tracer()
        root = tracer.start_span("run", plan="X")
        tracer.start_span("task", parent=root, records=5).finish()
        superseded = tracer.start_span("task", parent=root, records=5)
        superseded.set(SUPERSEDED, True)
        superseded.finish()
        root.finish()
        path = str(tmp_path / "trace.jsonl")
        assert tracer.export_jsonl(path) == 3
        rows = load_trace_jsonl(path)
        assert [r["name"] for r in rows] == ["run", "task", "task"]
        assert rows[1]["parent_id"] == rows[0]["span_id"]
        assert rows[1]["duration"] >= 0
        # offline aggregation honours the superseded skip too
        assert aggregate_trace_rows(rows, "records") == {"records": 5}
        assert aggregate_trace_rows(rows, "records")["records"] == (
            tracer.totals("records")["records"]
        )


class TestNullTracer:
    def test_everything_is_a_shared_noop(self):
        span = NULL_TRACER.start_span("anything", records=1)
        assert span is NULL_SPAN
        with NULL_TRACER.span("scoped") as scoped:
            scoped.set("k", 1)
            scoped.update(x=2)
        assert span.attributes == {}
        assert NULL_TRACER.enabled is False
        assert NULL_TRACER.spans == ()
        assert NULL_TRACER.totals("records") == {"records": 0}

    def test_export_writes_nothing(self, tmp_path):
        path = tmp_path / "never.jsonl"
        assert NULL_TRACER.export_jsonl(str(path)) == 0
        assert not path.exists()


# ----------------------------------------------------------------------
# metrics registry
# ----------------------------------------------------------------------


class TestMetricsRegistry:
    def test_counters(self):
        reg = MetricsRegistry()
        reg.inc("map", "records", 3)
        reg.inc("map", "records", 2)
        reg.inc("reduce", "records")
        assert reg.counter("map", "records") == 5
        assert reg.counter("missing", "name") == 0
        assert reg.counters_as_dict() == {
            "map": {"records": 5}, "reduce": {"records": 1},
        }

    def test_counters_round_trip_with_job_counters(self):
        counters = Counters()
        counters.inc("map", "input_records", 7)
        counters.inc("shuffle", "bytes", 99)
        reg = MetricsRegistry.from_counters(counters)
        assert reg.counters_as_dict() == counters.as_dict()

    def test_timers(self):
        reg = MetricsRegistry()
        reg.record_time("phase1", 0.25)
        reg.record_time("phase1", 0.75)
        with reg.timer("phase1"):
            pass
        timers = reg.timers_as_dict()
        assert timers["phase1"]["calls"] == 3
        assert timers["phase1"]["seconds"] == pytest.approx(1.0, abs=0.1)
        assert reg.timer_seconds("missing") == 0.0

    def test_histograms(self):
        reg = MetricsRegistry()
        for value in [1, 2, 3, 4, 100]:
            reg.observe("candidates", value)
        summary = reg.histogram_summary("candidates")
        assert summary["count"] == 5
        assert summary["min"] == 1
        assert summary["max"] == 100
        assert summary["total"] == 110
        assert summary["p50"] == 3
        assert reg.histogram_summary("missing")["count"] == 0

    def test_merge_accumulates_everything(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.inc("g", "n", 1)
        b.inc("g", "n", 2)
        a.record_time("t", 0.5)
        b.record_time("t", 0.5)
        a.observe("h", 1)
        b.observe("h", 2)
        a.merge(b)
        assert a.counter("g", "n") == 3
        assert a.timers_as_dict()["t"] == {"calls": 2, "seconds": 1.0}
        assert sorted(a.histogram("h")) == [1, 2]

    def test_jsonl_round_trip(self, tmp_path):
        reg = MetricsRegistry()
        reg.inc("map", "records", 5)
        reg.record_time("total", 1.5)
        reg.observe("candidates", 3)
        reg.observe("candidates", 9)
        path = str(tmp_path / "metrics.jsonl")
        assert reg.export_jsonl(path) == 3
        rebuilt = registry_from_rows(load_metrics_jsonl(path))
        assert rebuilt.as_dict() == reg.as_dict()


class TestMetricsConcurrency:
    def test_registry_hammered_from_threaded_cluster_tasks(self):
        """Concurrent map tasks on real worker threads increment the
        same registry; no update may be lost."""
        registry = MetricsRegistry()
        n_blocks, per_block = 16, 32

        def mapper(block, ctx):
            for _ in range(block.size):
                ctx.metrics.inc("stress", "updates")
                ctx.observe("stress.block_size", block.size)
            yield 0, block

        def reducer(key, blocks, ctx):
            return sum(b.size for b in blocks)

        blocks = [
            Block(
                np.arange(i * per_block, (i + 1) * per_block),
                np.zeros((per_block, 2)),
            )
            for i in range(n_blocks)
        ]
        cluster = ThreadedCluster(8)
        cluster.observer = registry
        runtime = MapReduceRuntime(
            cluster, metrics=registry, tracer=Tracer()
        )
        result = runtime.run(
            MapReduceJob("stress", mapper, reducer), blocks
        )
        assert result.outputs == {0: n_blocks * per_block}
        assert registry.counter("stress", "updates") == n_blocks * per_block
        hist = registry.histogram_summary("stress.block_size")
        assert hist["count"] == n_blocks * per_block
        # the cluster observer path is exercised by the runtime too
        assert (
            registry.histogram_summary("cluster.task_seconds")["count"] > 0
        )

    def test_raw_registry_thread_safety(self):
        registry = MetricsRegistry()

        def worker():
            for _ in range(1000):
                registry.inc("g", "n")
                registry.observe("h", 1.0)
                registry.record_time("t", 0.001)

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert registry.counter("g", "n") == 8000
        assert registry.histogram_summary("h")["count"] == 8000
        assert registry.timers_as_dict()["t"]["calls"] == 8000


# ----------------------------------------------------------------------
# runtime span-tree properties
# ----------------------------------------------------------------------


def parity_mapper(block, ctx):
    for parity in (0, 1):
        mask = block.ids % 2 == parity
        if mask.any():
            yield parity, block.select(mask)


def count_reducer(key, blocks, ctx):
    return sum(b.size for b in blocks)


class TestSpanTreeProperties:
    @settings(max_examples=20, deadline=None)
    @given(
        n_blocks=st.integers(min_value=1, max_value=8),
        per_block=st.integers(min_value=1, max_value=12),
        workers=st.integers(min_value=1, max_value=4),
        crash=st.floats(min_value=0.0, max_value=0.3),
        seed=st.integers(min_value=0, max_value=999),
    )
    def test_every_task_appears_exactly_once(
        self, n_blocks, per_block, workers, crash, seed
    ):
        """Every executed map/reduce task appears exactly once in the
        span tree (re-executed map attempts are superseded, not
        duplicated), durations are non-negative, parents resolve."""
        tracer = Tracer()
        blocks = [
            Block(
                np.arange(i * per_block, (i + 1) * per_block),
                np.zeros((per_block, 2)),
            )
            for i in range(n_blocks)
        ]
        fault_plan = (
            FaultPlan(
                seed=seed, worker_crash_rate=crash, max_attempts=50
            )
            if crash > 0
            else None
        )
        runtime = MapReduceRuntime(
            SimulatedCluster(workers), fault_plan=fault_plan,
            tracer=tracer,
        )
        result = runtime.run(
            MapReduceJob("prop", parity_mapper, count_reducer), blocks
        )
        tracer.validate()

        map_spans = tracer.named("map.task")
        live = [
            s for s in map_spans if not s.attributes.get(SUPERSEDED)
        ]
        superseded = [
            s for s in map_spans if s.attributes.get(SUPERSEDED)
        ]
        # exactly one surviving span per input split, one superseded
        # span per re-executed attempt
        assert len(live) == n_blocks
        assert len(superseded) == result.counters.get(
            "map", "reexecuted_tasks"
        )
        assert len(tracer.named("reduce.task")) == len(result.outputs)
        for span in tracer.spans:
            assert span.duration is not None and span.duration >= 0
        # surviving map spans carry the only-successful-attempt records
        assert tracer.totals("records_in")["records_in"] == (
            n_blocks * per_block + sum(b.size for b in blocks)
        )


# ----------------------------------------------------------------------
# acceptance: trace totals == counters totals, exactly
# ----------------------------------------------------------------------


class TestTraceCountersReconciliation:
    def run_traced(self, tmp_path, **kwargs):
        ds = independent(600, 4, seed=5)
        trace_path = str(tmp_path / "trace.jsonl")
        metrics_path = str(tmp_path / "metrics.jsonl")
        report = supervised_run(
            "ZDG+ZS+ZMP", ds, num_groups=6, num_workers=4,
            supervisor=SupervisorConfig(),
            trace_out=trace_path, metrics_out=metrics_path,
            **kwargs,
        )
        return report, trace_path, metrics_path

    NAMES = {
        "dominance_point_tests": ("dominance", "point_tests"),
        "dominance_region_tests": ("dominance", "region_tests"),
        "records": ("shuffle", "records"),
        "bytes": ("shuffle", "bytes"),
    }

    def assert_reconciles(self, report, trace_path):
        report.trace.validate()
        totals = report.trace.totals(*self.NAMES)
        counters = report.merged_counters()
        for attr, (group, name) in self.NAMES.items():
            assert totals[attr] == counters.counter(group, name), attr
        # and identically from the exported file alone
        file_totals = aggregate_trace_rows(
            load_trace_jsonl(trace_path), *self.NAMES
        )
        assert file_totals == totals

    def test_clean_run_reconciles_exactly(self, tmp_path):
        report, trace_path, metrics_path = self.run_traced(tmp_path)
        self.assert_reconciles(report, trace_path)
        # the metrics export carries the same counters
        rebuilt = registry_from_rows(load_metrics_jsonl(metrics_path))
        assert rebuilt.counter("dominance", "point_tests") == (
            report.merged_counters().counter("dominance", "point_tests")
        )
        assert report.details["trace_out"] == trace_path
        assert report.details["metrics_out"] == metrics_path

    def test_faulty_run_reconciles_exactly(self, tmp_path):
        """Fault recovery re-executes map tasks; superseded spans keep
        the trace totals on the only-successful-attempt semantics."""
        report, trace_path, _ = self.run_traced(
            tmp_path,
            fault_plan=FaultPlan(
                seed=11, task_failure_rate=0.15, worker_crash_rate=0.1,
                corruption_rate=0.05, max_attempts=8,
            ),
        )
        self.assert_reconciles(report, trace_path)

    def test_metrics_capture_figure9_quantities(self, tmp_path):
        report, _, _ = self.run_traced(tmp_path)
        metrics = report.metrics()
        groups = metrics.histogram_summary("phase1.group_candidates")
        assert groups["count"] > 0
        assert groups["total"] == report.merged_counters().counter(
            "phase1", "candidates"
        )
        assert metrics.timer_seconds("total.seconds") > 0

    def test_disabled_run_has_no_trace(self):
        ds = independent(300, 3, seed=5)
        report = supervised_run(
            "ZDG+ZS", ds, num_groups=4, num_workers=2,
            supervisor=SupervisorConfig(),
        )
        assert report.trace is None
        assert report.observed_metrics is None
        # post-hoc metrics still work from the job counters
        assert report.metrics().counter("map", "input_records") > 0
