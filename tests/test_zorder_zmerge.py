"""Unit tests for Z-merge (Algorithm 4)."""

import numpy as np
import pytest

from repro.core.skyline import is_skyline_of
from repro.zorder.encoding import ZGridCodec
from repro.zorder.zbtree import OpCounter, build_zbtree
from repro.zorder.zmerge import zmerge, zmerge_all
from repro.zorder.zsearch import zsearch


@pytest.fixture
def codec() -> ZGridCodec:
    return ZGridCodec.grid_identity(3, bits_per_dim=5)


def skyline_tree(codec, points, id_offset=0):
    """Build a dominance-free tree: the skyline of `points`."""
    tree = build_zbtree(
        codec, points, ids=np.arange(len(points)) + id_offset
    )
    sky, ids = zsearch(tree)
    return build_zbtree(codec, sky, ids=ids)


class TestZMergeContract:
    def test_merge_equals_skyline_of_union(self, codec):
        rng = np.random.default_rng(1)
        for trial in range(10):
            a = rng.integers(0, 32, (150, 3)).astype(float)
            b = rng.integers(0, 32, (150, 3)).astype(float)
            ta = skyline_tree(codec, a)
            tb = skyline_tree(codec, b, id_offset=1000)
            merged = zmerge(ta, tb)
            union = np.vstack([a, b])
            assert is_skyline_of(merged.points(), union)

    def test_merge_with_empty_source(self, codec):
        a = np.array([[1.0, 1.0, 1.0]])
        ta = skyline_tree(codec, a)
        tb = build_zbtree(codec, np.empty((0, 3)))
        merged = zmerge(ta, tb)
        assert merged.size == 1

    def test_merge_into_empty_sky(self, codec):
        a = np.array([[1.0, 1.0, 1.0]])
        ta = build_zbtree(codec, np.empty((0, 3)))
        tb = skyline_tree(codec, a)
        merged = zmerge(ta, tb)
        assert merged.size == 1

    def test_source_fully_dominated_is_discarded(self, codec):
        sky = skyline_tree(codec, np.array([[0.0, 0.0, 0.0]]))
        src = skyline_tree(
            codec,
            np.array([[5.0, 5.0, 5.0], [6.0, 7.0, 8.0]]),
            id_offset=10,
        )
        merged = zmerge(sky, src)
        assert merged.size == 1
        assert merged.points().tolist() == [[0.0, 0.0, 0.0]]

    def test_sky_fully_replaced_by_source(self, codec):
        sky = skyline_tree(
            codec, np.array([[5.0, 5.0, 5.0], [7.0, 6.0, 8.0]])
        )
        src = skyline_tree(codec, np.array([[0.0, 0.0, 0.0]]), id_offset=10)
        merged = zmerge(sky, src)
        assert merged.size == 1
        assert merged.points().tolist() == [[0.0, 0.0, 0.0]]

    def test_incomparable_trees_graft(self, codec):
        # Two anti-diagonal clusters: no cross dominance at all.
        a = np.array([[0.0, 31.0, 15.0], [1.0, 30.0, 15.0]])
        b = np.array([[31.0, 0.0, 15.0], [30.0, 1.0, 15.0]])
        ta = skyline_tree(codec, a)
        tb = skyline_tree(codec, b, id_offset=10)
        merged = zmerge(ta, tb)
        assert merged.size == 4

    def test_duplicates_across_trees_survive(self, codec):
        a = np.array([[3.0, 3.0, 3.0]])
        b = np.array([[3.0, 3.0, 3.0]])
        merged = zmerge(
            skyline_tree(codec, a), skyline_tree(codec, b, id_offset=5)
        )
        assert merged.size == 2

    def test_merged_tree_is_valid_and_balanced(self, codec):
        rng = np.random.default_rng(2)
        a = rng.integers(0, 32, (200, 3)).astype(float)
        b = rng.integers(0, 32, (200, 3)).astype(float)
        merged = zmerge(
            skyline_tree(codec, a), skyline_tree(codec, b, id_offset=1000)
        )
        merged.validate()

    def test_counter_accrues(self, codec):
        rng = np.random.default_rng(3)
        a = rng.integers(0, 32, (100, 3)).astype(float)
        b = rng.integers(0, 32, (100, 3)).astype(float)
        counter = OpCounter()
        zmerge(
            skyline_tree(codec, a),
            skyline_tree(codec, b, id_offset=1000),
            counter,
        )
        assert counter.total() > 0

    def test_ids_preserved_through_merge(self, codec):
        a = np.array([[0.0, 9.0, 5.0]])
        b = np.array([[9.0, 0.0, 5.0]])
        merged = zmerge(
            build_zbtree(codec, a, ids=[111]),
            build_zbtree(codec, b, ids=[222]),
        )
        assert set(merged.ids().tolist()) == {111, 222}


class TestZMergeAll:
    def test_fold_many_trees(self, codec):
        rng = np.random.default_rng(4)
        chunks = [
            rng.integers(0, 32, (80, 3)).astype(float) for _ in range(6)
        ]
        trees = [
            skyline_tree(codec, chunk, id_offset=1000 * i)
            for i, chunk in enumerate(chunks)
        ]
        merged = zmerge_all(trees)
        assert is_skyline_of(merged.points(), np.vstack(chunks))

    def test_single_tree_passthrough(self, codec):
        tree = skyline_tree(codec, np.array([[1.0, 2.0, 3.0]]))
        assert zmerge_all([tree]) is tree

    def test_empty_iterable_rejected(self):
        with pytest.raises(ValueError):
            zmerge_all([])

    def test_fold_order_does_not_change_result(self, codec):
        rng = np.random.default_rng(5)
        chunks = [
            rng.integers(0, 16, (60, 3)).astype(float) for _ in range(4)
        ]

        def run(order):
            trees = [
                skyline_tree(codec, chunks[i], id_offset=1000 * i)
                for i in order
            ]
            pts = zmerge_all(trees).points()
            return sorted(map(tuple, pts))

        assert run([0, 1, 2, 3]) == run([3, 1, 0, 2])
