"""Unit tests for Z-merge (Algorithm 4)."""

import numpy as np
import pytest

from repro.core.skyline import is_skyline_of
from repro.zorder.encoding import ZGridCodec
from repro.zorder.zbtree import OpCounter, build_zbtree
from repro.zorder.zmerge import zmerge, zmerge_all
from repro.zorder.zsearch import zsearch


@pytest.fixture
def codec() -> ZGridCodec:
    return ZGridCodec.grid_identity(3, bits_per_dim=5)


def skyline_tree(codec, points, id_offset=0):
    """Build a dominance-free tree: the skyline of `points`."""
    tree = build_zbtree(
        codec, points, ids=np.arange(len(points)) + id_offset
    )
    sky, ids = zsearch(tree)
    return build_zbtree(codec, sky, ids=ids)


class TestZMergeContract:
    def test_merge_equals_skyline_of_union(self, codec):
        rng = np.random.default_rng(1)
        for trial in range(10):
            a = rng.integers(0, 32, (150, 3)).astype(float)
            b = rng.integers(0, 32, (150, 3)).astype(float)
            ta = skyline_tree(codec, a)
            tb = skyline_tree(codec, b, id_offset=1000)
            merged = zmerge(ta, tb)
            union = np.vstack([a, b])
            assert is_skyline_of(merged.points(), union)

    def test_merge_with_empty_source(self, codec):
        a = np.array([[1.0, 1.0, 1.0]])
        ta = skyline_tree(codec, a)
        tb = build_zbtree(codec, np.empty((0, 3)))
        merged = zmerge(ta, tb)
        assert merged.size == 1

    def test_merge_into_empty_sky(self, codec):
        a = np.array([[1.0, 1.0, 1.0]])
        ta = build_zbtree(codec, np.empty((0, 3)))
        tb = skyline_tree(codec, a)
        merged = zmerge(ta, tb)
        assert merged.size == 1

    def test_source_fully_dominated_is_discarded(self, codec):
        sky = skyline_tree(codec, np.array([[0.0, 0.0, 0.0]]))
        src = skyline_tree(
            codec,
            np.array([[5.0, 5.0, 5.0], [6.0, 7.0, 8.0]]),
            id_offset=10,
        )
        merged = zmerge(sky, src)
        assert merged.size == 1
        assert merged.points().tolist() == [[0.0, 0.0, 0.0]]

    def test_sky_fully_replaced_by_source(self, codec):
        sky = skyline_tree(
            codec, np.array([[5.0, 5.0, 5.0], [7.0, 6.0, 8.0]])
        )
        src = skyline_tree(codec, np.array([[0.0, 0.0, 0.0]]), id_offset=10)
        merged = zmerge(sky, src)
        assert merged.size == 1
        assert merged.points().tolist() == [[0.0, 0.0, 0.0]]

    def test_incomparable_trees_graft(self, codec):
        # Two anti-diagonal clusters: no cross dominance at all.
        a = np.array([[0.0, 31.0, 15.0], [1.0, 30.0, 15.0]])
        b = np.array([[31.0, 0.0, 15.0], [30.0, 1.0, 15.0]])
        ta = skyline_tree(codec, a)
        tb = skyline_tree(codec, b, id_offset=10)
        merged = zmerge(ta, tb)
        assert merged.size == 4

    def test_duplicates_across_trees_survive(self, codec):
        a = np.array([[3.0, 3.0, 3.0]])
        b = np.array([[3.0, 3.0, 3.0]])
        merged = zmerge(
            skyline_tree(codec, a), skyline_tree(codec, b, id_offset=5)
        )
        assert merged.size == 2

    def test_merged_tree_is_valid_and_balanced(self, codec):
        rng = np.random.default_rng(2)
        a = rng.integers(0, 32, (200, 3)).astype(float)
        b = rng.integers(0, 32, (200, 3)).astype(float)
        merged = zmerge(
            skyline_tree(codec, a), skyline_tree(codec, b, id_offset=1000)
        )
        merged.validate()

    def test_counter_accrues(self, codec):
        rng = np.random.default_rng(3)
        a = rng.integers(0, 32, (100, 3)).astype(float)
        b = rng.integers(0, 32, (100, 3)).astype(float)
        counter = OpCounter()
        zmerge(
            skyline_tree(codec, a),
            skyline_tree(codec, b, id_offset=1000),
            counter,
        )
        assert counter.total() > 0

    def test_ids_preserved_through_merge(self, codec):
        a = np.array([[0.0, 9.0, 5.0]])
        b = np.array([[9.0, 0.0, 5.0]])
        merged = zmerge(
            build_zbtree(codec, a, ids=[111]),
            build_zbtree(codec, b, ids=[222]),
        )
        assert set(merged.ids().tolist()) == {111, 222}


class TestZMergeAll:
    def test_fold_many_trees(self, codec):
        rng = np.random.default_rng(4)
        chunks = [
            rng.integers(0, 32, (80, 3)).astype(float) for _ in range(6)
        ]
        trees = [
            skyline_tree(codec, chunk, id_offset=1000 * i)
            for i, chunk in enumerate(chunks)
        ]
        merged = zmerge_all(trees)
        assert is_skyline_of(merged.points(), np.vstack(chunks))

    def test_single_tree_passthrough(self, codec):
        tree = skyline_tree(codec, np.array([[1.0, 2.0, 3.0]]))
        assert zmerge_all([tree]) is tree

    def test_empty_iterable_rejected(self):
        with pytest.raises(ValueError):
            zmerge_all([])

    def test_fold_order_does_not_change_result(self, codec):
        rng = np.random.default_rng(5)
        chunks = [
            rng.integers(0, 16, (60, 3)).astype(float) for _ in range(4)
        ]

        def run(order):
            trees = [
                skyline_tree(codec, chunks[i], id_offset=1000 * i)
                for i in order
            ]
            pts = zmerge_all(trees).points()
            return sorted(map(tuple, pts))

        assert run([0, 1, 2, 3]) == run([3, 1, 0, 2])


class TestZMergeAllOwnership:
    """The consuming default vs ``consume=False``.

    The default fold mutates its first tree and grafts nodes from the
    rest — fine for throwaway per-run trees, a latent double-use hazard
    for long-lived ones (the sharded router folds retained per-shard
    snapshot trees on every cache miss).
    """

    def _chunks(self, seed=11, k=4):
        rng = np.random.default_rng(seed)
        return [
            rng.integers(0, 32, (70, 3)).astype(float) for _ in range(k)
        ]

    def test_consuming_default_mutates_inputs(self, codec):
        # Regression pin for the documented hazard: after a default
        # fold, the input trees are NOT safe to reuse.  If this test
        # ever fails, the consuming default has changed and the
        # ownership docs (and the router's consume=False) are stale.
        chunks = self._chunks()
        trees = [
            skyline_tree(codec, chunk, id_offset=1000 * i)
            for i, chunk in enumerate(chunks)
        ]
        before = [sorted(tree.ids().tolist()) for tree in trees]
        zmerge_all(trees)
        after = [sorted(tree.ids().tolist()) for tree in trees]
        assert before != after, (
            "consuming zmerge_all no longer mutates its inputs — "
            "update the Ownership docs in repro.zorder.zmerge"
        )

    def test_consume_false_leaves_inputs_intact(self, codec):
        chunks = self._chunks(seed=12)
        trees = [
            skyline_tree(codec, chunk, id_offset=1000 * i)
            for i, chunk in enumerate(chunks)
        ]
        before = [
            (sorted(tree.ids().tolist()),
             sorted(map(tuple, tree.points())))
            for tree in trees
        ]
        merged = zmerge_all(trees, consume=False)
        assert is_skyline_of(merged.points(), np.vstack(chunks))
        after = [
            (sorted(tree.ids().tolist()),
             sorted(map(tuple, tree.points())))
            for tree in trees
        ]
        assert before == after

    def test_double_fold_is_stable(self, codec):
        # The router's exact usage pattern: fold the same retained
        # trees twice (two cache misses over an unchanged shard) and
        # expect byte-identical answers both times, matching the
        # consuming oracle on fresh trees.
        chunks = self._chunks(seed=13)

        def fresh():
            return [
                skyline_tree(codec, chunk, id_offset=1000 * i)
                for i, chunk in enumerate(chunks)
            ]

        def canon(tree):
            ids = tree.ids()
            order = np.argsort(ids, kind="stable")
            return ids[order].tolist(), tree.points()[order].tolist()

        retained = fresh()
        first = canon(zmerge_all(retained, consume=False))
        second = canon(zmerge_all(retained, consume=False))
        oracle = canon(zmerge_all(fresh()))
        assert first == second == oracle

    def test_consume_false_single_tree_is_not_passthrough(self, codec):
        # A lone tree must still come back as an independent copy —
        # callers are promised the result is theirs to consume.
        tree = skyline_tree(codec, np.array([[1.0, 2.0, 3.0]]))
        merged = zmerge_all([tree], consume=False)
        assert merged is not tree
        assert merged.ids().tolist() == tree.ids().tolist()
