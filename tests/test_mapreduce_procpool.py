"""Tests for the process-pool executor and its remote-dispatch plumbing.

The acceptance contract:

* :class:`ProcessPoolCluster` is a drop-in for the other executors —
  same task-order results, same ledgers, same deterministic fault
  accounting, same error surface;
* everything that crosses the pool boundary (tasks, blocks, counters,
  fault plans, rules, codecs, job callables) pickles without loss;
* shared-memory Block transport round-trips arrays bit-exactly;
* the full engine produces a bit-identical skyline and identical
  counters under ``executor="procpool"``, and kernel stats measured in
  worker processes are merged back (the ``KernelStats.__reduce__``
  blind spot);
* a checkpointed run interrupted under one executor resumes onto a
  process pool.
"""

import pickle
from dataclasses import dataclass

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import run_plan
from repro.core.exceptions import (
    ConfigurationError,
    FaultInjectionError,
    MapReduceError,
)
from repro.data.synthetic import anticorrelated, independent
from repro.mapreduce.cache import DistributedCache
from repro.mapreduce.cluster import LostTask
from repro.mapreduce.counters import Counters
from repro.mapreduce.faults import FaultPlan
from repro.mapreduce.procpool import ProcessPoolCluster, worker_cache
from repro.mapreduce.shm import (
    MIN_SHM_BYTES,
    ShmBlockRef,
    pack_blocks,
    resolve_block,
)
from repro.mapreduce.types import Block
from repro.pipeline.driver import EngineConfig, RunRequest, execute
from repro.pipeline.phase1 import Phase1Combiner, Phase1Mapper, Phase1Reducer
from repro.pipeline.phase2 import AlgorithmReducer, PartialMergeMapper
from repro.zorder.encoding import quantize_dataset
from repro.zorder.kernel import KernelStats


# ----------------------------------------------------------------------
# picklable task payloads (pool workers re-import this module)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ValueTask:
    value: object
    cost: int = 1

    def __call__(self):
        return self.value, self.cost


class BoomTask:
    def __call__(self):
        raise ValueError("kaput")


@dataclass(frozen=True)
class CacheReadTask:
    key: str

    def __call__(self):
        return worker_cache().get(self.key), 1


@pytest.fixture
def cluster():
    made = []

    def make(*args, **kwargs):
        c = ProcessPoolCluster(*args, **kwargs)
        made.append(c)
        return c

    yield make
    for c in made:
        c.shutdown()


class TestProcessPoolCluster:
    def test_results_in_task_order(self, cluster):
        c = cluster(4)
        results = c.run_round("p", [ValueTask(i * 10) for i in range(12)])
        assert results == [i * 10 for i in range(12)]

    def test_ledgers_attribute_work(self, cluster):
        c = cluster(3)
        c.run_round("p", [ValueTask(None, cost=7) for _ in range(6)])
        metrics = c.metrics_for("p")
        assert [w.tasks for w in metrics.ledgers] == [2, 2, 2]
        assert metrics.total_cost == 42

    def test_placement_validation(self, cluster):
        c = cluster(2)
        with pytest.raises(MapReduceError):
            c.run_round("p", [ValueTask(1)], placement=[7])
        with pytest.raises(MapReduceError):
            c.run_round("p", [ValueTask(1)], placement=[0, 1])

    def test_task_exception_carries_context_across_pickle(self, cluster):
        c = cluster(2)
        with pytest.raises(MapReduceError) as excinfo:
            c.run_round("p", [BoomTask()])
        message = str(excinfo.value)
        # ``__cause__`` cannot survive the result pipe, so the worker
        # folds the original exception into the message instead.
        assert "task 0" in message and "'p'" in message
        assert "ValueError" in message and "kaput" in message

    def test_task_exception_does_not_abort_worker_queue(self, cluster):
        # Tasks 0 and 2 share worker 0; task 0 raising must not stop
        # task 2 from running (per-task isolation inside the drain).
        c = cluster(2)
        with pytest.raises(MapReduceError):
            c.run_round(
                "p", [BoomTask(), ValueTask(1), ValueTask(2)],
                placement=[0, 1, 0],
            )
        metrics = c.metrics_for("p")
        assert metrics.ledgers[0].tasks == 1  # the survivor on worker 0

    def test_empty_round(self, cluster):
        c = cluster(2)
        assert c.run_round("p", []) == []
        assert c.metrics_for("p").makespan_cost == 0

    def test_scripted_retries_match_simulated_accounting(self, cluster):
        plan = FaultPlan(
            scripted_failures={("p", 0): 2, ("p", 2): 1},
            max_attempts=4,
            backoff_base=0.01,
        )
        c = cluster(2, fault_plan=plan)
        results = c.run_round("p", [ValueTask(i) for i in range(4)])
        assert results == [0, 1, 2, 3]
        metrics = c.metrics_for("p")
        assert metrics.failed_attempts == 3
        assert metrics.backoff_seconds == pytest.approx(0.04)
        # Backoff is charged to the worker that owned the task.
        assert metrics.ledgers[0].failed_attempts == 3

    def test_retry_budget_exhaustion_raises(self, cluster):
        plan = FaultPlan(scripted_failures={("p", 0): 99}, max_attempts=3)
        c = cluster(2, fault_plan=plan)
        with pytest.raises(FaultInjectionError) as excinfo:
            c.run_round("p", [ValueTask(1)])
        assert "exhausted 3 attempts" in str(excinfo.value)

    def test_lenient_round_loses_the_task_instead(self, cluster):
        plan = FaultPlan(scripted_failures={("p", 1): 99}, max_attempts=2)
        c = cluster(2, fault_plan=plan)
        results = c.run_round(
            "p", [ValueTask(0), ValueTask(1)], lenient=True
        )
        assert results[0] == 0
        assert isinstance(results[1], LostTask)
        assert results[1].index == 1

    def test_straggler_knobs_rejected(self, cluster):
        for attr, value in (
            ("slowdown_factors", [2.0, 1.0]),
            ("failed_workers", {0}),
            ("speculative", True),
        ):
            c = cluster(2)
            setattr(c, attr, value)
            with pytest.raises(ConfigurationError):
                c.run_round("p", [ValueTask(1)])

    def test_published_cache_reaches_workers(self, cluster):
        cache = DistributedCache()
        cache.put("greeting", {"text": "hello"})
        c = cluster(2)
        c.publish_cache(cache)
        results = c.run_round("p", [CacheReadTask("greeting")] * 3)
        assert results == [{"text": "hello"}] * 3

    def test_republishing_identical_cache_keeps_the_pool(self, cluster):
        cache = DistributedCache()
        cache.put("k", 1)
        c = cluster(2)
        c.publish_cache(cache)
        c.run_round("p", [ValueTask(1)])
        pool = c._pool
        assert pool is not None
        c.publish_cache(cache)  # identical bytes: no-op
        assert c._pool is pool
        cache.put("k2", 2)
        c.publish_cache(cache)  # new bytes: pool retired
        assert c._pool is None

    def test_shutdown_is_idempotent(self, cluster):
        c = cluster(2)
        c.run_round("p", [ValueTask(1)])
        c.shutdown()
        c.shutdown()
        # A fresh round after shutdown just builds a new pool.
        assert c.run_round("p", [ValueTask(5)]) == [5]


# ----------------------------------------------------------------------
# shared-memory transport
# ----------------------------------------------------------------------
def _blocks(n_points, d=4, with_z=True, seed=0):
    rng = np.random.default_rng(seed)
    ids = np.arange(n_points, dtype=np.int64)
    points = rng.random((n_points, d))
    z = (
        rng.integers(0, 2**40, n_points).astype(np.uint64)
        if with_z
        else None
    )
    return Block(ids, points, zaddresses=z)


class TestShmTransport:
    def test_small_rounds_stay_inline(self):
        blocks = [_blocks(8), _blocks(8, seed=1)]
        segment, shipped = pack_blocks(blocks)
        assert segment is None
        assert shipped == blocks

    def test_pack_resolve_round_trip_is_bit_exact(self):
        blocks = [
            _blocks(3000, seed=0),
            _blocks(2000, with_z=False, seed=1),
        ]
        segment, refs = pack_blocks(blocks, min_bytes=1)
        assert segment is not None
        try:
            for original, ref in zip(blocks, refs):
                assert isinstance(ref, ShmBlockRef)
                resolved = resolve_block(pickle.loads(pickle.dumps(ref)))
                assert np.array_equal(resolved.ids, original.ids)
                assert np.array_equal(resolved.points, original.points)
                if original.zaddresses is None:
                    assert resolved.zaddresses is None
                else:
                    assert np.array_equal(
                        resolved.zaddresses, original.zaddresses
                    )
                # Views are read-only: a worker cannot corrupt the
                # coordinator's round payload.
                with pytest.raises(ValueError):
                    resolved.points[0, 0] = -1.0
                del resolved
        finally:
            segment.close()

    def test_offsets_are_aligned(self):
        segment, refs = pack_blocks([_blocks(1000)], min_bytes=1)
        try:
            for array_ref in (refs[0].ids, refs[0].points,
                              refs[0].zaddresses):
                assert array_ref.offset % 64 == 0
        finally:
            segment.close()

    def test_threshold_respects_total_payload(self):
        # Just under / just over the configured floor.
        big = _blocks(MIN_SHM_BYTES // 8, with_z=False, d=1)
        segment, _ = pack_blocks([big])
        assert segment is not None
        segment.close()
        small = _blocks(16, with_z=False, d=1)
        segment, _ = pack_blocks([small])
        assert segment is None

    def test_plain_blocks_pass_resolve_through(self):
        block = _blocks(8)
        assert resolve_block(block) is block


# ----------------------------------------------------------------------
# pickle-ability audit: everything that crosses the pool boundary
# ----------------------------------------------------------------------
class TestPoolBoundaryPickling:
    def test_counters_round_trip(self):
        counters = Counters()
        counters.inc("map", "input_records", 41)
        counters.inc("shuffle", "bytes", 7)
        clone = pickle.loads(pickle.dumps(counters))
        assert clone.as_dict() == counters.as_dict()
        clone.inc("map", "input_records")  # still usable (lock restored)
        assert clone.get("map", "input_records") == 42

    @given(
        st.dictionaries(
            st.sampled_from(["map", "reduce", "shuffle"]),
            st.dictionaries(
                st.sampled_from(["a", "b", "c"]),
                st.integers(min_value=0, max_value=10**9),
                max_size=3,
            ),
            max_size=3,
        )
    )
    @settings(max_examples=25, deadline=None)
    def test_counters_round_trip_property(self, payload):
        counters = Counters()
        counters.update_from_dict(payload)
        clone = pickle.loads(pickle.dumps(counters))
        assert clone.as_dict() == counters.as_dict()

    def test_fault_plan_round_trip_preserves_schedule(self):
        plan = FaultPlan(
            seed=17, task_failure_rate=0.3, worker_crash_rate=0.2,
            corruption_rate=0.1, max_attempts=5, backoff_base=0.25,
        )
        clone = pickle.loads(pickle.dumps(plan))
        draws = [
            (phase, index, attempt)
            for phase in ("a:map", "b:reduce")
            for index in range(8)
            for attempt in range(1, 4)
        ]
        assert [clone.task_attempt_fails(*d) for d in draws] == [
            plan.task_attempt_fails(*d) for d in draws
        ]
        assert clone.backoff_seconds(3) == plan.backoff_seconds(3)

    def test_block_round_trip(self):
        block = _blocks(64)
        clone = pickle.loads(pickle.dumps(block))
        assert clone.checksum() == block.checksum()
        assert np.array_equal(clone.zaddresses, block.zaddresses)

    def test_job_callables_round_trip(self):
        for obj in (
            Phase1Mapper(prefilter=True),
            Phase1Combiner(local_algorithm="ZSearch"),
            Phase1Reducer(local_algorithm="SkylineBasic"),
            PartialMergeMapper(ways=4),
            AlgorithmReducer(algorithm="ZSearch"),
        ):
            assert pickle.loads(pickle.dumps(obj)) == obj

    def test_kernel_stats_pickle_empty_by_design(self):
        # Cache payloads must be byte-stable across runs, so a codec's
        # embedded stats never travel; deltas ride RemoteTaskResult and
        # are merged back explicitly.
        stats = KernelStats()
        stats.merge_snapshot({"encode_fast_calls": 9})
        clone = pickle.loads(pickle.dumps(stats))
        assert clone.snapshot() == {}
        clone.merge_snapshot(stats.snapshot())
        assert clone.snapshot() == {"encode_fast_calls": 9}

    def test_preprocess_artifacts_round_trip(self):
        from repro.pipeline.plans import parse_plan
        from repro.pipeline.preprocess import preprocess

        ds = independent(600, 4, seed=5)
        snapped, codec = quantize_dataset(ds, bits_per_dim=12)
        plan = parse_plan("ZDG+ZS+ZM")
        pre = preprocess(snapped, codec, plan.partitioner, 6, seed=5)

        rule = pickle.loads(pickle.dumps(pre.rule))
        assert np.array_equal(
            rule.assign_groups(snapped.points, snapped.ids),
            pre.rule.assign_groups(snapped.points, snapped.ids),
        )
        codec_clone = pickle.loads(pickle.dumps(pre.codec))
        assert np.array_equal(
            codec_clone.encode_grid_batch(snapped.points[:100]),
            pre.codec.encode_grid_batch(snapped.points[:100]),
        )

    def test_zbtree_pickle_is_stable_across_cache_warmup(self):
        # The derived per-node child-minpts cache must not leak into the
        # pickle stream: warmed and cold trees publish identical cache
        # bytes (the DistributedCache idempotence + pool-reuse checks
        # compare exactly these).
        from repro.zorder.zbtree import build_zbtree

        ds = independent(500, 4, seed=7)
        snapped, codec = quantize_dataset(ds, bits_per_dim=12)
        sky = snapped.points[:80]
        tree = build_zbtree(codec, sky)
        probe = snapped.points[:200]
        cold = pickle.dumps(tree, protocol=pickle.HIGHEST_PROTOCOL)
        tree.dominated_mask_tree(probe)
        warm = pickle.dumps(tree, protocol=pickle.HIGHEST_PROTOCOL)
        assert cold == warm
        clone = pickle.loads(warm)
        assert np.array_equal(
            clone.dominated_mask_tree(probe),
            tree.dominated_mask_tree(probe),
        )


# ----------------------------------------------------------------------
# full-engine equivalence
# ----------------------------------------------------------------------
PLANS = [
    f"{part}+{local}"
    for part in ("Naive-Z", "ZHG", "ZDG")
    for local in ("SB", "ZS")
] + ["ZDG+ZS+ZM", "ZDG+ZS+ZMP"]


class TestProcessPoolEngine:
    @pytest.fixture(scope="class")
    def dataset(self):
        return anticorrelated(900, 4, seed=2)

    @pytest.fixture(scope="class")
    def simulated_runs(self, dataset):
        kwargs = dict(num_groups=8, num_workers=4, seed=0)
        return {
            plan: run_plan(plan, dataset, **kwargs) for plan in PLANS
        }

    @pytest.mark.parametrize("plan", PLANS)
    def test_skyline_bit_identical_to_simulated(
        self, dataset, simulated_runs, plan
    ):
        pooled = run_plan(
            plan, dataset, num_groups=8, num_workers=4, seed=0,
            executor="procpool",
        )
        base = simulated_runs[plan]
        assert sorted(pooled.skyline.ids.tolist()) == sorted(
            base.skyline.ids.tolist()
        )
        assert np.array_equal(
            pooled.skyline.points[np.argsort(pooled.skyline.ids)],
            base.skyline.points[np.argsort(base.skyline.ids)],
        )
        assert pooled.details["executor"] == "procpool"

    def test_counters_and_cost_identical_to_simulated(
        self, dataset, simulated_runs
    ):
        base = simulated_runs["ZDG+ZS+ZM"]
        pooled = run_plan(
            "ZDG+ZS+ZM", dataset, num_groups=8, num_workers=4, seed=0,
            executor="procpool",
        )
        assert (
            pooled.phase1.counters.as_dict()
            == base.phase1.counters.as_dict()
        )
        assert (
            pooled.phase2.counters.as_dict()
            == base.phase2.counters.as_dict()
        )
        # The deterministic cost model is executor-independent.
        assert pooled.total_cost == base.total_cost

    def test_kernel_stats_survive_the_process_boundary(self, dataset):
        # Regression: ``KernelStats.__reduce__`` pickles empty, so
        # before the explicit delta carry every encode/decode done in a
        # worker process was silently dropped from the report.
        pooled = run_plan(
            "ZDG+ZS+ZM", dataset, num_groups=8, num_workers=4, seed=0,
            executor="procpool",
        )
        stats = pooled.details["kernel_stats"]
        assert sum(stats.values()) > 0
        base = run_plan(
            "ZDG+ZS+ZM", dataset, num_groups=8, num_workers=4, seed=0
        )
        assert stats == base.details["kernel_stats"]

    def test_stateless_execute_boundary(self, dataset):
        cfg = EngineConfig.from_plan_string(
            "ZDG+ZS+ZM", num_groups=8, num_workers=4, seed=0,
            executor="procpool",
        )
        result = execute(RunRequest(dataset, cfg))
        assert result.executor == "procpool"
        assert result.skyline.size > 0
        assert sum(result.kernel_stats.values()) > 0
        assert result.counters  # merged across phases

    def test_request_rejects_live_tracer(self, dataset):
        from repro.observability import Tracer

        cfg = EngineConfig.from_plan_string("ZHG+ZS")
        cfg.tracer = Tracer()
        with pytest.raises(ConfigurationError):
            RunRequest(dataset, cfg)

    def test_engine_run_reaps_its_pool(self, dataset):
        import multiprocessing

        run_plan(
            "ZHG+ZS", dataset, num_groups=6, num_workers=3, seed=0,
            executor="procpool",
        )
        workers = [
            p for p in multiprocessing.active_children()
            if "Process" in type(p).__name__
        ]
        assert workers == []


class TestSupervisedResumeOntoPool:
    def test_checkpoint_resumes_onto_a_process_pool(self, tmp_path):
        """A run interrupted under the simulated executor resumes under
        a process pool to the bit-identical skyline."""
        from repro.pipeline.supervisor import (
            SupervisorConfig,
            supervised_run,
        )

        ds = independent(240, 3, seed=3)
        base = run_plan("ZDG+ZS", ds, num_groups=5, num_workers=3)
        kill_final = FaultPlan(
            scripted_failures={("phase2-merge:reduce", 0): 99},
            max_attempts=2,
        )
        with pytest.raises(FaultInjectionError):
            supervised_run(
                "ZDG+ZS", ds, num_groups=5, num_workers=3,
                executor="simulated", fault_plan=kill_final,
                supervisor=SupervisorConfig(
                    checkpoint_dir=str(tmp_path), max_stage_retries=0
                ),
            )
        rep = supervised_run(
            "ZDG+ZS", ds, num_groups=5, num_workers=3,
            executor="procpool",
            supervisor=SupervisorConfig(
                checkpoint_dir=str(tmp_path), resume=True
            ),
        )
        assert list(rep.skyline.ids) == list(base.skyline.ids)
        assert "phase1" in rep.details["resumed_stages"]
