"""Unit and integration tests for the threaded cluster executor."""

import numpy as np
import pytest

from repro import run_plan
from repro.core.exceptions import ConfigurationError, MapReduceError
from repro.core.skyline import is_skyline_of
from repro.data.synthetic import anticorrelated
from repro.mapreduce.parallel import ThreadedCluster
from repro.zorder.encoding import quantize_dataset


class TestThreadedCluster:
    def test_results_in_task_order(self):
        cluster = ThreadedCluster(4)
        results = cluster.run_round(
            "p", [lambda i=i: (i * 10, 1) for i in range(12)]
        )
        assert results == [i * 10 for i in range(12)]

    def test_ledgers_attribute_work(self):
        cluster = ThreadedCluster(3)
        cluster.run_round("p", [lambda: (None, 7) for _ in range(6)])
        metrics = cluster.metrics_for("p")
        assert [w.tasks for w in metrics.ledgers] == [2, 2, 2]
        assert metrics.total_cost == 42

    def test_explicit_placement(self):
        cluster = ThreadedCluster(3)
        cluster.run_round(
            "p", [lambda: (1, 5), lambda: (2, 5)], placement=[1, 1]
        )
        metrics = cluster.metrics_for("p")
        assert metrics.ledgers[1].tasks == 2
        assert metrics.ledgers[0].tasks == 0

    def test_placement_validation(self):
        cluster = ThreadedCluster(2)
        with pytest.raises(MapReduceError):
            cluster.run_round("p", [lambda: (1, 1)], placement=[7])
        with pytest.raises(MapReduceError):
            cluster.run_round("p", [lambda: (1, 1)], placement=[0, 1])

    def test_task_exception_propagates(self):
        cluster = ThreadedCluster(2)

        def boom():
            raise ValueError("kaput")

        with pytest.raises(ValueError):
            cluster.run_round("p", [boom])

    def test_empty_round(self):
        cluster = ThreadedCluster(2)
        assert cluster.run_round("p", []) == []
        assert cluster.metrics_for("p").makespan_cost == 0


class TestThreadedEngine:
    def test_same_skyline_as_simulated(self):
        ds = anticorrelated(3000, 4, seed=13)
        snapped, _ = quantize_dataset(ds, bits_per_dim=12)
        sequential = run_plan(
            "ZDG+ZS+ZM", ds, num_groups=8, num_workers=4, seed=0
        )
        threaded = run_plan(
            "ZDG+ZS+ZM", ds, num_groups=8, num_workers=4, seed=0,
            executor="threaded",
        )
        assert is_skyline_of(threaded.skyline.points, snapped.points)
        assert sorted(threaded.skyline.ids.tolist()) == sorted(
            sequential.skyline.ids.tolist()
        )
        # The deterministic cost model is executor-independent.
        assert threaded.total_cost == sequential.total_cost

    def test_executor_validation(self):
        ds = anticorrelated(200, 3, seed=1)
        with pytest.raises(ConfigurationError):
            run_plan("ZHG+ZS", ds, executor="gpu")
        with pytest.raises(ConfigurationError):
            run_plan(
                "ZHG+ZS", ds, executor="threaded",
                slowdown_factors=[1.0] * 8,
            )
        with pytest.raises(ConfigurationError):
            run_plan("ZHG+ZS", ds, executor="threaded", speculative=True)
