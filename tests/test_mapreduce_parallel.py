"""Unit and integration tests for the threaded cluster executor."""

import pytest

from repro import run_plan
from repro.core.exceptions import ConfigurationError, MapReduceError
from repro.core.skyline import is_skyline_of
from repro.data.synthetic import anticorrelated
from repro.mapreduce.parallel import ThreadedCluster
from repro.zorder.encoding import quantize_dataset


class TestThreadedCluster:
    def test_results_in_task_order(self):
        cluster = ThreadedCluster(4)
        results = cluster.run_round(
            "p", [lambda i=i: (i * 10, 1) for i in range(12)]
        )
        assert results == [i * 10 for i in range(12)]

    def test_ledgers_attribute_work(self):
        cluster = ThreadedCluster(3)
        cluster.run_round("p", [lambda: (None, 7) for _ in range(6)])
        metrics = cluster.metrics_for("p")
        assert [w.tasks for w in metrics.ledgers] == [2, 2, 2]
        assert metrics.total_cost == 42

    def test_explicit_placement(self):
        cluster = ThreadedCluster(3)
        cluster.run_round(
            "p", [lambda: (1, 5), lambda: (2, 5)], placement=[1, 1]
        )
        metrics = cluster.metrics_for("p")
        assert metrics.ledgers[1].tasks == 2
        assert metrics.ledgers[0].tasks == 0

    def test_placement_validation(self):
        cluster = ThreadedCluster(2)
        with pytest.raises(MapReduceError):
            cluster.run_round("p", [lambda: (1, 1)], placement=[7])
        with pytest.raises(MapReduceError):
            cluster.run_round("p", [lambda: (1, 1)], placement=[0, 1])

    def test_task_exception_wrapped_with_context(self):
        cluster = ThreadedCluster(2)

        def boom():
            raise ValueError("kaput")

        with pytest.raises(MapReduceError) as excinfo:
            cluster.run_round("p", [boom])
        message = str(excinfo.value)
        assert "task 0" in message and "'p'" in message
        assert isinstance(excinfo.value.__cause__, ValueError)

    def test_task_exception_does_not_abort_worker_queue(self):
        # Tasks 0 and 2 share worker 0; task 0 raising must not stop
        # task 2 from running (per-task isolation).
        cluster = ThreadedCluster(2)
        ran = []

        def boom():
            raise ValueError("kaput")

        def ok(i):
            def task():
                ran.append(i)
                return i, 1

            return task

        with pytest.raises(MapReduceError):
            cluster.run_round(
                "p", [boom, ok(1), ok(2)], placement=[0, 1, 0]
            )
        assert sorted(ran) == [1, 2]
        metrics = cluster.metrics_for("p")
        assert metrics.ledgers[0].tasks == 1  # the survivor on worker 0

    def test_first_failing_task_wins(self):
        cluster = ThreadedCluster(2)

        def boom(i):
            def task():
                raise ValueError(f"kaput-{i}")

            return task

        with pytest.raises(MapReduceError) as excinfo:
            cluster.run_round("p", [boom(0), boom(1)])
        assert "task 0" in str(excinfo.value)

    def test_empty_round(self):
        cluster = ThreadedCluster(2)
        assert cluster.run_round("p", []) == []
        assert cluster.metrics_for("p").makespan_cost == 0


class TestCountersConcurrency:
    def test_inc_hammered_from_worker_threads(self):
        from repro.mapreduce.counters import Counters

        counters = Counters()
        increments_per_task, tasks_n = 500, 32

        def make_task(i):
            def task():
                for _ in range(increments_per_task):
                    counters.inc("hammer", "n")
                return i, 1

            return task

        cluster = ThreadedCluster(8)
        results = cluster.run_round(
            "p", [make_task(i) for i in range(tasks_n)]
        )
        assert results == list(range(tasks_n))
        assert counters.get("hammer", "n") == increments_per_task * tasks_n

    def test_merge_hammered_from_worker_threads(self):
        from repro.mapreduce.counters import Counters

        shared = Counters()

        def make_task(i):
            def task():
                local = Counters()
                for _ in range(200):
                    local.inc("g", "n")
                    local.inc("g", f"task_{i}")
                shared.merge(local)
                return i, 1

            return task

        cluster = ThreadedCluster(8)
        cluster.run_round("p", [make_task(i) for i in range(24)])
        assert shared.get("g", "n") == 200 * 24
        for i in range(24):
            assert shared.get("g", f"task_{i}") == 200


class TestThreadedEngine:
    def test_same_skyline_as_simulated(self):
        ds = anticorrelated(3000, 4, seed=13)
        snapped, _ = quantize_dataset(ds, bits_per_dim=12)
        sequential = run_plan(
            "ZDG+ZS+ZM", ds, num_groups=8, num_workers=4, seed=0
        )
        threaded = run_plan(
            "ZDG+ZS+ZM", ds, num_groups=8, num_workers=4, seed=0,
            executor="threaded",
        )
        assert is_skyline_of(threaded.skyline.points, snapped.points)
        assert sorted(threaded.skyline.ids.tolist()) == sorted(
            sequential.skyline.ids.tolist()
        )
        # The deterministic cost model is executor-independent.
        assert threaded.total_cost == sequential.total_cost

    def test_executor_validation(self):
        ds = anticorrelated(200, 3, seed=1)
        with pytest.raises(ConfigurationError):
            run_plan("ZHG+ZS", ds, executor="gpu")
        with pytest.raises(ConfigurationError):
            run_plan(
                "ZHG+ZS", ds, executor="threaded",
                slowdown_factors=[1.0] * 8,
            )
        with pytest.raises(ConfigurationError):
            run_plan("ZHG+ZS", ds, executor="threaded", speculative=True)
