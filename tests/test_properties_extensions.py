"""Property-based tests for the query extensions."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.point import dominates
from repro.core.skyline import skyline_indices_oracle
from repro.extensions import (
    k_dominant_skyline,
    k_dominates,
    subspace_skyline,
    why_not,
)


@st.composite
def grid_points(draw, max_points=40, max_dims=4, top=8):
    d = draw(st.integers(min_value=1, max_value=max_dims))
    n = draw(st.integers(min_value=1, max_value=max_points))
    rows = draw(
        st.lists(
            st.lists(
                st.integers(min_value=0, max_value=top - 1),
                min_size=d, max_size=d,
            ),
            min_size=n, max_size=n,
        )
    )
    return np.asarray(rows, dtype=float)


@given(grid_points(), st.data())
@settings(max_examples=60, deadline=None)
def test_k_dominant_is_subset_of_skyline(points, data):
    d = points.shape[1]
    k = data.draw(st.integers(min_value=1, max_value=d))
    kd_pts, kd_ids = k_dominant_skyline(points, k)
    sky = set(skyline_indices_oracle(points).tolist())
    # k-dominance is a *stronger* pruning: its survivors are regular
    # skyline members too.
    assert set(kd_ids.tolist()) <= sky


@given(grid_points())
@settings(max_examples=60, deadline=None)
def test_k_equals_d_matches_oracle(points):
    d = points.shape[1]
    _, ids = k_dominant_skyline(points, d)
    assert ids.tolist() == skyline_indices_oracle(points).tolist()


@given(grid_points(max_dims=3), st.data())
@settings(max_examples=60, deadline=None)
def test_k_dominates_pairwise_consistency(points, data):
    d = points.shape[1]
    k = data.draw(st.integers(min_value=1, max_value=d))
    i = data.draw(st.integers(0, points.shape[0] - 1))
    j = data.draw(st.integers(0, points.shape[0] - 1))
    if i == j:
        return
    p, q = points[i], points[j]
    # Regular dominance implies k-dominance for every k <= d.
    if dominates(p, q):
        assert k_dominates(p, q, k)


@given(grid_points(max_dims=4), st.data())
@settings(max_examples=60, deadline=None)
def test_subspace_skyline_superset_property(points, data):
    d = points.shape[1]
    if d < 2:
        return
    size = data.draw(st.integers(min_value=1, max_value=d - 1))
    dims = sorted(
        data.draw(
            st.lists(
                st.integers(0, d - 1), min_size=size, max_size=size,
                unique=True,
            )
        )
    )
    _, sub_ids = subspace_skyline(points, dims)
    # Subspace skyline members are never dominated *in the subspace*.
    proj = points[:, dims]
    sub_sky = set(skyline_indices_oracle(proj).tolist())
    assert set(sub_ids.tolist()) == sub_sky


@given(grid_points())
@settings(max_examples=60, deadline=None)
def test_why_not_consistent_with_oracle(points):
    sky = set(skyline_indices_oracle(points).tolist())
    for i in range(min(points.shape[0], 5)):
        explanation = why_not(points[i], points)
        assert explanation.is_skyline_member == (i in sky)
        if not explanation.is_skyline_member:
            # Every reported dominator genuinely dominates.
            for dom in explanation.dominator_points:
                assert dominates(dom, points[i])
