"""Unit + property tests for the serving layer.

The load-bearing guarantee: every service answer is bit-identical to a
fresh offline computation over the same snapshot's alive set — cached
or not, incremental or drift-rebuilt, whatever the codec.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.exceptions import (
    ConfigurationError,
    DatasetError,
    DeadlineExceededError,
    OverloadedError,
)
from repro.core.skyline import skyline_indices_oracle
from repro.extensions.kdominant import k_dominant_skyline
from repro.extensions.subspace import subspace_skyline
from repro.observability.metrics import MetricsRegistry
from repro.observability.tracer import Tracer
from repro.serving import (
    AdmissionConfig,
    AdmissionController,
    DatasetRegistry,
    DriftPolicy,
    Mutation,
    Query,
    RebuildConfig,
    ResultCache,
    ServiceConfig,
    SkylineClient,
    SkylineService,
    WorkloadSpec,
    replay_workload,
)
from repro.zorder.encoding import ZGridCodec


def grid_points(rng, n, d, top=16):
    return rng.integers(0, top, size=(n, d)).astype(np.float64)


def oracle_sky_ids(points, ids):
    """Offline reference: skyline ids of the alive set, sorted."""
    if points.shape[0] == 0:
        return np.empty(0, dtype=np.int64)
    keep = skyline_indices_oracle(points)
    return np.sort(ids[keep])


# ----------------------------------------------------------------------
# snapshots
# ----------------------------------------------------------------------
class TestSnapshot:
    def test_arrays_are_frozen(self, rng):
        registry = DatasetRegistry()
        registry.register("a", grid_points(rng, 50, 3))
        snap = registry.snapshot("a")
        for array in (snap.points, snap.ids, snap.sky_points, snap.sky_ids):
            with pytest.raises(ValueError):
                array[0] = 0

    def test_point_of_and_row_of(self, rng):
        points = grid_points(rng, 40, 3)
        ids = np.arange(100, 140, dtype=np.int64)
        registry = DatasetRegistry()
        registry.register("a", points, ids=ids)
        snap = registry.snapshot("a")
        assert np.array_equal(snap.point_of(117), points[17])
        assert snap.row_of(99) is None
        with pytest.raises(DatasetError):
            snap.point_of(99)

    def test_old_versions_stay_readable(self, rng):
        registry = DatasetRegistry()
        registry.register("a", grid_points(rng, 30, 3))
        v1 = registry.snapshot("a")
        v1_points = v1.points.copy()
        registry.insert("a", grid_points(rng, 10, 3), np.arange(1000, 1010))
        registry.delete("a", [0, 1, 2])
        # The old reference still reads version 1 exactly.
        assert v1.version == 1
        assert np.array_equal(v1.points, v1_points)
        assert registry.snapshot("a").version == 3
        # ...and the retention ring can serve it too.
        assert registry.snapshot_at("a", 2).version == 2


# ----------------------------------------------------------------------
# drift policy + registry
# ----------------------------------------------------------------------
class TestDriftPolicy:
    def test_never(self):
        policy = DriftPolicy.never()
        assert not policy.should_rebuild(10**9, 1)

    def test_absolute_bound(self):
        policy = DriftPolicy.bounded(max_deletes=5, max_delete_fraction=None)
        assert not policy.should_rebuild(5, 1000)
        assert policy.should_rebuild(6, 1000)

    def test_fraction_bound(self):
        policy = DriftPolicy.bounded(max_delete_fraction=0.5)
        assert not policy.should_rebuild(50, 100)
        assert policy.should_rebuild(51, 100)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            DriftPolicy(max_deletes=-1)


class TestRegistry:
    def test_register_requires_grid_points(self):
        registry = DatasetRegistry()
        with pytest.raises(DatasetError):
            registry.register("a", np.array([[0.5, 1.0]]))

    def test_register_rejects_duplicate_names(self, rng):
        registry = DatasetRegistry()
        registry.register("a", grid_points(rng, 10, 2))
        with pytest.raises(ConfigurationError):
            registry.register("a", grid_points(rng, 10, 2))

    def test_register_rejects_duplicate_ids(self, rng):
        registry = DatasetRegistry()
        with pytest.raises(DatasetError):
            registry.register(
                "a", grid_points(rng, 4, 2), ids=np.array([1, 1, 2, 3])
            )

    def test_unknown_dataset(self):
        registry = DatasetRegistry()
        with pytest.raises(DatasetError):
            registry.snapshot("ghost")

    def test_initial_skyline_matches_oracle(self, rng):
        points = grid_points(rng, 200, 4)
        registry = DatasetRegistry()
        registry.register("a", points)
        snap = registry.snapshot("a")
        assert np.array_equal(
            np.sort(snap.sky_ids), oracle_sky_ids(points, snap.ids)
        )

    def test_mutations_bump_version_and_stay_exact(self, rng):
        registry = DatasetRegistry()
        registry.register("a", grid_points(rng, 100, 3))
        pub = registry.insert(
            "a", grid_points(rng, 20, 3), np.arange(500, 520)
        )
        assert pub.version == 2
        pub = registry.delete("a", list(range(10)))
        assert pub.version == 3
        snap = registry.snapshot("a")
        assert np.array_equal(
            np.sort(snap.sky_ids), oracle_sky_ids(snap.points, snap.ids)
        )

    def test_drift_rebuild_triggers_and_resets(self, rng):
        metrics = MetricsRegistry()
        registry = DatasetRegistry(metrics=metrics)
        registry.register(
            "a",
            grid_points(rng, 60, 3),
            drift=DriftPolicy.bounded(
                max_deletes=5, max_delete_fraction=None
            ),
        )
        pub = registry.delete("a", [0, 1, 2])
        assert not pub.rebuilt
        pub = registry.delete("a", [3, 4, 5])  # 6 > 5 -> rebuild
        assert pub.rebuilt
        assert metrics.counter("serving", "drift_rebuilds") == 1
        # Counter reset: the next small delete is incremental again.
        pub = registry.delete("a", [6])
        assert not pub.rebuilt
        snap = registry.snapshot("a")
        assert np.array_equal(
            np.sort(snap.sky_ids), oracle_sky_ids(snap.points, snap.ids)
        )

    def test_drift_rebuild_uses_pipeline_at_scale(self, rng):
        metrics = MetricsRegistry()
        registry = DatasetRegistry(metrics=metrics)
        points = grid_points(rng, 700, 3, top=64)
        registry.register(
            "a",
            points,
            codec=ZGridCodec.grid_identity(3, bits_per_dim=6),
            drift=DriftPolicy.bounded(max_deletes=3,
                                      max_delete_fraction=None),
            rebuild=RebuildConfig(num_workers=2, num_groups=4,
                                  min_pipeline_size=512),
        )
        pub = registry.delete("a", list(range(8)))
        assert pub.rebuilt
        assert metrics.counter("serving", "pipeline_rebuilds") >= 1
        snap = registry.snapshot("a")
        assert np.array_equal(
            np.sort(snap.sky_ids), oracle_sky_ids(snap.points, snap.ids)
        )

    def test_register_dataset_quantizes_floats(self, rng):
        from repro.core.dataset import Dataset

        raw = Dataset(rng.random((80, 3)), name="raw")
        registry = DatasetRegistry()
        pub = registry.register_dataset("a", raw, bits_per_dim=8)
        assert pub.version == 1
        snap = registry.snapshot("a")
        assert snap.size == 80
        assert np.all(snap.points == np.floor(snap.points))


# ----------------------------------------------------------------------
# cache
# ----------------------------------------------------------------------
class TestResultCache:
    def test_hit_miss_eviction(self):
        metrics = MetricsRegistry()
        cache = ResultCache(max_entries=2, metrics=metrics)
        k1 = ResultCache.make_key("a", 1, "q1")
        k2 = ResultCache.make_key("a", 1, "q2")
        k3 = ResultCache.make_key("a", 2, "q1")
        hit, _ = cache.lookup(k1)
        assert not hit
        cache.store(k1, "v1")
        cache.store(k2, "v2")
        assert cache.lookup(k1) == (True, "v1")
        cache.store(k3, "v3")  # evicts k2 (k1 was refreshed)
        assert cache.lookup(k2) == (False, None)
        assert cache.lookup(k3) == (True, "v3")
        assert cache.evictions == 1
        assert metrics.counter("serving", "cache_hits") == cache.hits
        assert metrics.counter("serving", "cache_misses") == cache.misses
        assert metrics.counter("serving", "cache_evictions") == 1

    def test_version_is_part_of_the_key(self):
        cache = ResultCache(max_entries=8)
        cache.store(ResultCache.make_key("a", 1, "q"), "old")
        hit, _ = cache.lookup(ResultCache.make_key("a", 2, "q"))
        assert not hit

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ConfigurationError):
            ResultCache(max_entries=0)


# ----------------------------------------------------------------------
# admission control
# ----------------------------------------------------------------------
class TestAdmission:
    def test_sheds_when_queue_full(self):
        metrics = MetricsRegistry()
        controller = AdmissionController(
            AdmissionConfig(max_read_queue=2), metrics=metrics
        )
        controller.admit("read")
        controller.admit("read")
        with pytest.raises(OverloadedError):
            controller.admit("read")
        # The mutate queue is independent.
        controller.admit("mutate")
        assert metrics.counter("serving", "read_rejected") == 1
        stats = controller.stats()
        assert stats["read"]["queued"] == 2
        assert stats["read"]["rejected"] == 1

    def test_lifecycle_accounting(self):
        metrics = MetricsRegistry()
        controller = AdmissionController(metrics=metrics)
        ticket = controller.admit("read")
        controller.started(ticket)
        controller.finished(ticket)
        stats = controller.stats()
        assert stats["read"]["queued"] == 0
        assert stats["read"]["running"] == 0
        assert metrics.histogram("serving.read_queue_wait_seconds")
        assert metrics.histogram("serving.read_service_seconds")

    def test_deadline_resolution_and_expiry(self):
        controller = AdmissionController(
            AdmissionConfig(default_timeout_seconds=100.0)
        )
        ticket = controller.admit("read")
        assert ticket.deadline is not None
        assert not ticket.expired()
        explicit = controller.admit("read", timeout_seconds=1e-12)
        assert explicit.expired(now=explicit.deadline + 1.0)
        controller.expire(explicit)
        assert controller.stats()["read"]["expired"] == 1

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            AdmissionConfig(read_concurrency=0)
        with pytest.raises(ConfigurationError):
            AdmissionConfig(default_timeout_seconds=0.0)


# ----------------------------------------------------------------------
# service
# ----------------------------------------------------------------------
@pytest.fixture
def served(rng):
    """A registry + service over one 4-D dataset (and its raw arrays)."""
    points = grid_points(rng, 150, 4)
    registry = DatasetRegistry()
    registry.register("d", points)
    with SkylineService(registry) as service:
        yield service, registry


class TestService:
    def test_full_matches_oracle(self, served):
        service, registry = served
        snap = registry.snapshot("d")
        result = service.query(Query.full("d"))
        assert np.array_equal(
            result.ids, oracle_sky_ids(snap.points, snap.ids)
        )
        assert result.version == snap.version
        # Canonical ordering: ids ascending.
        assert np.all(np.diff(result.ids) > 0)

    def test_subspace_matches_operator(self, served):
        service, registry = served
        snap = registry.snapshot("d")
        result = service.query(Query.subspace("d", [0, 2]))
        _, expected = subspace_skyline(snap.points, [0, 2], ids=snap.ids)
        assert np.array_equal(result.ids, np.sort(expected))

    def test_kdominant_matches_operator(self, served):
        service, registry = served
        snap = registry.snapshot("d")
        result = service.query(Query.kdominant("d", 3))
        _, expected = k_dominant_skyline(snap.points, 3, ids=snap.ids)
        assert np.array_equal(result.ids, np.sort(expected))

    def test_topk_methods(self, served):
        service, _ = served
        sums = service.query(Query.topk("d", 5, method="sum"))
        assert sums.size == 5 and sums.scores is not None
        assert np.all(np.diff(sums.scores) >= 0)
        rep = service.query(Query.topk("d", 3, method="representative"))
        assert rep.size == 3 and rep.scores is None
        weighted = service.query(
            Query.topk("d", 4, method="weighted",
                       weights=[1.0, 0.0, 0.0, 0.0])
        )
        assert weighted.size == 4

    def test_explain_member_and_loser(self, served):
        service, registry = served
        snap = registry.snapshot("d")
        winner = int(snap.sky_ids[0])
        result = service.query(Query.explain("d", point_id=winner))
        assert result.explanation.is_skyline_member
        assert result.live_member is True
        worst = service.query(Query.explain("d", point=[15.0] * 4))
        assert not worst.explanation.is_skyline_member
        assert worst.explanation.num_dominators > 0
        assert worst.live_member is None  # what-if point has no live row

    def test_cached_results_are_bit_identical(self, served):
        service, _ = served
        for query in (
            Query.full("d"),
            Query.subspace("d", [1, 3]),
            Query.kdominant("d", 3),
            Query.topk("d", 4, method="sum"),
            Query.explain("d", point=[15.0] * 4),
        ):
            fresh = service.query(query)
            again = service.query(query)
            assert not fresh.cached and again.cached
            assert np.array_equal(fresh.ids, again.ids)
            assert np.array_equal(fresh.points, again.points)
            if fresh.scores is not None:
                assert np.array_equal(fresh.scores, again.scores)

    def test_mutation_invalidates_by_version(self, served):
        service, _ = served
        first = service.query(Query.full("d"))
        service.mutate(
            Mutation.insert("d", np.zeros((1, 4)), [7777])
        )
        after = service.query(Query.full("d"))
        assert not after.cached  # new version -> cache miss
        assert after.version == first.version + 1
        assert after.ids.tolist() == [7777]  # origin dominates everything

    def test_validation_errors_are_synchronous(self, served):
        service, _ = served
        with pytest.raises(ConfigurationError):
            service.query(Query.subspace("d", []))
        with pytest.raises(ConfigurationError):
            service.query(Query.topk("d", 0))
        with pytest.raises(ConfigurationError):
            service.query(Query.explain("d"))
        with pytest.raises(DatasetError):
            service.query(Query.full("ghost"))

    def test_deadline_expiry_surfaces_typed_error(self, rng):
        registry = DatasetRegistry()
        registry.register("d", grid_points(rng, 50, 3))
        with SkylineService(registry) as service:
            # A deadline that has already passed when a worker picks
            # the request up.
            future = service.submit(
                Query.full("d", timeout_seconds=1e-9)
            )
            with pytest.raises(DeadlineExceededError):
                future.result(timeout=10.0)
            assert service.admission.stats()["read"]["expired"] == 1

    def test_overload_sheds_with_typed_error(self, rng):
        registry = DatasetRegistry()
        registry.register("d", grid_points(rng, 30, 3))
        config = ServiceConfig(
            admission=AdmissionConfig(max_read_queue=0)
        )
        with SkylineService(registry, config=config) as service:
            with pytest.raises(OverloadedError):
                service.query(Query.full("d"))

    def test_closed_service_rejects_submissions(self, rng):
        registry = DatasetRegistry()
        registry.register("d", grid_points(rng, 30, 3))
        service = SkylineService(registry)
        service.close()
        with pytest.raises(ConfigurationError):
            service.submit(Query.full("d"))

    def test_tracer_records_query_spans(self, rng):
        registry = DatasetRegistry()
        registry.register("d", grid_points(rng, 30, 3))
        tracer = Tracer()
        with SkylineService(registry, tracer=tracer) as service:
            service.query(Query.full("d"))
            service.mutate(Mutation.delete("d", [0]))
        names = [span.name for span in tracer.spans]
        assert "serving.query" in names
        assert "serving.mutation" in names


class TestClientAndReplay:
    def test_client_facade(self, rng):
        registry = DatasetRegistry()
        registry.register("d", grid_points(rng, 80, 3))
        with SkylineService(registry) as service:
            client = SkylineClient(service, "d")
            assert client.version == 1
            sky = client.skyline()
            assert sky.size > 0
            client.insert(np.zeros((1, 3)), [999])
            assert client.version == 2
            client.delete([999])
            assert client.version == 3
            assert client.subspace([0, 1]).size > 0
            assert client.k_dominant(2).size >= 0
            assert client.top_k(3).size <= 3
            assert client.why_not(point=[15.0, 15.0, 15.0]) is not None

    def test_replay_workload_is_deterministic_in_shape(self, rng):
        registry = DatasetRegistry()
        registry.register("d", grid_points(rng, 100, 3))
        with SkylineService(registry) as service:
            spec = WorkloadSpec(
                dataset="d", operations=60, read_fraction=0.7, seed=9
            )
            report = replay_workload(service, spec)
        assert report.reads + report.writes + report.shed == 60
        assert report.cache_hits > 0
        summary = report.summary()
        assert summary["final_version"] >= 1
        assert 0.0 <= summary["cache_hit_rate"] <= 1.0


# ----------------------------------------------------------------------
# property: service answers == fresh offline computation, across codecs
# and drift policies, under arbitrary mutation streams
# ----------------------------------------------------------------------
@st.composite
def mutation_stream(draw):
    ops = []
    next_id = 30
    alive = list(range(30))
    for _ in range(draw(st.integers(1, 5))):
        if len(alive) > 4 and draw(st.booleans()):
            count = draw(st.integers(1, min(6, len(alive) - 2)))
            positions = draw(
                st.lists(
                    st.integers(0, len(alive) - 1),
                    min_size=count, max_size=count, unique=True,
                )
            )
            doomed = [alive[p] for p in positions]
            ops.append(("delete", doomed))
            alive = [a for a in alive if a not in set(doomed)]
        else:
            n = draw(st.integers(1, 8))
            rows = draw(
                st.lists(
                    st.lists(st.integers(0, 15), min_size=3, max_size=3),
                    min_size=n, max_size=n,
                )
            )
            ids = list(range(next_id, next_id + n))
            ops.append(("insert", (rows, ids)))
            alive.extend(ids)
            next_id += n
    return ops


@pytest.mark.parametrize("bits", [4, 6])
@pytest.mark.parametrize(
    "drift",
    [DriftPolicy.never(),
     DriftPolicy.bounded(max_deletes=2, max_delete_fraction=None)],
    ids=["never", "bounded"],
)
@given(stream=mutation_stream())
@settings(max_examples=15, deadline=None)
def test_service_bit_identical_to_offline(bits, drift, stream):
    rng = np.random.default_rng(7)
    points = rng.integers(0, 16, size=(30, 3)).astype(np.float64)
    registry = DatasetRegistry()
    registry.register(
        "p", points,
        codec=ZGridCodec.grid_identity(3, bits_per_dim=bits),
        drift=drift,
    )
    with SkylineService(registry) as service:
        for op, payload in stream:
            if op == "insert":
                rows, ids = payload
                service.mutate(
                    Mutation.insert(
                        "p", np.asarray(rows, dtype=np.float64), ids
                    )
                )
            else:
                service.mutate(Mutation.delete("p", payload))
        snap = registry.snapshot("p")
        # full: against the brute-force oracle on the alive set
        full = service.query(Query.full("p"))
        assert np.array_equal(
            full.ids, oracle_sky_ids(snap.points, snap.ids)
        )
        full_cached = service.query(Query.full("p"))
        assert full_cached.cached
        assert np.array_equal(full.ids, full_cached.ids)
        assert np.array_equal(full.points, full_cached.points)
        if snap.size:
            # subspace + kdominant: against the operators run offline
            sub = service.query(Query.subspace("p", [0, 2]))
            _, expected = subspace_skyline(
                snap.points, [0, 2], ids=snap.ids
            )
            assert np.array_equal(sub.ids, np.sort(expected))
            kdom = service.query(Query.kdominant("p", 2))
            _, expected = k_dominant_skyline(snap.points, 2, ids=snap.ids)
            assert np.array_equal(kdom.ids, np.sort(expected))
            # topk over the oracle skyline, fed in the same id order
            top = service.query(Query.topk("p", 3, method="sum"))
            assert top.size == min(3, full.size)
            # explain: dominators of the worst corner == every
            # alive point that dominates it
            worst = service.query(Query.explain("p", point=[15.0] * 3))
            explanation = worst.explanation
            assert explanation.num_dominators == len(explanation.dominator_ids)
