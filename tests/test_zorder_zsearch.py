"""Unit tests for Z-search."""

import numpy as np
import pytest

from repro.core.dataset import Dataset
from repro.core.skyline import is_skyline_of
from repro.zorder.encoding import ZGridCodec
from repro.zorder.zbtree import OpCounter, build_zbtree
from repro.zorder.zsearch import SkylineBuffer, zsearch, zsearch_dataset


@pytest.fixture
def codec() -> ZGridCodec:
    return ZGridCodec.grid_identity(3, bits_per_dim=5)


class TestZSearch:
    def test_matches_oracle_random(self, codec):
        rng = np.random.default_rng(2)
        for _ in range(10):
            pts = rng.integers(0, 32, (120, 3)).astype(float)
            tree = build_zbtree(codec, pts)
            sky, ids = zsearch(tree)
            assert is_skyline_of(sky, pts)

    def test_empty_tree(self, codec):
        tree = build_zbtree(codec, np.empty((0, 3)))
        sky, ids = zsearch(tree)
        assert sky.shape == (0, 3)
        assert ids.size == 0

    def test_all_duplicates_kept(self, codec):
        pts = np.tile(np.array([[4.0, 4.0, 4.0]]), (6, 1))
        tree = build_zbtree(codec, pts)
        sky, _ = zsearch(tree)
        assert sky.shape[0] == 6

    def test_single_dominator(self, codec):
        pts = np.vstack(
            [np.zeros((1, 3)), np.ones((20, 3)) * 7]
        )
        tree = build_zbtree(codec, pts)
        sky, ids = zsearch(tree)
        assert sky.shape[0] == 1
        assert ids.tolist() == [0]

    def test_ids_refer_to_original_rows(self, codec):
        rng = np.random.default_rng(3)
        pts = rng.integers(0, 32, (60, 3)).astype(float)
        custom_ids = np.arange(1000, 1060)
        tree = build_zbtree(codec, pts, ids=custom_ids)
        sky, ids = zsearch(tree)
        for point, pid in zip(sky, ids):
            assert np.array_equal(pts[pid - 1000], point)

    def test_pruning_reduces_point_tests(self, codec):
        # Correlated data: one point dominates nearly everything, so
        # region pruning should keep the test count near-linear.
        rng = np.random.default_rng(4)
        base = rng.integers(0, 4, (300, 3))
        pts = (base + 20).astype(float)
        pts[0] = [0.0, 0.0, 0.0]
        tree = build_zbtree(codec, pts)
        counter = OpCounter()
        sky, _ = zsearch(tree, counter)
        assert sky.shape[0] == 1
        # Far fewer than the quadratic 300*300/2 comparisons.
        assert counter.point_tests < 2000

    def test_result_in_z_order(self, codec):
        rng = np.random.default_rng(5)
        pts = rng.integers(0, 32, (120, 3)).astype(float)
        tree = build_zbtree(codec, pts)
        sky, _ = zsearch(tree)
        zs = codec.encode_grid(sky.astype(np.int64))
        assert zs == sorted(zs)


class TestZSearchDataset:
    def test_with_explicit_codec(self, codec):
        rng = np.random.default_rng(6)
        ds = Dataset(rng.integers(0, 32, (80, 3)).astype(float))
        sky, _ = zsearch_dataset(ds, codec)
        assert is_skyline_of(sky, ds.points)

    def test_derives_codec_when_missing(self):
        rng = np.random.default_rng(7)
        ds = Dataset(rng.integers(0, 100, (80, 4)).astype(float))
        sky, _ = zsearch_dataset(ds)
        assert is_skyline_of(sky, ds.points)


class TestSkylineBuffer:
    def test_growth_beyond_initial_capacity(self):
        buf = SkylineBuffer(2, initial_capacity=2)
        for i in range(10):
            buf.append(np.array([float(i), float(9 - i)]), i, i)
        assert buf.size == 10
        assert buf.points.shape == (10, 2)
        assert buf.ids.tolist() == list(range(10))

    def test_dominates(self):
        buf = SkylineBuffer(2)
        counter = OpCounter()
        assert not buf.dominates(np.array([1.0, 1.0]), counter)
        buf.append(np.array([0.0, 0.0]), 0, 0)
        assert buf.dominates(np.array([1.0, 1.0]), counter)
        assert not buf.dominates(np.array([0.0, 0.0]), counter)
