"""Unit tests for plan-string parsing."""

import pytest

from repro.core.exceptions import ConfigurationError
from repro.pipeline.plans import PlanConfig, parse_plan


class TestParsePlan:
    def test_paper_strategy_names(self):
        cfg = parse_plan("ZDG+ZS+ZM")
        assert cfg.partitioner == "zdg"
        assert cfg.local_algorithm == "ZS"
        assert cfg.merge_algorithm == "ZM"
        assert cfg.prefilter is True

    def test_baselines_have_no_prefilter(self):
        assert parse_plan("Grid+SB").prefilter is False
        assert parse_plan("Angle+ZS").prefilter is False
        assert parse_plan("Random+BNL").prefilter is False

    def test_z_family_has_prefilter(self):
        for name in ("Naive-Z+ZS", "ZHG+SB", "ZDG+ZS"):
            assert parse_plan(name).prefilter is True

    def test_default_merge_is_zs(self):
        assert parse_plan("Grid+SB").merge_algorithm == "ZS"

    def test_case_insensitive(self):
        assert parse_plan("zdg+zs+zm").partitioner == "zdg"

    def test_aliases(self):
        assert parse_plan("NZ+ZS").partitioner == "naive-z"
        assert parse_plan("NaiveZ+ZS").partitioner == "naive-z"

    def test_unknown_partitioner(self):
        with pytest.raises(ConfigurationError):
            parse_plan("Voronoi+ZS")

    def test_unknown_local(self):
        with pytest.raises(ConfigurationError):
            parse_plan("Grid+XX")

    def test_unknown_merge(self):
        with pytest.raises(ConfigurationError):
            parse_plan("Grid+SB+XX")

    def test_wrong_arity(self):
        with pytest.raises(ConfigurationError):
            parse_plan("Grid")
        with pytest.raises(ConfigurationError):
            parse_plan("Grid+SB+ZM+ZS")

    def test_label_preserved(self):
        assert parse_plan("ZDG+ZS+ZM").label == "ZDG+ZS+ZM"


class TestPlanConfig:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            PlanConfig("nope", "ZS", "ZM", True)
        with pytest.raises(ConfigurationError):
            PlanConfig("zdg", "nope", "ZM", True)
        with pytest.raises(ConfigurationError):
            PlanConfig("zdg", "ZS", "nope", True)

    def test_plan_string_roundtrip(self):
        cfg = PlanConfig("zdg", "ZS", "ZM", True)
        assert cfg.plan_string() == "Zdg+ZS+ZM"

    def test_with_merge(self):
        cfg = parse_plan("ZDG+ZS+ZM").with_merge("SB")
        assert cfg.merge_algorithm == "SB"
        assert cfg.partitioner == "zdg"

    def test_default_label_generated(self):
        cfg = PlanConfig("grid", "SB", "ZS", False)
        assert cfg.label
