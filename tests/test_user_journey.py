"""Integration test of the full user journey:

CSV import -> orientation -> analysis/advice -> distributed run ->
ranking -> why-not -> serialisation.  Exercises the same path as the
portfolio example end to end with assertions at each step.
"""

import json

import numpy as np

from repro import SkylineEngine, EngineConfig, advise
from repro.core.dataset import Dataset
from repro.core.skyline import is_skyline_of
from repro.data.io import load_csv, save_csv
from repro.extensions import rank_skyline, why_not
from repro.pipeline.serialization import report_to_json
from repro.zorder.encoding import quantize_dataset


def test_full_journey(tmp_path):
    rng = np.random.default_rng(99)
    # Mixed-direction raw data: (cost-min, quality-max, delay-min).
    raw = np.column_stack(
        [
            rng.gamma(2.0, 5.0, 800),
            rng.normal(60, 15, 800),
            rng.exponential(3.0, 800),
        ]
    )
    original = Dataset(raw, name="suppliers")

    # 1. Round-trip through CSV.
    path = str(tmp_path / "suppliers.csv")
    save_csv(original, path, column_names=["cost", "quality", "delay"])
    loaded = load_csv(path)
    assert np.array_equal(loaded.points, original.points)

    # 2. Orient maximised columns.
    oriented = loaded.oriented(["min", "max", "min"])
    assert oriented.points[:, 1].min() == 0.0

    # 3. Ask the advisor, then run its recommendation.
    advice = advise(oriented, num_workers=4, seed=0)
    config = EngineConfig(
        plan=advice.plan, num_groups=advice.num_groups, num_workers=4,
        bits_per_dim=10, seed=0,
    )
    report = SkylineEngine(config).run(oriented)

    # 4. The distributed result is exact.
    snapped, _ = quantize_dataset(oriented, bits_per_dim=10)
    assert is_skyline_of(report.skyline.points, snapped.points)

    # 5. Rank the shortlist and sanity-check the scores.
    _, ranked_ids, scores = rank_skyline(
        report.skyline.points, report.skyline.ids, snapped.points,
        method="dominance",
    )
    assert np.all(np.diff(scores) <= 0)
    assert scores[0] <= snapped.size

    # 6. Why-not for a non-member traces to real dominators.
    member_ids = set(report.skyline.ids.tolist())
    loser = next(int(i) for i in snapped.ids if int(i) not in member_ids)
    explanation = why_not(snapped.points[loser], snapped.points,
                          snapped.ids)
    assert not explanation.is_skyline_member
    assert explanation.num_dominators > 0
    assert set(explanation.dominator_ids.tolist()) <= set(
        snapped.ids.tolist()
    )

    # 7. The run serialises to JSON for logging.
    payload = json.loads(report_to_json(report))
    assert payload["summary"]["skyline"] == report.skyline_size
    assert sorted(payload["skyline_ids"]) == sorted(
        report.skyline.ids.tolist()
    )
