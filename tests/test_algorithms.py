"""Unit tests for the centralized skyline algorithms."""

import numpy as np
import pytest

from repro.algorithms import (
    available_algorithms,
    bnl_skyline,
    dnc_skyline,
    get_algorithm,
    sort_based_skyline,
    zs_skyline,
)
from repro.algorithms.bbs import bbs_skyline
from repro.algorithms.bitstring import bitstring_skyline, cell_coordinates
from repro.algorithms.salsa import salsa_skyline
from repro.core.exceptions import ConfigurationError
from repro.core.skyline import is_skyline_of
from repro.zorder.zbtree import OpCounter

ALGORITHMS = [
    bnl_skyline,
    sort_based_skyline,
    dnc_skyline,
    zs_skyline,
    bitstring_skyline,
    bbs_skyline,
    salsa_skyline,
]


@pytest.mark.parametrize("algo", ALGORITHMS)
class TestAllAlgorithms:
    def test_matches_oracle_random(self, algo):
        rng = np.random.default_rng(1)
        for d in (1, 2, 4, 6):
            pts = rng.integers(0, 16, (120, d)).astype(float)
            sky, ids = algo(pts, None, None)
            assert is_skyline_of(sky, pts)
            # ids refer to original rows.
            for point, pid in zip(sky, ids):
                assert np.array_equal(pts[pid], point)

    def test_empty_input(self, algo):
        sky, ids = algo(np.empty((0, 3)), None, None)
        assert sky.shape[0] == 0
        assert ids.size == 0

    def test_single_point(self, algo):
        sky, ids = algo(np.array([[4.0, 2.0]]), None, None)
        assert sky.tolist() == [[4.0, 2.0]]

    def test_duplicates_kept(self, algo):
        pts = np.array([[2.0, 2.0], [2.0, 2.0], [3.0, 3.0]])
        sky, _ = algo(pts, None, None)
        assert sky.shape[0] == 2

    def test_total_order_chain(self, algo):
        pts = np.array([[3.0, 3.0], [1.0, 1.0], [2.0, 2.0]])
        sky, ids = algo(pts, None, None)
        assert sky.tolist() == [[1.0, 1.0]]
        assert ids.tolist() == [1]

    def test_all_incomparable(self, algo):
        pts = np.array([[0.0, 3.0], [1.0, 2.0], [2.0, 1.0], [3.0, 0.0]])
        sky, _ = algo(pts, None, None)
        assert sky.shape[0] == 4

    def test_custom_ids(self, algo):
        pts = np.array([[1.0, 1.0], [2.0, 2.0]])
        sky, ids = algo(pts, np.array([55, 66]), None)
        assert ids.tolist() == [55]

    def test_counter_populated(self, algo):
        rng = np.random.default_rng(2)
        pts = rng.integers(0, 8, (60, 3)).astype(float)
        counter = OpCounter()
        algo(pts, None, counter)
        assert counter.total() > 0


class TestRegistry:
    def test_lookup_by_paper_names(self):
        assert get_algorithm("SB") is sort_based_skyline
        assert get_algorithm("sb") is sort_based_skyline
        assert get_algorithm("ZS") is zs_skyline
        assert get_algorithm("BNL") is bnl_skyline

    def test_unknown_name_rejected(self):
        with pytest.raises(ConfigurationError):
            get_algorithm("QUICKSKY")

    def test_available_contains_core_names(self):
        names = available_algorithms()
        assert {"SB", "ZS", "BNL", "DNC"} <= set(names)


class TestBitstringInternals:
    def test_cell_coordinates_ranges(self):
        pts = np.array([[0.0, 0.0], [1.0, 1.0], [0.5, 0.25]])
        lo = pts.min(axis=0)
        hi = pts.max(axis=0)
        cells = cell_coordinates(pts, 4, lo, hi)
        assert cells.min() >= 0
        assert cells.max() <= 3
        assert cells[0].tolist() == [0, 0]
        assert cells[1].tolist() == [3, 3]

    def test_splits_parameter(self):
        rng = np.random.default_rng(3)
        pts = rng.integers(0, 32, (150, 3)).astype(float)
        for splits in (2, 3, 8):
            sky, _ = bitstring_skyline(pts, splits_per_dim=splits)
            assert is_skyline_of(sky, pts)
