"""Unit tests for the analysis package."""

import numpy as np

from repro.analysis import (
    dominance_depth_profile,
    render_histogram,
    render_profile,
    skyline_partition_histogram,
    workload_profile,
)
from repro.core.dataset import Dataset
from repro.data.synthetic import anticorrelated, correlated, independent
from repro.partitioning import get_partitioner, reservoir_sample
from repro.zorder.encoding import quantize_dataset


class TestSkylineHistogram:
    def make(self, gen=independent, name="zdg"):
        ds = gen(1500, 4, seed=1)
        snapped, codec = quantize_dataset(ds, bits_per_dim=8)
        sample = reservoir_sample(snapped, ratio=0.1, seed=0)
        rule = get_partitioner(name).fit(sample, codec, 8)
        return snapped, codec, rule

    def test_counts_cover_dataset(self):
        snapped, codec, rule = self.make()
        histogram = skyline_partition_histogram(snapped, rule, codec)
        assert sum(b["points"] for b in histogram.values()) == snapped.size

    def test_skyline_counts_match_oracle(self):
        from repro.core.skyline import skyline_indices_oracle

        snapped, codec, rule = self.make()
        histogram = skyline_partition_histogram(snapped, rule, codec)
        total_sky = sum(b["skyline"] for b in histogram.values())
        expected = len(skyline_indices_oracle(snapped.points))
        assert total_sky == expected

    def test_example2_concentration(self):
        # Example 2's observation: skyline points concentrate in a
        # minority of equal-size partitions.
        snapped, codec, rule = self.make(anticorrelated, "naive-z")
        histogram = skyline_partition_histogram(snapped, rule, codec)
        sky_counts = sorted(
            (b["skyline"] for b in histogram.values()), reverse=True
        )
        total = sum(sky_counts)
        top_quarter = sum(sky_counts[: max(1, len(sky_counts) // 4)])
        assert top_quarter > total / 4  # denser than uniform


class TestDepthProfile:
    def test_chain(self):
        ds = Dataset([[0.0, 0.0], [1.0, 1.0], [2.0, 2.0]])
        profile = dominance_depth_profile(ds)
        assert profile.skyline_size == 1
        assert profile.max_depth == 2
        assert profile.depth_histogram == {0: 1, 1: 1, 2: 1}

    def test_antichain(self):
        ds = Dataset([[0.0, 2.0], [1.0, 1.0], [2.0, 0.0]])
        profile = dominance_depth_profile(ds)
        assert profile.skyline_size == 3
        assert profile.max_depth == 0
        assert profile.mean_depth == 0.0

    def test_correlated_deeper_than_anticorrelated(self):
        deep = dominance_depth_profile(correlated(400, 4, seed=2))
        shallow = dominance_depth_profile(anticorrelated(400, 4, seed=2))
        assert deep.mean_depth > shallow.mean_depth


class TestWorkloadProfile:
    def test_fields(self):
        profile = workload_profile(independent(300, 3, seed=0))
        assert profile["n"] == 300
        assert profile["d"] == 3
        assert 0 < profile["skyline_fraction"] <= 1

    def test_correlation_sign_separates_regimes(self):
        corr = workload_profile(correlated(500, 3, seed=1))
        anti = workload_profile(anticorrelated(500, 3, seed=1))
        assert corr["mean_pairwise_correlation"] > 0.3
        assert anti["mean_pairwise_correlation"] < -0.1

    def test_one_dimensional(self):
        profile = workload_profile(Dataset([[1.0], [2.0]]))
        assert profile["mean_pairwise_correlation"] == 1.0
        assert profile["skyline_size"] == 1


class TestRendering:
    def test_histogram_rendering(self):
        text = render_histogram(
            {0: {"points": 10, "skyline": 2},
             -1: {"points": 3, "skyline": 0}},
            title="demo",
        )
        assert "demo" in text
        assert "dropped" in text
        assert "group   0" in text

    def test_empty_histogram(self):
        assert "(empty)" in render_histogram({})

    def test_profile_rendering(self):
        profile = dominance_depth_profile(
            Dataset([[0.0, 0.0], [1.0, 1.0]])
        )
        text = render_profile(profile)
        assert "skyline size : 1" in text
        assert "depth" in text

    def test_profile_rendering_truncates(self):
        rng = np.random.default_rng(3)
        ds = Dataset(np.sort(rng.random((60, 1)), axis=0))
        text = render_profile(dominance_depth_profile(ds))
        assert "more depths" in text


class TestAdvisor:
    def test_high_dimensional_gets_parallel_merge(self):
        from repro.pipeline.advisor import advise

        advice = advise(independent(800, 10, seed=1), num_workers=8)
        assert advice.plan.merge_algorithm == "ZMP"
        assert advice.num_groups >= 8
        assert advice.rationale

    def test_single_worker_avoids_zmp(self):
        from repro.pipeline.advisor import advise

        advice = advise(independent(800, 10, seed=1), num_workers=1)
        assert advice.plan.merge_algorithm == "ZM"

    def test_correlated_gets_cheap_local(self):
        from repro.pipeline.advisor import advise

        advice = advise(correlated(800, 4, seed=1))
        assert advice.plan.local_algorithm == "SB"

    def test_default_regime(self):
        from repro.pipeline.advisor import advise

        advice = advise(independent(800, 4, seed=1))
        assert advice.plan.partitioner == "zdg"
        assert advice.plan_string()

    def test_fat_skyline_triggers_merge_focus(self):
        from repro.pipeline.advisor import advise

        advice = advise(anticorrelated(800, 5, seed=1))
        assert advice.plan.merge_algorithm in ("ZM", "ZMP")
