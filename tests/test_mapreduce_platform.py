"""Unit tests for counters, cache, DFS, and the simulated cluster."""

import numpy as np
import pytest

from repro.core.exceptions import MapReduceError
from repro.mapreduce.cache import DistributedCache
from repro.mapreduce.cluster import SimulatedCluster
from repro.mapreduce.counters import Counters
from repro.mapreduce.hdfs import InMemoryDFS
from repro.mapreduce.types import Block


class TestCounters:
    def test_inc_and_get(self):
        c = Counters()
        c.inc("map", "records", 5)
        c.inc("map", "records", 3)
        assert c.get("map", "records") == 8

    def test_missing_counter_is_zero(self):
        assert Counters().get("x", "y") == 0

    def test_merge(self):
        a, b = Counters(), Counters()
        a.inc("g", "n", 1)
        b.inc("g", "n", 2)
        b.inc("h", "m", 7)
        a.merge(b)
        assert a.get("g", "n") == 3
        assert a.get("h", "m") == 7

    def test_as_dict_snapshot(self):
        c = Counters()
        c.inc("g", "n")
        snap = c.as_dict()
        snap["g"]["n"] = 999
        assert c.get("g", "n") == 1


class TestCache:
    def test_put_get(self):
        cache = DistributedCache()
        cache.put("rule", [1, 2, 3])
        assert cache.get("rule") == [1, 2, 3]
        assert "rule" in cache
        assert len(cache) == 1

    def test_write_once(self):
        cache = DistributedCache()
        cache.put("k", 1)
        with pytest.raises(MapReduceError):
            cache.put("k", 2)

    def test_identical_republication_is_idempotent(self):
        # A supervised resume re-publishes the preprocessing artefacts
        # into a still-live cache; identical payloads must be a no-op.
        cache = DistributedCache()
        payload = np.arange(12.0).reshape(4, 3)
        cache.put("skyline", payload)
        cache.put("skyline", payload)  # same object
        cache.put("skyline", payload.copy())  # equal ndarray
        assert np.array_equal(cache.get("skyline"), payload)
        cache.put("scalar", 7)
        cache.put("scalar", 7)
        assert cache.get("scalar") == 7

    def test_conflicting_republication_still_raises(self):
        cache = DistributedCache()
        cache.put("skyline", np.zeros((2, 2)))
        with pytest.raises(MapReduceError, match="conflicting"):
            cache.put("skyline", np.ones((2, 2)))

    def test_missing_key(self):
        with pytest.raises(MapReduceError):
            DistributedCache().get("nope")


class TestDFS:
    def make_block(self, n=4, d=2):
        return Block(np.arange(n), np.zeros((n, d)))

    def test_write_read_roundtrip(self):
        dfs = InMemoryDFS()
        block = self.make_block()
        dfs.write("out/part-0", [block])
        got = dfs.read("out/part-0")
        assert got[0] is block

    def test_io_accounting(self):
        dfs = InMemoryDFS()
        block = self.make_block(n=10, d=3)
        dfs.write("f", [block])
        assert dfs.bytes_written == block.nbytes
        assert dfs.records_written == 10
        dfs.read("f")
        assert dfs.bytes_read == block.nbytes

    def test_no_overwrite(self):
        dfs = InMemoryDFS()
        dfs.write("f", [])
        with pytest.raises(MapReduceError):
            dfs.write("f", [])

    def test_explicit_overwrite_replaces_content(self):
        dfs = InMemoryDFS()
        first, second = self.make_block(n=2), self.make_block(n=6)
        dfs.write("f", [first])
        dfs.write("f", [second], overwrite=True)
        assert dfs.read("f") == [second]

    def test_read_missing(self):
        with pytest.raises(MapReduceError):
            InMemoryDFS().read("missing")

    def test_delete_and_listdir(self):
        dfs = InMemoryDFS()
        dfs.write("b", [])
        dfs.write("a", [])
        assert dfs.listdir() == ["a", "b"]
        dfs.delete("a")
        assert dfs.listdir() == ["b"]
        with pytest.raises(MapReduceError):
            dfs.delete("a")

    def test_latest_resolves_attempt_scoped_output(self):
        # Reruns write to <path>/attempt-<k>; a resumed reader must see
        # the newest attempt, not the stale base file.
        dfs = InMemoryDFS()
        dfs.write("skyline", [self.make_block(n=1)])
        dfs.write("skyline/attempt-1", [self.make_block(n=2)])
        dfs.write("skyline/attempt-2", [self.make_block(n=3)])
        assert dfs.latest_path("skyline") == "skyline/attempt-2"
        blocks = dfs.latest("skyline")
        assert blocks[0].size == 3

    def test_latest_falls_back_to_base_path(self):
        dfs = InMemoryDFS()
        dfs.write("skyline", [self.make_block(n=4)])
        assert dfs.latest_path("skyline") == "skyline"
        assert dfs.latest("skyline")[0].size == 4

    def test_latest_with_only_attempts(self):
        # The base path may never exist (first execution already ran
        # under a reused runtime whose counter was advanced).
        dfs = InMemoryDFS()
        dfs.write("out/attempt-1", [self.make_block(n=2)])
        assert dfs.latest_path("out") == "out/attempt-1"

    def test_latest_missing_raises(self):
        with pytest.raises(MapReduceError):
            InMemoryDFS().latest("nope")


class TestCluster:
    def test_round_robin_placement(self):
        cluster = SimulatedCluster(2)
        results = cluster.run_round(
            "p", [lambda i=i: (i, 10) for i in range(4)]
        )
        assert results == [0, 1, 2, 3]
        metrics = cluster.metrics_for("p")
        assert [w.tasks for w in metrics.ledgers] == [2, 2]
        assert [w.cost_units for w in metrics.ledgers] == [20, 20]

    def test_explicit_placement(self):
        cluster = SimulatedCluster(3)
        cluster.run_round(
            "p", [lambda: (1, 5), lambda: (2, 7)], placement=[2, 2]
        )
        metrics = cluster.metrics_for("p")
        assert metrics.ledgers[2].cost_units == 12
        assert metrics.ledgers[0].tasks == 0

    def test_makespan_is_max_worker(self):
        cluster = SimulatedCluster(2)
        cluster.run_round(
            "p",
            [lambda: (None, 100), lambda: (None, 1)],
            placement=[0, 1],
        )
        assert cluster.metrics_for("p").makespan_cost == 100
        assert cluster.metrics_for("p").total_cost == 101

    def test_cost_skew(self):
        cluster = SimulatedCluster(2)
        cluster.run_round(
            "p",
            [lambda: (None, 30), lambda: (None, 10)],
            placement=[0, 1],
        )
        assert cluster.metrics_for("p").cost_skew() == pytest.approx(1.5)

    def test_straggler_injection_inflates_wall_time(self):
        def busy():
            total = 0
            for i in range(20000):
                total += i
            return total, 1

        fast = SimulatedCluster(1)
        slow = SimulatedCluster(1, slowdown_factors=[100.0])
        fast.run_round("p", [busy])
        slow.run_round("p", [busy])
        assert (
            slow.metrics_for("p").makespan_seconds
            > fast.metrics_for("p").makespan_seconds
        )

    def test_validation(self):
        with pytest.raises(MapReduceError):
            SimulatedCluster(0)
        with pytest.raises(MapReduceError):
            SimulatedCluster(2, slowdown_factors=[1.0])
        with pytest.raises(MapReduceError):
            SimulatedCluster(1, slowdown_factors=[-1.0])
        cluster = SimulatedCluster(1)
        with pytest.raises(MapReduceError):
            cluster.run_round("p", [lambda: (1, 1)], placement=[5])
        with pytest.raises(MapReduceError):
            cluster.metrics_for("never-ran")

    def test_empty_round_has_metrics(self):
        cluster = SimulatedCluster(2)
        cluster.run_round("empty", [])
        assert cluster.metrics_for("empty").makespan_cost == 0


class TestWorkerFailure:
    def test_failed_workers_do_no_work(self):
        cluster = SimulatedCluster(4, failed_workers=[1, 2])
        cluster.run_round("p", [lambda: (1, 10) for _ in range(8)])
        metrics = cluster.metrics_for("p")
        assert metrics.ledgers[1].tasks == 0
        assert metrics.ledgers[2].tasks == 0
        assert sum(w.tasks for w in metrics.ledgers) == 8
        assert metrics.total_cost == 80

    def test_rerouting_spreads_over_survivors(self):
        cluster = SimulatedCluster(4, failed_workers=[0])
        cluster.run_round("p", [lambda: (1, 1) for _ in range(8)])
        metrics = cluster.metrics_for("p")
        survivors = [metrics.ledgers[w].tasks for w in (1, 2, 3)]
        assert max(survivors) - min(survivors) <= 1

    def test_results_unaffected(self):
        cluster = SimulatedCluster(3, failed_workers=[2])
        results = cluster.run_round(
            "p", [lambda i=i: (i, 1) for i in range(5)]
        )
        assert results == [0, 1, 2, 3, 4]

    def test_all_placements_on_failed_workers_keep_task_order(self):
        # Regression: every task of the round pinned to a failed worker
        # must still come back in task order, spread over survivors.
        cluster = SimulatedCluster(4, failed_workers=[0, 1])
        results = cluster.run_round(
            "p",
            [lambda i=i: (i, 1) for i in range(6)],
            placement=[0, 1, 0, 1, 0, 1],
        )
        assert results == list(range(6))
        metrics = cluster.metrics_for("p")
        assert metrics.ledgers[0].tasks == 0
        assert metrics.ledgers[1].tasks == 0
        assert metrics.ledgers[2].tasks == 3
        assert metrics.ledgers[3].tasks == 3
        assert all(w in (2, 3) for w in metrics.placements)

    def test_validation(self):
        with pytest.raises(MapReduceError):
            SimulatedCluster(2, failed_workers=[5])
        with pytest.raises(MapReduceError):
            SimulatedCluster(2, failed_workers=[0, 1])


class TestSpeculativeExecution:
    @staticmethod
    def busy_task(loops):
        def task():
            total = 0
            for i in range(loops):
                total += i
            return total, 1

        return task

    def test_speculation_rescues_environmental_straggler(self):
        # One worker 50x slower; all tasks the same size.  With
        # speculation, the slow worker's tasks re-run on fast workers.
        tasks = [self.busy_task(30_000) for _ in range(8)]
        plain = SimulatedCluster(4, slowdown_factors=[50.0, 1, 1, 1])
        spec = SimulatedCluster(
            4, slowdown_factors=[50.0, 1, 1, 1], speculative=True
        )
        plain.run_round("p", list(tasks))
        spec.run_round("p", list(tasks))
        m_plain = plain.metrics_for("p")
        m_spec = spec.metrics_for("p")
        assert m_spec.makespan_seconds < m_plain.makespan_seconds
        assert m_spec.speculative_copies > 0

    def test_speculation_cannot_fix_algorithmic_skew(self):
        # One giant task on a healthy cluster: re-executing it elsewhere
        # gains nothing, so no speculative copies happen.
        tasks = [self.busy_task(200_000)] + [
            self.busy_task(2_000) for _ in range(3)
        ]
        spec = SimulatedCluster(4, speculative=True)
        spec.run_round("p", tasks)
        metrics = spec.metrics_for("p")
        assert metrics.speculative_copies == 0

    def test_speculation_disabled_by_default(self):
        cluster = SimulatedCluster(2, slowdown_factors=[100.0, 1.0])
        cluster.run_round("p", [self.busy_task(20_000)] * 4)
        assert cluster.metrics_for("p").speculative_copies == 0

    def test_threshold_validation(self):
        with pytest.raises(MapReduceError):
            SimulatedCluster(2, speculation_threshold=1.0)

    def test_results_unaffected_by_speculation(self):
        spec = SimulatedCluster(
            2, slowdown_factors=[10.0, 1.0], speculative=True
        )
        results = spec.run_round(
            "p", [lambda i=i: (i, 1) for i in range(6)]
        )
        assert results == list(range(6))
