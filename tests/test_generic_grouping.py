"""Unit and integration tests for generalized dominance grouping."""

import numpy as np
import pytest

from repro import run_plan
from repro.core.exceptions import ConfigurationError
from repro.core.skyline import is_skyline_of
from repro.data.synthetic import anticorrelated, independent
from repro.partitioning import get_partitioner, reservoir_sample
from repro.partitioning.generic_grouping import (
    GroupedPartitioner,
    GroupedRule,
)
from repro.partitioning.random_part import RandomRule
from repro.zorder.encoding import quantize_dataset


def fitted(base="grid", n=2000, num_groups=8, seed=0):
    ds = independent(n, 4, seed=seed)
    snapped, codec = quantize_dataset(ds, bits_per_dim=8)
    sample = reservoir_sample(snapped, ratio=0.1, seed=seed)
    rule = GroupedPartitioner(base).fit(sample, codec, num_groups)
    return rule, snapped, codec


class TestGroupedRule:
    def test_wraps_base_assignment(self):
        base = RandomRule(4)
        rule = GroupedRule(base, [0, 0, 1, 1])
        ids = np.arange(8)
        gids = rule.assign_groups(np.zeros((8, 2)), ids)
        assert gids.tolist() == [0, 0, 1, 1, 0, 0, 1, 1]
        assert rule.num_groups == 2

    def test_group_map_validation(self):
        base = RandomRule(4)
        with pytest.raises(ConfigurationError):
            GroupedRule(base, [0, 1])
        with pytest.raises(ConfigurationError):
            GroupedRule(base, [0, 1, 2, -1])

    def test_describe(self):
        rule, _, _ = fitted()
        info = rule.describe()
        assert info["base"] == "GridRule"
        assert info["num_partitions"] > info["num_groups"]


class TestGroupedPartitioner:
    def test_registry_names(self):
        assert get_partitioner("grid-grouped") is not None
        assert get_partitioner("angle-grouped") is not None

    def test_expansion_validation(self):
        with pytest.raises(ConfigurationError):
            GroupedPartitioner("grid", expansion=0)

    def test_groups_fewer_than_partitions(self):
        rule, snapped, _ = fitted()
        assert rule.num_groups < rule.base.num_groups

    def test_every_point_routed(self):
        rule, snapped, _ = fitted()
        gids = rule.assign_groups(snapped.points, snapped.ids)
        assert (gids >= 0).all()
        assert (gids < rule.num_groups).all()

    def test_angle_base(self):
        rule, snapped, _ = fitted(base="angle")
        gids = rule.assign_groups(snapped.points, snapped.ids)
        assert (gids >= 0).all()


class TestEndToEnd:
    @pytest.mark.parametrize(
        "plan", ["Grid-Grouped+ZS+ZM", "AngleG+ZS+ZM"]
    )
    @pytest.mark.parametrize("gen", [independent, anticorrelated])
    def test_exact(self, plan, gen):
        ds = gen(1500, 4, seed=3)
        snapped, _ = quantize_dataset(ds, bits_per_dim=10)
        report = run_plan(
            plan, ds, num_groups=8, num_workers=4, bits_per_dim=10, seed=0
        )
        assert is_skyline_of(report.skyline.points, snapped.points)

    def test_prefilter_active_for_grouped_variants(self):
        from repro.pipeline.plans import parse_plan

        assert parse_plan("GridG+ZS").prefilter is True
        assert parse_plan("Grid+ZS").prefilter is False
