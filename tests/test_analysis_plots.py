"""Unit tests for the ASCII scatter plot."""

import numpy as np
import pytest

from repro.analysis import ascii_scatter
from repro.core.exceptions import DatasetError


class TestAsciiScatter:
    def test_contains_markers_and_frame(self):
        rng = np.random.default_rng(0)
        pts = rng.random((50, 2))
        text = ascii_scatter(pts, width=30, height=10)
        assert "*" in text and "." in text
        assert text.count("|") == 2 * 10
        assert "skyline" in text

    @staticmethod
    def body(text):
        return "".join(
            line for line in text.splitlines() if line.startswith("|")
        )

    def test_respects_given_skyline(self):
        pts = np.array([[0.0, 0.0], [1.0, 1.0]])
        text = ascii_scatter(pts, skyline_indices=[0], width=10, height=5)
        assert self.body(text).count("*") == 1
        assert self.body(text).count(".") == 1

    def test_higher_dimensional_projection(self):
        rng = np.random.default_rng(1)
        pts = rng.random((40, 5))
        text = ascii_scatter(pts, dims=(2, 4), width=20, height=8)
        assert "dim 2" in text and "dim 4" in text

    def test_constant_dimension(self):
        pts = np.array([[0.0, 3.0], [1.0, 3.0], [0.5, 3.0]])
        text = ascii_scatter(pts, width=10, height=4)
        assert "*" in text

    def test_single_point(self):
        text = ascii_scatter(np.array([[1.0, 2.0]]), width=5, height=3)
        assert self.body(text).count("*") == 1

    def test_validation(self):
        with pytest.raises(DatasetError):
            ascii_scatter(np.empty((0, 2)))
        with pytest.raises(DatasetError):
            ascii_scatter(np.zeros((3, 2)), dims=(0,))
        with pytest.raises(DatasetError):
            ascii_scatter(np.zeros((3, 2)), dims=(0, 5))
        with pytest.raises(DatasetError):
            ascii_scatter(np.zeros((3, 2)), width=1)

    def test_frontier_hugs_bottom_left(self):
        # Anti-diagonal frontier: the staircase should put skyline
        # markers in the lower-left region rows.
        rng = np.random.default_rng(2)
        base = rng.random((200, 2))
        pts = np.vstack([base + 0.5, np.array([[0.0, 0.0]])])
        text = ascii_scatter(pts, width=40, height=12)
        body = [
            line for line in text.splitlines() if line.startswith("|")
        ]
        # The dominating origin point renders in the last (lowest) row.
        assert "*" in body[-1]
