"""Unit tests for the skyline query extensions."""

import numpy as np
import pytest

from repro.core.exceptions import DatasetError
from repro.core.point import dominates
from repro.core.skyline import is_skyline_of, skyline_indices_oracle
from repro.extensions import (
    dominance_scores,
    k_dominant_skyline,
    k_dominates,
    rank_skyline,
    skycube,
    subspace_skyline,
    top_k_skyline,
)


class TestKDominates:
    def test_full_k_is_regular_dominance(self):
        rng = np.random.default_rng(1)
        for _ in range(100):
            p, q = rng.integers(0, 4, (2, 4)).astype(float)
            assert k_dominates(p, q, 4) == dominates(p, q)

    def test_partial_k(self):
        p = np.array([1.0, 1.0, 9.0])
        q = np.array([2.0, 2.0, 0.0])
        assert not k_dominates(p, q, 3)
        assert k_dominates(p, q, 2)
        assert k_dominates(q, p, 1)

    def test_equal_points_never_dominate(self):
        p = np.array([1.0, 2.0])
        assert not k_dominates(p, p, 1)

    def test_k_validation(self):
        with pytest.raises(DatasetError):
            k_dominates(np.zeros(3), np.ones(3), 0)
        with pytest.raises(DatasetError):
            k_dominates(np.zeros(3), np.ones(3), 4)


class TestKDominantSkyline:
    def brute_force(self, pts, k):
        keep = []
        for i in range(pts.shape[0]):
            if not any(
                k_dominates(pts[j], pts[i], k)
                for j in range(pts.shape[0])
                if j != i
            ):
                keep.append(i)
        return keep

    def test_matches_bruteforce(self):
        rng = np.random.default_rng(2)
        pts = rng.integers(0, 5, (60, 4)).astype(float)
        for k in (2, 3, 4):
            got_pts, got_ids = k_dominant_skyline(pts, k)
            assert got_ids.tolist() == self.brute_force(pts, k)

    def test_k_equals_d_is_regular_skyline(self):
        rng = np.random.default_rng(3)
        pts = rng.integers(0, 8, (100, 3)).astype(float)
        got, _ = k_dominant_skyline(pts, 3)
        assert is_skyline_of(got, pts)

    def test_shrinks_as_k_decreases(self):
        rng = np.random.default_rng(4)
        pts = rng.integers(0, 16, (150, 5)).astype(float)
        sizes = [
            k_dominant_skyline(pts, k)[0].shape[0] for k in (5, 4, 3)
        ]
        assert sizes[0] >= sizes[1] >= sizes[2]

    def test_empty_input(self):
        got, ids = k_dominant_skyline(np.empty((0, 3)), 2)
        assert got.shape[0] == 0

    def test_ids_preserved(self):
        pts = np.array([[1.0, 1.0], [5.0, 5.0]])
        got, ids = k_dominant_skyline(pts, 2, ids=np.array([42, 43]))
        assert ids.tolist() == [42]


class TestRanking:
    def setup_data(self):
        rng = np.random.default_rng(5)
        pts = rng.random((200, 3)) * 16
        idx = skyline_indices_oracle(pts)
        assert len(idx) >= 5  # continuous draws give a rich skyline
        return pts, pts[idx], idx.astype(np.int64)

    def test_dominance_scores(self):
        data = np.array([[0.0, 0.0], [1.0, 1.0], [2.0, 2.0], [0.0, 9.0]])
        # [0,0] dominates all three others ([0,9] included: equal in one
        # dimension, strictly better in the other).
        scores = dominance_scores(data[:1], data)
        assert scores.tolist() == [3]

    def test_rank_by_dominance_descending(self):
        pts, sky, ids = self.setup_data()
        _, _, scores = rank_skyline(sky, ids, pts, method="dominance")
        assert np.all(np.diff(scores) <= 0)

    def test_rank_by_sum_ascending(self):
        pts, sky, ids = self.setup_data()
        ranked, _, scores = rank_skyline(sky, ids, method="sum")
        assert np.all(np.diff(scores) >= 0)
        assert np.allclose(ranked.sum(axis=1), scores)

    def test_rank_weighted(self):
        pts, sky, ids = self.setup_data()
        _, _, scores = rank_skyline(
            sky, ids, method="weighted", weights=[1.0, 0.0, 0.0]
        )
        assert np.all(np.diff(scores) >= 0)

    def test_rank_validation(self):
        pts, sky, ids = self.setup_data()
        with pytest.raises(DatasetError):
            rank_skyline(sky, ids, method="dominance")
        with pytest.raises(DatasetError):
            rank_skyline(sky, ids, method="weighted")
        with pytest.raises(DatasetError):
            rank_skyline(sky, ids, method="nope")
        with pytest.raises(DatasetError):
            rank_skyline(sky, ids[:1], method="sum")

    def test_top_k_coverage_greedy(self):
        pts, sky, ids = self.setup_data()
        chosen, chosen_ids = top_k_skyline(sky, ids, pts, 3)
        assert chosen.shape[0] == 3
        # Chosen ids are skyline ids.
        assert set(chosen_ids.tolist()) <= set(ids.tolist())

    def test_top_k_caps_at_skyline_size(self):
        pts = np.array([[0.0, 1.0], [1.0, 0.0], [5.0, 5.0]])
        idx = skyline_indices_oracle(pts)
        chosen, _ = top_k_skyline(pts[idx], idx, pts, 99)
        assert chosen.shape[0] == 2

    def test_top_k_validation(self):
        pts = np.array([[0.0, 1.0]])
        with pytest.raises(DatasetError):
            top_k_skyline(pts, np.array([0]), pts, 0)


class TestSubspace:
    def test_subspace_matches_oracle_on_projection(self):
        rng = np.random.default_rng(6)
        pts = rng.integers(0, 8, (80, 4)).astype(float)
        got, ids = subspace_skyline(pts, [1, 3])
        expected = skyline_indices_oracle(pts[:, [1, 3]])
        assert ids.tolist() == expected.tolist()
        # Full-width rows come back.
        assert got.shape[1] == 4

    def test_full_space_equals_regular_skyline(self):
        rng = np.random.default_rng(7)
        pts = rng.integers(0, 8, (80, 3)).astype(float)
        got, _ = subspace_skyline(pts, [0, 1, 2])
        assert is_skyline_of(got, pts)

    def test_validation(self):
        pts = np.zeros((3, 2))
        with pytest.raises(DatasetError):
            subspace_skyline(pts, [])
        with pytest.raises(DatasetError):
            subspace_skyline(pts, [0, 0])
        with pytest.raises(DatasetError):
            subspace_skyline(pts, [5])

    def test_skycube_enumerates_subsets(self):
        rng = np.random.default_rng(8)
        pts = rng.integers(0, 8, (40, 3)).astype(float)
        cube = skycube(pts)
        assert len(cube) == 7  # 2^3 - 1 cuboids
        assert (0,) in cube and (0, 1, 2) in cube

    def test_skycube_size_limit(self):
        rng = np.random.default_rng(9)
        pts = rng.integers(0, 8, (40, 4)).astype(float)
        cube = skycube(pts, max_subspace_size=2)
        assert all(len(dims) <= 2 for dims in cube)
        assert len(cube) == 4 + 6

    def test_skycube_containment_property(self):
        # Any full-space skyline member is in some subspace skyline
        # union is not generally true, but single-dimension minima are
        # always subspace skyline members — check that instead.
        rng = np.random.default_rng(10)
        pts = rng.random((50, 3))
        cube = skycube(pts, max_subspace_size=1)
        for dim in range(3):
            best = int(np.argmin(pts[:, dim]))
            assert best in cube[(dim,)].tolist()

    def test_skycube_validation(self):
        pts = np.zeros((3, 2))
        with pytest.raises(DatasetError):
            skycube(pts, max_subspace_size=0)
