"""Unit tests for the per-figure experiment functions (tiny scale).

These guard the CLI `experiment` paths: every function must run with
overridden (minimal) parameters and produce a well-formed table.  The
shape assertions live in benchmarks/; here we only check plumbing.
"""


from repro.bench import ablations, experiments
from repro.bench.harness import BenchScale

TINY = BenchScale(0.02)


class TestFigureFunctions:
    def test_fig7_size_sweep(self):
        table = experiments.fig7_size_sweep(
            "independent", scale=TINY, sizes_m=(10,),
            plans=("Grid+SB", "ZDG+ZS+ZM"), num_groups=4,
        )
        assert len(table) == 2
        assert set(table.column("plan")) == {"Grid+SB", "ZDG+ZS+ZM"}

    def test_fig7_dims_sweep(self):
        table = experiments.fig7_dims_sweep(
            "independent", scale=TINY, dims=(2, 3),
            plans=("ZDG+ZS+ZM",), num_groups=4,
        )
        assert table.column("d") == [2, 3]

    def test_fig8_sweeps(self):
        table = experiments.fig8_merge_size_sweep(
            "independent", scale=TINY, sizes_m=(20,),
            plans=("ZDG+ZS+ZM",), num_groups=4,
        )
        assert table.rows[0]["merge_cost"] > 0
        table = experiments.fig8_merge_dims_sweep(
            "independent", scale=TINY, dims=(3,),
            plans=("ZDG+ZS+ZM",), num_groups=4,
        )
        assert len(table) == 1

    def test_fig9(self):
        table = experiments.fig9_candidates(
            "independent", scale=TINY, sizes_m=(20,),
            plans=("Grid+ZS", "ZDG+ZS"), num_groups=4,
        )
        for row in table.rows:
            assert row["skyline"] <= row["candidates"]

    def test_fig10(self):
        table = experiments.fig10_partition_count_sweep(
            scale=TINY, group_counts=(4, 8), plans=("ZDG+ZS+ZM",),
        )
        assert table.column("M") == [4, 8]

    def test_fig12(self):
        table = experiments.fig12_scalability(
            scale=TINY, sizes_m=(2,), plans=("ZDG+ZS+ZM",),
        )
        assert table.rows[0]["total_cost"] >= table.rows[0]["makespan_cost"]

    def test_fig13(self):
        table = experiments.fig13_sampling(
            scale=TINY, ratios=(0.02,), plans=("ZDG+ZS+ZM",),
        )
        assert table.rows[0]["preprocess_s"] >= 0

    def test_load_balance(self):
        table = experiments.load_balance_metrics(
            scale=TINY, plans=("ZDG+ZS",)
        )
        assert table.rows[0]["reducer_skew"] >= 1.0

    def test_pruning_analysis(self):
        table = experiments.pruning_analysis(scale=TINY, num_groups=4)
        assert len(table) == 3


class TestAblationFunctions:
    def test_prefilter(self):
        table = ablations.prefilter_ablation(scale=TINY, num_groups=4)
        assert set(table.column("prefilter")) == {True, False}

    def test_expansion(self):
        table = ablations.expansion_ablation(
            scale=TINY, expansions=(1, 2), num_groups=4
        )
        assert table.column("delta") == [1, 2]

    def test_bits(self):
        table = ablations.bits_ablation(scale=TINY, bit_widths=(4, 8))
        assert table.column("bits") == [4, 8]

    def test_tree_geometry(self):
        table = ablations.tree_geometry_ablation(
            scale=TINY, geometries=((8, 4),)
        )
        assert table.rows[0]["height"] >= 1

    def test_parallel_merge(self):
        table = ablations.parallel_merge_ablation(scale=TINY, num_groups=4)
        assert set(table.column("merge")) == {"ZM", "ZMP"}

    def test_grouping_source(self):
        table = ablations.grouping_source_ablation(
            scale=TINY, num_groups=4
        )
        assert len(table) == 6

    def test_local_algorithms(self):
        table = ablations.local_algorithm_ablation(scale=TINY)
        assert len(table) == 18  # 3 distributions x 6 algorithms
