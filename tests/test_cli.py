"""Unit tests for the command-line interface."""


import pytest

from repro.cli import EXPERIMENTS, build_parser, main


class TestParser:
    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.plan == "ZDG+ZS+ZM"
        assert args.num_points == 20_000

    def test_experiment_names_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "fig99"])

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_every_registered_experiment_is_parseable(self):
        for name in EXPERIMENTS:
            args = build_parser().parse_args(["experiment", name])
            assert args.name == name


class TestCommands:
    def test_run_prints_summary(self, capsys):
        code = main(
            ["run", "-n", "400", "-d", "3", "--groups", "4",
             "--workers", "2"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "skyline" in out
        assert "total_s" in out

    def test_run_exports_trace_and_metrics(self, capsys, tmp_path):
        trace = tmp_path / "trace.jsonl"
        metrics = tmp_path / "metrics.jsonl"
        code = main(
            ["run", "-n", "400", "-d", "3", "--groups", "4",
             "--workers", "2",
             "--trace-out", str(trace), "--metrics-out", str(metrics)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert f"wrote {trace}" in out
        assert f"wrote {metrics}" in out
        from repro.observability import load_trace_jsonl

        names = {row["name"] for row in load_trace_jsonl(str(trace))}
        assert {"run", "preprocess", "phase1", "phase2"} <= names

    def test_supervised_run_exports_trace(self, capsys, tmp_path):
        trace = tmp_path / "trace.jsonl"
        code = main(
            ["run", "-n", "400", "-d", "3", "--groups", "4",
             "--workers", "2",
             "--checkpoint-dir", str(tmp_path / "ckpt"),
             "--trace-out", str(trace)]
        )
        assert code == 0
        assert trace.exists()

    def test_run_gpmrs_plan(self, capsys):
        code = main(
            ["run", "--plan", "MR-GPMRS", "-n", "400", "-d", "3",
             "--groups", "4", "--workers", "2"]
        )
        assert code == 0
        assert "MR-GPMRS" in capsys.readouterr().out

    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig7a" in out
        assert "fig13" in out

    def test_experiment_with_csv_output(self, capsys, tmp_path,
                                        monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "0.02")
        code = main(
            ["experiment", "pruning", "--csv-dir", str(tmp_path)]
        )
        assert code == 0
        assert (tmp_path / "pruning.csv").exists()
        out = capsys.readouterr().out
        assert "Pruning analysis" in out

    def test_analyze_command(self, capsys):
        code = main(["analyze", "-n", "500", "-d", "8"])
        assert code == 0
        out = capsys.readouterr().out
        assert "recommended plan" in out
        assert "skyline_fraction" in out

    def test_analyze_csv_input(self, capsys, tmp_path):
        from repro.data.io import save_csv
        from repro.data.synthetic import independent

        path = str(tmp_path / "d.csv")
        save_csv(independent(300, 3, seed=0), path)
        code = main(["analyze", "--csv", path])
        assert code == 0
        assert "recommended plan" in capsys.readouterr().out

    def test_estimate_command(self, capsys):
        code = main(["estimate", "-n", "2000", "-d", "3"])
        assert code == 0
        out = capsys.readouterr().out
        assert "independence formula" in out
        assert "capture-recapture" in out

    def test_stream_bench_command(self, capsys, tmp_path):
        latency = tmp_path / "latency.jsonl"
        metrics = tmp_path / "metrics.jsonl"
        code = main(
            ["stream-bench", "-n", "300", "-d", "3", "--bits", "8",
             "--records", "400", "--batch-size", "32", "--window", "200",
             "--subscribers", "1", "--slow-subscribers", "1",
             "--readers", "1",
             "--latency-out", str(latency),
             "--metrics-out", str(metrics)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "ingest_records_per_s" in out
        assert "replay_sound        : True" in out
        assert latency.exists() and metrics.exists()

    def test_stream_bench_gate_failure_exits_nonzero(self, capsys):
        code = main(
            ["stream-bench", "-n", "200", "-d", "3", "--bits", "8",
             "--records", "100", "--batch-size", "50",
             "--subscribers", "1", "--slow-subscribers", "0",
             "--readers", "0",
             "--min-ingest-per-sec", "1e9"]
        )
        assert code == 1
        assert "GATE FAILED" in capsys.readouterr().err
