"""Unit tests for the benchmark harness."""

import pytest

from repro.bench.harness import BenchScale, ResultTable, run_plan_measured
from repro.data.synthetic import independent


class TestBenchScale:
    def test_size_mapping(self):
        scale = BenchScale(factor=1.0)
        assert scale.size(10) == 10_000
        assert scale.size(110) == 110_000

    def test_scaling_factor(self):
        assert BenchScale(factor=0.5).size(10) == 5_000

    def test_floor(self):
        assert BenchScale(factor=0.01).size(2) == 500

    def test_from_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "0.7")
        assert BenchScale.from_env().factor == 0.7

    def test_from_env_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_SCALE", raising=False)
        assert BenchScale.from_env().factor == 0.2

    def test_from_env_garbage(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "banana")
        assert BenchScale.from_env().factor == 0.2


class TestResultTable:
    def make(self):
        table = ResultTable("demo", ["x", "plan", "y"])
        table.add(x=1, plan="A", y=10)
        table.add(x=1, plan="B", y=20)
        table.add(x=2, plan="A", y=30)
        return table

    def test_add_and_len(self):
        assert len(self.make()) == 3

    def test_unknown_column_rejected(self):
        table = ResultTable("demo", ["x"])
        with pytest.raises(KeyError):
            table.add(x=1, bogus=2)

    def test_missing_column_defaults_empty(self):
        table = ResultTable("demo", ["x", "y"])
        table.add(x=1)
        assert table.rows[0]["y"] == ""

    def test_column(self):
        assert self.make().column("y") == [10, 20, 30]

    def test_select(self):
        sel = self.make().select(plan="A")
        assert len(sel) == 2
        assert sel.column("y") == [10, 30]

    def test_render_contains_everything(self):
        text = self.make().render()
        assert "demo" in text
        assert "plan" in text
        assert "30" in text

    def test_render_empty_table(self):
        assert "demo" in ResultTable("demo", ["x"]).render()

    def test_to_csv(self, tmp_path):
        path = tmp_path / "t.csv"
        self.make().to_csv(str(path))
        lines = path.read_text().strip().splitlines()
        assert lines[0] == "x,plan,y"
        assert len(lines) == 4


class TestRunPlanMeasured:
    def test_regular_plan(self):
        report = run_plan_measured(
            "ZHG+ZS", independent(400, 3, seed=0), num_groups=4,
            num_workers=2,
        )
        assert report.skyline_size > 0

    def test_gpmrs_alias(self):
        report = run_plan_measured(
            "MR-GPMRS", independent(400, 3, seed=0), num_groups=4,
            num_workers=2,
        )
        assert report.plan.label == "MR-GPMRS"
        assert report.skyline_size > 0
