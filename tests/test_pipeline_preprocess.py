"""Unit tests for the phase-0 preprocessing step."""

import numpy as np
import pytest

from repro.core.skyline import skyline_indices_oracle
from repro.data.synthetic import independent
from repro.mapreduce.cache import DistributedCache
from repro.pipeline.preprocess import (
    CACHE_CODEC,
    CACHE_RULE,
    CACHE_SAMPLE_SKYLINE,
    CACHE_SZB_TREE,
    preprocess,
)
from repro.zorder.encoding import quantize_dataset


@pytest.fixture(scope="module")
def snapped_and_codec():
    ds = independent(3000, 4, seed=9)
    return quantize_dataset(ds, bits_per_dim=8)


@pytest.mark.parametrize(
    "name", ["random", "grid", "angle", "naive-z", "zhg", "zdg"]
)
def test_preprocess_each_partitioner(snapped_and_codec, name):
    snapped, codec = snapped_and_codec
    result = preprocess(snapped, codec, name, 8, sample_ratio=0.05, seed=1)
    assert result.rule.num_groups >= 1
    assert result.seconds >= 0.0
    assert result.details["partitioner"] == name
    assert result.sample.size == 150


def test_sample_skyline_is_correct(snapped_and_codec):
    snapped, codec = snapped_and_codec
    result = preprocess(snapped, codec, "naive-z", 8, sample_ratio=0.05)
    expected_idx = skyline_indices_oracle(result.sample.points)
    assert result.sample_skyline.shape[0] == len(expected_idx)
    assert result.szb_tree.size == len(expected_idx)


def test_publish_ships_all_artifacts(snapped_and_codec):
    snapped, codec = snapped_and_codec
    result = preprocess(snapped, codec, "zdg", 8)
    cache = DistributedCache()
    result.publish(cache)
    for key in (CACHE_RULE, CACHE_CODEC, CACHE_SAMPLE_SKYLINE, CACHE_SZB_TREE):
        assert key in cache


def test_deterministic_given_seed(snapped_and_codec):
    snapped, codec = snapped_and_codec
    a = preprocess(snapped, codec, "zdg", 8, seed=5)
    b = preprocess(snapped, codec, "zdg", 8, seed=5)
    assert np.array_equal(a.sample_skyline, b.sample_skyline)
    assert a.rule.pivots == b.rule.pivots


def test_expansion_forwarded_to_grouping(snapped_and_codec):
    snapped, codec = snapped_and_codec
    small = preprocess(snapped, codec, "zhg", 4, expansion=2)
    large = preprocess(snapped, codec, "zhg", 4, expansion=8)
    assert large.rule.num_partitions > small.rule.num_partitions
