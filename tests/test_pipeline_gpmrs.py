"""Integration tests for the MR-GPMRS baseline pipeline."""

import pytest

from repro import EngineConfig, run_gpmrs
from repro.core.skyline import is_skyline_of
from repro.data.synthetic import anticorrelated, correlated, independent
from repro.pipeline.plans import parse_plan
from repro.zorder.encoding import quantize_dataset


def config(**kwargs):
    defaults = dict(
        plan=parse_plan("Grid+SB"), num_groups=16, num_workers=4,
        bits_per_dim=10,
    )
    defaults.update(kwargs)
    return EngineConfig(**defaults)


@pytest.mark.parametrize("dist_fn", [independent, correlated, anticorrelated])
def test_gpmrs_exact(dist_fn):
    ds = dist_fn(1500, 4, seed=21)
    snapped, _ = quantize_dataset(ds, bits_per_dim=10)
    report = run_gpmrs(ds, config())
    assert is_skyline_of(report.skyline.points, snapped.points)


def test_gpmrs_label():
    ds = independent(500, 3, seed=22)
    report = run_gpmrs(ds, config(num_groups=8))
    assert report.plan.label == "MR-GPMRS"


def test_gpmrs_uses_multiple_merge_reducers():
    ds = independent(2000, 4, seed=23)
    report = run_gpmrs(ds, config())
    busy = [w for w in report.phase2.reduce_metrics.ledgers if w.tasks > 0]
    assert len(busy) > 1


def test_gpmrs_replication_inflates_shuffle():
    # The bitstring merge replicates candidate blocks to every reachable
    # cell, so phase-2 shuffle exceeds the candidate count.
    ds = independent(2000, 3, seed=24)
    report = run_gpmrs(ds, config(num_groups=8))
    assert report.phase2.shuffle_records >= report.num_candidates


def test_gpmrs_high_dimensions():
    ds = independent(600, 8, seed=25)
    snapped, _ = quantize_dataset(ds, bits_per_dim=8)
    report = run_gpmrs(ds, config(bits_per_dim=8, num_groups=32))
    assert is_skyline_of(report.skyline.points, snapped.points)
