"""Unit tests for CSV dataset import/export."""

import numpy as np
import pytest

from repro.core.dataset import Dataset
from repro.core.exceptions import DatasetError
from repro.data.io import load_csv, save_csv


@pytest.fixture
def dataset() -> Dataset:
    rng = np.random.default_rng(0)
    return Dataset(rng.random((20, 3)), ids=np.arange(100, 120), name="x")


class TestRoundTrip:
    def test_with_ids(self, dataset, tmp_path):
        path = str(tmp_path / "data.csv")
        save_csv(dataset, path)
        back = load_csv(path)
        assert np.array_equal(back.points, dataset.points)
        assert np.array_equal(back.ids, dataset.ids)

    def test_without_ids(self, dataset, tmp_path):
        path = str(tmp_path / "data.csv")
        save_csv(dataset, path, include_ids=False)
        back = load_csv(path)
        assert np.array_equal(back.points, dataset.points)
        assert back.ids.tolist() == list(range(20))

    def test_custom_column_names(self, dataset, tmp_path):
        path = str(tmp_path / "data.csv")
        save_csv(dataset, path, column_names=["a", "b", "c"])
        header = open(path).readline().strip()
        assert header == "id,a,b,c"

    def test_exact_float_precision(self, tmp_path):
        values = np.array([[0.1 + 0.2, 1e-17, 123456789.123456]])
        ds = Dataset(values)
        path = str(tmp_path / "data.csv")
        save_csv(ds, path)
        back = load_csv(path)
        assert np.array_equal(back.points, values)


class TestValidation:
    def test_wrong_column_name_count(self, dataset, tmp_path):
        with pytest.raises(DatasetError):
            save_csv(dataset, str(tmp_path / "x.csv"), column_names=["a"])

    def test_reserved_id_name(self, dataset, tmp_path):
        with pytest.raises(DatasetError):
            save_csv(
                dataset, str(tmp_path / "x.csv"),
                column_names=["id", "b", "c"],
            )

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(DatasetError):
            load_csv(str(path))

    def test_header_only(self, tmp_path):
        path = tmp_path / "h.csv"
        path.write_text("a,b\n")
        with pytest.raises(DatasetError):
            load_csv(str(path))

    def test_non_numeric(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("a,b\n1.0,banana\n")
        with pytest.raises(DatasetError) as err:
            load_csv(str(path))
        assert "bad.csv:2" in str(err.value)

    def test_ragged_rows(self, tmp_path):
        path = tmp_path / "ragged.csv"
        path.write_text("a,b\n1,2\n3\n")
        with pytest.raises(DatasetError):
            load_csv(str(path))

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "blank.csv"
        path.write_text("a,b\n1,2\n\n3,4\n")
        assert load_csv(str(path)).size == 2
