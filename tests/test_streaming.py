"""The streaming layer: diffs, windows, continuous queries, CDC feed,
and the subscription hub.

The two invariants everything here leans on:

* **window soundness** — at every step, a continuous query's skyline
  equals the brute-force ``bnl_skyline`` over the window's current
  contents (hypothesis-tested below);
* **diff-stream soundness** — folding a subscription's event stream
  over its baseline reconstructs the exact skyline id-set of the
  stream's last version, including under coalescing (slow subscriber)
  and the full-sync fallback (out-of-retention cursor).
"""

import threading
import time

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.bnl import bnl_skyline
from repro.core.exceptions import (
    ConfigurationError,
    DatasetError,
    OverloadedError,
)
from repro.maintenance.window import SlidingWindowSkyline
from repro.observability.metrics import MetricsRegistry
from repro.serving import DatasetRegistry, DriftPolicy
from repro.serving.admission import AdmissionConfig, AdmissionController
from repro.serving.client import SkylineClient
from repro.serving.service import SkylineService
from repro.streaming import (
    ContinuousQueryManager,
    FeedConfig,
    FullSync,
    IngestFeed,
    SkylineDiff,
    SubscriptionHub,
    TimeWindowSkyline,
    WindowSpec,
    replay,
)
from repro.zorder.encoding import ZGridCodec

DIMS = 3
BITS = 5
TOP = 2**BITS


def _codec():
    return ZGridCodec.grid_identity(DIMS, bits_per_dim=BITS)


def _grid(rng, n, d=DIMS):
    return rng.integers(0, TOP, size=(n, d)).astype(np.float64)


def _registry(points, ids=None, **kw):
    registry = DatasetRegistry(keep_versions=8, **kw)
    registry.register(
        "ds", points, ids=ids, codec=_codec(), drift=DriftPolicy.never()
    )
    return registry


def _drain(sub, timeout=0.05):
    events = []
    while True:
        event = sub.get(timeout=timeout)
        if event is None:
            return events
        events.append(event)


def _sky_ids(registry, name="ds"):
    return frozenset(int(i) for i in registry.snapshot(name).sky_ids)


# ----------------------------------------------------------------------
# diffs
# ----------------------------------------------------------------------
class TestSkylineDiff:
    def test_between_and_apply(self):
        diff = SkylineDiff.between("ds", 1, [1, 2, 3], 2, [2, 3, 4, 5])
        assert list(diff.entered_ids) == [4, 5]
        assert list(diff.exited_ids) == [1]
        assert diff.apply(frozenset({1, 2, 3})) == frozenset({2, 3, 4, 5})
        assert diff.size == 3 and not diff.is_empty

    def test_empty_diff_still_advances_version(self):
        diff = SkylineDiff.between("ds", 3, [1], 4, [1])
        assert diff.is_empty
        assert diff.apply(frozenset({1})) == frozenset({1})

    def test_apply_is_strict_about_base(self):
        diff = SkylineDiff.between("ds", 1, [1, 2], 2, [2, 3])
        with pytest.raises(DatasetError):
            diff.apply(frozenset({2}))  # exited id 1 not present
        with pytest.raises(DatasetError):
            diff.apply(frozenset({1, 2, 3}))  # entered id 3 present

    def test_version_must_advance(self):
        with pytest.raises(DatasetError):
            SkylineDiff.between("ds", 2, [1], 2, [2])

    def test_coalesce_nets_out(self):
        # 4 enters at v2 and exits at v3: nets to nothing.
        d1 = SkylineDiff.between("ds", 1, [1, 2], 2, [2, 4])
        d2 = SkylineDiff.between("ds", 2, [2, 4], 3, [2, 5])
        merged = d1.coalesce(d2)
        assert merged.from_version == 1 and merged.to_version == 3
        assert merged.coalesced_from == 2
        assert merged.apply(frozenset({1, 2})) == frozenset({2, 5})
        assert d2.apply(d1.apply(frozenset({1, 2}))) == frozenset({2, 5})

    def test_coalesce_requires_consecutive(self):
        d1 = SkylineDiff.between("ds", 1, [1], 2, [2])
        d3 = SkylineDiff.between("ds", 3, [2], 4, [3])
        with pytest.raises(DatasetError):
            d1.coalesce(d3)

    def test_replay_detects_gap(self):
        d1 = SkylineDiff.between("ds", 0, [], 1, [1])
        d3 = SkylineDiff.between("ds", 2, [1], 3, [2])
        with pytest.raises(DatasetError, match="gap"):
            replay([d1, d3])

    def test_full_sync_resets_cursor(self):
        sync = FullSync("ds", 7, np.asarray([4, 5], dtype=np.int64))
        final, version = replay([sync], initial=frozenset({1, 2}))
        assert final == frozenset({4, 5}) and version == 7


# ----------------------------------------------------------------------
# windows
# ----------------------------------------------------------------------
class TestBatchedExtend:
    def test_extend_matches_append(self):
        rng = np.random.default_rng(1)
        points = _grid(rng, 37)
        one = SlidingWindowSkyline(_codec(), 10)
        two = SlidingWindowSkyline(_codec(), 10)
        appended = [one.append(row) for row in points]
        for chunk in np.array_split(points, 5):
            two.extend(chunk)
        assert two.window_ids() == one.window_ids()
        p1, i1 = one.skyline()
        p2, i2 = two.skyline()
        np.testing.assert_array_equal(np.sort(i1), np.sort(i2))
        assert appended == list(range(37))
        two.verify()

    def test_extend_returns_all_ids_even_self_expired(self):
        window = SlidingWindowSkyline(_codec(), 4)
        rng = np.random.default_rng(2)
        ids = window.extend(_grid(rng, 10))
        # Every batch row got an id, only the tail 4 survived.
        np.testing.assert_array_equal(ids, np.arange(10))
        assert window.window_ids() == (6, 7, 8, 9)
        window.verify()

    def test_extend_empty_and_bad_shape(self):
        window = SlidingWindowSkyline(_codec(), 4)
        assert window.extend(np.empty((0, DIMS))).size == 0
        with pytest.raises(DatasetError):
            window.extend(np.zeros(DIMS))


class TestTimeWindow:
    def test_expiry_is_half_open(self):
        window = TimeWindowSkyline(_codec(), horizon=2.0)
        window.append([1.0, 2.0, 3.0], 10, timestamp=1.0)
        window.append([2.0, 1.0, 3.0], 11, timestamp=2.0)
        # t=3: cutoff is 1.0 — the t=1.0 point is exactly horizon old
        # and expires; the t=2.0 point stays.
        expired = window.append([3.0, 3.0, 1.0], 12, timestamp=3.0)
        assert expired == [10]
        assert window.window_ids() == (11, 12)
        window.verify()

    def test_batch_equals_per_point(self):
        rng = np.random.default_rng(3)
        points = _grid(rng, 30)
        stamps = np.sort(rng.uniform(0, 10, size=30))
        a = TimeWindowSkyline(_codec(), horizon=3.0)
        b = TimeWindowSkyline(_codec(), horizon=3.0)
        for i in range(30):
            a.append(points[i], 100 + i, stamps[i])
        b.extend(points, np.arange(100, 130), stamps)
        assert a.window_ids() == b.window_ids()
        pa, ia = a.skyline()
        pb, ib = b.skyline()
        np.testing.assert_array_equal(np.sort(ia), np.sort(ib))
        a.verify()
        b.verify()

    def test_clock_never_regresses(self):
        window = TimeWindowSkyline(_codec(), horizon=1.0)
        window.append([1.0, 1.0, 1.0], 1, timestamp=5.0)
        with pytest.raises(DatasetError):
            window.append([2.0, 2.0, 2.0], 2, timestamp=4.0)
        with pytest.raises(DatasetError):
            window.advance_to(3.0)

    def test_already_expired_rows_never_inserted(self):
        window = TimeWindowSkyline(_codec(), horizon=1.0)
        expired = window.extend(
            np.asarray([[1.0, 1, 1], [2.0, 2, 2], [3.0, 3, 3]]),
            [1, 2, 3],
            [0.0, 0.5, 9.0],
        )
        # Rows at t=0 and t=0.5 are dead on arrival at now=9.
        assert expired == []
        assert window.window_ids() == (3,)
        window.verify()

    def test_spec_validation(self):
        with pytest.raises(DatasetError):
            WindowSpec.count(0)
        with pytest.raises(DatasetError):
            WindowSpec.time(0.0)
        with pytest.raises(DatasetError):
            WindowSpec("weekly")
        assert WindowSpec.count(5) == WindowSpec.count(5)
        assert WindowSpec.count(5) != WindowSpec.time(5.0)


# ----------------------------------------------------------------------
# continuous queries
# ----------------------------------------------------------------------
class TestContinuousQueries:
    def _stack(self, points):
        registry = _registry(points)
        manager = ContinuousQueryManager().attach(registry)
        return registry, manager

    def test_count_window_matches_bnl(self):
        rng = np.random.default_rng(4)
        registry, manager = self._stack(_grid(rng, 20))
        query = manager.register("lastN", "ds", WindowSpec.count(12))
        next_id = 20
        for _ in range(6):
            batch = _grid(rng, 5)
            ids = list(range(next_id, next_id + 5))
            next_id += 5
            registry.insert("ds", batch, ids)
            window_ids = np.asarray(query.window_ids(), dtype=np.int64)
            assert window_ids.size == min(12, query.records_seen)
            snap = registry.snapshot("ds")
            rows = np.vstack(
                [snap.points[snap.row_of(int(i))] for i in window_ids]
            )
            _, want = bnl_skyline(rows, ids=window_ids)
            _, got = query.skyline()
            np.testing.assert_array_equal(np.sort(got), np.sort(want))
            query.verify()
        assert query.version == registry.version("ds")
        assert query.last_diff is not None

    def test_time_window_expires_on_version_clock(self):
        rng = np.random.default_rng(5)
        registry, manager = self._stack(_grid(rng, 10))
        query = manager.register("recent", "ds", WindowSpec.time(2.0))
        next_id = 10
        for _ in range(5):
            registry.insert("ds", _grid(rng, 3), [next_id, next_id + 1, next_id + 2])
            next_id += 3
        # horizon 2.0 over version clock: only the last two versions'
        # arrivals (3 each) remain in the window.
        assert len(query.window_ids()) == 6
        query.verify()

    def test_deletes_do_not_retract_window(self):
        rng = np.random.default_rng(6)
        registry, manager = self._stack(_grid(rng, 10))
        query = manager.register("lastN", "ds", WindowSpec.count(50))
        registry.insert("ds", _grid(rng, 4), [20, 21, 22, 23])
        registry.delete("ds", [20, 21])
        # The arrival stream saw 4 records; dataset deletes don't
        # rewrite history.
        assert set(query.window_ids()) == {20, 21, 22, 23}

    def test_duplicate_name_rejected(self):
        rng = np.random.default_rng(7)
        registry, manager = self._stack(_grid(rng, 5))
        manager.register("q", "ds", WindowSpec.count(5))
        with pytest.raises(ConfigurationError):
            manager.register("q", "ds", WindowSpec.count(9))

    def test_register_requires_attach(self):
        with pytest.raises(ConfigurationError):
            ContinuousQueryManager().register(
                "q", "ds", WindowSpec.count(5)
            )


# ----------------------------------------------------------------------
# subscription hub
# ----------------------------------------------------------------------
class TestSubscriptionHub:
    def _stack(self, n=30, seed=8, **kw):
        rng = np.random.default_rng(seed)
        registry = _registry(_grid(rng, n), **kw)
        hub = SubscriptionHub(retention=8).attach(registry)
        return rng, registry, hub

    def test_diff_stream_reconstructs_skyline(self):
        rng, registry, hub = self._stack()
        sub = hub.subscribe("ds")
        assert sub.start_version == 1
        next_id = 30
        for i in range(5):
            registry.insert("ds", _grid(rng, 4), range(next_id, next_id + 4))
            next_id += 4
            registry.delete("ds", [i])
        events = _drain(sub)
        assert len(events) == 10  # every publish, empty diffs included
        final, version = replay(
            events, sub.start_sky_ids, sub.start_version
        )
        assert final == _sky_ids(registry)
        assert version == registry.version("ds")

    def test_slow_subscriber_coalesces_not_blocks(self):
        rng, registry, hub = self._stack()
        sub = hub.subscribe("ds", max_pending=2)
        next_id = 30
        for _ in range(12):
            registry.insert("ds", _grid(rng, 3), range(next_id, next_id + 3))
            next_id += 3
        assert sub.pending == 2  # bounded, writer never waited
        assert sub.coalesced == 10
        events = _drain(sub)
        tail = events[-1]
        assert tail.coalesced_from == 11
        final, version = replay(
            events, sub.start_sky_ids, sub.start_version
        )
        assert final == _sky_ids(registry)
        assert version == registry.version("ds")

    def test_subscribe_from_replays_retained_diffs(self):
        rng, registry, hub = self._stack()
        base_version = registry.version("ds")
        base_sky = _sky_ids(registry)
        hub.subscribe("ds").close()  # seeds the hub baseline
        next_id = 30
        for _ in range(4):
            registry.insert("ds", _grid(rng, 3), range(next_id, next_id + 3))
            next_id += 3
        sub = hub.subscribe_from("ds", base_version)
        events = _drain(sub)
        assert all(isinstance(e, SkylineDiff) for e in events)
        final, version = replay(events, base_sky, base_version)
        assert final == _sky_ids(registry)
        assert version == registry.version("ds")
        assert hub.retained_range("ds") == (base_version, version)

    def test_subscribe_from_out_of_retention_full_syncs(self):
        rng, registry, hub = self._stack()
        hub.subscribe("ds").close()
        next_id = 30
        for _ in range(12):  # retention=8: version 1 falls out
            registry.insert("ds", _grid(rng, 2), [next_id, next_id + 1])
            next_id += 2
        sub = hub.subscribe_from("ds", 1)
        events = _drain(sub)
        assert isinstance(events[0], FullSync)
        final, version = replay(events, frozenset(), 1)
        assert final == _sky_ids(registry)
        assert version == registry.version("ds")
        assert sub.full_syncs == 1

    def test_subscribe_from_future_version_rejected(self):
        _, registry, hub = self._stack()
        with pytest.raises(DatasetError):
            hub.subscribe_from("ds", registry.version("ds") + 5)

    def test_subscribe_from_current_version_gets_nothing(self):
        _, registry, hub = self._stack()
        sub = hub.subscribe_from("ds", registry.version("ds"))
        assert sub.get(timeout=0.01) is None

    def test_unsubscribe_stops_delivery(self):
        rng, registry, hub = self._stack()
        sub = hub.subscribe("ds")
        sub.close()
        registry.insert("ds", _grid(rng, 2), [30, 31])
        assert sub.closed
        assert sub.get(timeout=0.01) is None
        assert hub.subscriber_count("ds") == 0

    def test_recovery_republish_emits_no_diff(self, tmp_path):
        rng, registry, hub = self._stack(durability_dir=str(tmp_path))
        sub = hub.subscribe("ds")
        registry.insert("ds", _grid(rng, 2), [30, 31])
        assert len(_drain(sub)) == 1
        version = registry.version("ds")
        registry.recover("ds")  # healthy recover: republish same version
        assert registry.version("ds") == version
        assert _drain(sub) == []  # bit-identical republish, no event

    def test_metrics_counters(self):
        metrics = MetricsRegistry()
        rng = np.random.default_rng(9)
        registry = _registry(_grid(rng, 20), metrics=metrics)
        hub = SubscriptionHub(metrics=metrics).attach(registry)
        sub = hub.subscribe("ds", max_pending=1)
        registry.insert("ds", _grid(rng, 2), [30, 31])
        registry.insert("ds", _grid(rng, 2), [32, 33])
        sub.get(timeout=0.1)
        counters = metrics.counters_as_dict()["streaming"]
        assert counters["subscribers"] == 1
        assert counters["diffs_published"] == 2
        assert counters["diffs_coalesced"] == 1
        assert counters["events_delivered"] == 1


class TestWriterNeverBlocksOnSubscribers:
    """Satellite (b): the publish hook is O(diff) and offers are
    non-blocking, so a stalled/slow subscriber cannot stall mutations
    (the stalled-hook pattern from test_serving_rebuild_pool)."""

    def test_mutations_proceed_while_consumer_blocked_in_get(self):
        rng = np.random.default_rng(10)
        registry = _registry(_grid(rng, 20))
        hub = SubscriptionHub().attach(registry)
        sub = hub.subscribe("ds", max_pending=1)
        waiting = threading.Event()
        got = []

        def consumer():
            waiting.set()
            got.append(sub.get(timeout=10.0))

        thread = threading.Thread(target=consumer, daemon=True)
        thread.start()
        assert waiting.wait(5.0)
        # The consumer is parked inside get(); the writer must not care.
        start = time.monotonic()
        for i in range(20):
            registry.insert("ds", _grid(rng, 2), [100 + 2 * i, 101 + 2 * i])
        elapsed = time.monotonic() - start
        assert elapsed < 2.0, f"writer stalled behind a subscriber ({elapsed:.2f}s)"
        thread.join(5.0)
        assert got and got[0] is not None

    def test_never_draining_subscriber_costs_one_slot(self):
        rng = np.random.default_rng(11)
        registry = _registry(_grid(rng, 20))
        hub = SubscriptionHub().attach(registry)
        sub = hub.subscribe("ds", max_pending=1)  # never drained
        for i in range(30):
            registry.insert("ds", _grid(rng, 1), [100 + i])
        assert registry.version("ds") == 31  # every mutation published
        assert sub.pending == 1
        assert sub.received == 30 and sub.coalesced == 29
        # The coalesced event is still sound.
        [event] = _drain(sub)
        final, _ = replay([event], sub.start_sky_ids, sub.start_version)
        assert final == _sky_ids(registry)

    def test_hook_exception_is_contained(self):
        metrics = MetricsRegistry()
        rng = np.random.default_rng(12)
        registry = _registry(_grid(rng, 10), metrics=metrics)

        def broken(snapshot):
            raise RuntimeError("injected hook failure")

        registry.add_publish_hook(broken)
        registry.insert("ds", _grid(rng, 2), [30, 31])  # must not raise
        assert registry.version("ds") == 2
        counters = metrics.counters_as_dict()["serving"]
        assert counters["publish_hook_errors"] == 1
        registry.remove_publish_hook(broken)
        registry.insert("ds", _grid(rng, 2), [32, 33])
        assert counters["publish_hook_errors"] == 1


# ----------------------------------------------------------------------
# ingest feed
# ----------------------------------------------------------------------
class TestIngestFeed:
    def test_batches_and_autoflush(self):
        rng = np.random.default_rng(13)
        registry = _registry(_grid(rng, 10))
        feed = IngestFeed(registry, "ds", config=FeedConfig(batch_size=4))
        ids = [feed.append(row) for row in _grid(rng, 9)]
        assert ids == list(range(10, 19))  # auto-assigned past max id
        assert feed.pending == 1  # 2 batches of 4 flushed
        assert registry.version("ds") == 3
        feed.flush()
        assert feed.pending == 0
        assert registry.version("ds") == 4
        assert set(int(i) for i in registry.snapshot("ds").ids) == set(
            range(19)
        )

    def test_shed_keeps_buffer_never_drops(self):
        metrics = MetricsRegistry()
        rng = np.random.default_rng(14)
        registry = _registry(_grid(rng, 10))
        admission = AdmissionController(
            AdmissionConfig(max_mutate_queue=0)  # always sheds
        )
        feed = IngestFeed(
            registry,
            "ds",
            admission=admission,
            config=FeedConfig(batch_size=2, on_overload="shed"),
            metrics=metrics,
        )
        feed.append([1.0, 2.0, 3.0])
        with pytest.raises(OverloadedError):
            feed.append([4.0, 5.0, 6.0])  # fills the batch -> flush
        assert feed.pending == 2  # nothing dropped
        assert feed.batches_shed == 1
        counters = metrics.counters_as_dict()["streaming"]
        assert counters["feed_batches_shed"] == 1
        # Capacity returns: the same buffer flushes.
        feed.admission = AdmissionController(AdmissionConfig())
        feed.flush()
        assert feed.pending == 0
        assert feed.records_flushed == 2

    def test_block_waits_out_the_queue(self):
        rng = np.random.default_rng(15)
        registry = _registry(_grid(rng, 10))
        admission = AdmissionController(AdmissionConfig(max_mutate_queue=1))
        # Occupy the single queue slot, release it shortly after.
        ticket = admission.admit("mutate")

        def release():
            time.sleep(0.05)
            admission.started(ticket)
            admission.finished(ticket)

        threading.Thread(target=release, daemon=True).start()
        feed = IngestFeed(
            registry,
            "ds",
            admission=admission,
            config=FeedConfig(
                batch_size=2, on_overload="block", block_max_seconds=5.0
            ),
        )
        feed.append([1.0, 2.0, 3.0])
        feed.append([4.0, 5.0, 6.0])
        assert feed.pending == 0
        assert feed.batches_shed == 0

    def test_windowed_feed_expires_via_ordinary_deletes(self):
        rng = np.random.default_rng(16)
        registry = _registry(_grid(rng, 10))
        feed = IngestFeed(
            registry,
            "ds",
            config=FeedConfig(batch_size=5),
            window=WindowSpec.count(8),
        )
        for row in _grid(rng, 20):
            feed.append(row)
        # 20 ingested, window keeps 8: 12 expired through delete batches.
        assert feed.records_expired == 12
        alive = set(int(i) for i in registry.snapshot("ds").ids)
        assert alive == set(range(10)) | set(range(22, 30))

    def test_windowed_feed_recovery_is_deterministic(self, tmp_path):
        rng = np.random.default_rng(17)
        points = _grid(rng, 10)
        registry = _registry(points, durability_dir=str(tmp_path))
        feed = IngestFeed(
            registry,
            "ds",
            config=FeedConfig(batch_size=3),
            window=WindowSpec.time(2.0),
        )
        stream = _grid(rng, 18)
        for i, row in enumerate(stream):
            feed.append(row, timestamp=float(i))
        feed.flush()
        want = registry.snapshot("ds").state_digest()
        # A fresh registry replays checkpoint+WAL: the expiration
        # deletes are ordinary WAL batches, so the state is identical.
        takeover = DatasetRegistry(
            keep_versions=8, durability_dir=str(tmp_path)
        )
        takeover.adopt("ds", drift=DriftPolicy.never())
        assert takeover.snapshot("ds").state_digest() == want

    def test_feed_timestamp_regression_rejected(self):
        rng = np.random.default_rng(18)
        registry = _registry(_grid(rng, 5))
        feed = IngestFeed(registry, "ds")
        feed.append([1.0, 2.0, 3.0], timestamp=5.0)
        with pytest.raises(ConfigurationError):
            feed.append([1.0, 2.0, 3.0], timestamp=4.0)

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            FeedConfig(batch_size=0)
        with pytest.raises(ConfigurationError):
            FeedConfig(on_overload="panic")


# ----------------------------------------------------------------------
# client wiring
# ----------------------------------------------------------------------
class TestClientSubscriptions:
    def test_subscribe_and_stream(self):
        rng = np.random.default_rng(19)
        registry = _registry(_grid(rng, 20))
        hub = SubscriptionHub().attach(registry)
        with SkylineService(registry) as service:
            client = SkylineClient(service, "ds", hub=hub)
            sub = client.subscribe()
            client.insert(_grid(rng, 3), [30, 31, 32])
            events = _drain(sub)
            assert len(events) == 1
            final, _ = replay(
                events, sub.start_sky_ids, sub.start_version
            )
            assert final == _sky_ids(registry)
            sub.close()
            resumed = client.subscribe_from(sub.start_version)
            assert _drain(resumed) == events

    def test_subscribe_without_hub_is_typed_error(self):
        rng = np.random.default_rng(20)
        registry = _registry(_grid(rng, 10))
        with SkylineService(registry) as service:
            client = SkylineClient(service, "ds")
            with pytest.raises(ConfigurationError):
                client.subscribe()


# ----------------------------------------------------------------------
# hypothesis: the soundness oracle (satellite c)
# ----------------------------------------------------------------------
@st.composite
def ingest_stream(draw):
    """A short stream of small insert batches on a 3-D grid."""
    n_batches = draw(st.integers(min_value=1, max_value=6))
    batches = []
    for _ in range(n_batches):
        n = draw(st.integers(1, 6))
        rows = draw(
            st.lists(
                st.lists(st.integers(0, TOP - 1), min_size=DIMS, max_size=DIMS),
                min_size=n,
                max_size=n,
            )
        )
        batches.append(rows)
    return batches


@given(
    ingest_stream(),
    st.integers(min_value=1, max_value=8),
    st.booleans(),
)
@settings(max_examples=25, deadline=None)
def test_streaming_soundness_oracle(batches, window, use_time):
    seed_rng = np.random.default_rng(42)
    registry = _registry(_grid(seed_rng, 6))
    hub = SubscriptionHub(retention=64).attach(registry)
    manager = ContinuousQueryManager().attach(registry)
    spec = (
        WindowSpec.time(float(window)) if use_time
        else WindowSpec.count(window)
    )
    query = manager.register("q", "ds", spec)
    fast = hub.subscribe("ds")
    slow = hub.subscribe("ds", max_pending=1)  # exercises coalescing
    next_id = 6
    for rows in batches:
        ids = list(range(next_id, next_id + len(rows)))
        next_id += len(rows)
        registry.insert("ds", np.asarray(rows, dtype=np.float64), ids)
        # (1) the continuous skyline equals brute force over the
        # window's current contents, at every step
        window_ids = np.asarray(query.window_ids(), dtype=np.int64)
        snap = registry.snapshot("ds")
        rows_in_window = np.vstack(
            [snap.points[snap.row_of(int(i))] for i in window_ids]
        )
        _, want = bnl_skyline(rows_in_window, ids=window_ids)
        _, got = query.skyline()
        np.testing.assert_array_equal(np.sort(got), np.sort(want))
        query.verify()
    # (2) replaying all diffs from version 1 reconstructs the final
    # skyline id-set exactly — for the fast subscriber, the coalescing
    # slow subscriber, and a cursor resumed from version 1.
    expect = _sky_ids(registry)
    resumed = hub.subscribe_from("ds", 1)
    # A chain resume assumes the caller still holds the version-1
    # state — which is exactly the fast subscriber's baseline.
    for sub, baseline in (
        (fast, fast.start_sky_ids),
        (slow, slow.start_sky_ids),
        (resumed, fast.start_sky_ids),
    ):
        final, version = replay(
            _drain(sub, timeout=0.01), baseline, sub.start_version
        )
        assert final == expect
        assert version == registry.version("ds")
