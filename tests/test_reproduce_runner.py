"""Tests for the one-command reproduction runner."""

import pytest

from repro.bench.harness import BenchScale
from repro.bench.reproduce import (
    CLAIM_CHECKS,
    ClaimResult,
    ReproductionReport,
    run_reproduction,
)


class TestReportRendering:
    def test_markdown_structure(self):
        report = ReproductionReport(
            results=[
                ClaimResult("claim A", True, "good", 1.0),
                ClaimResult("claim B", False, "meh", 2.0),
            ]
        )
        text = report.render_markdown()
        assert "1 / 2 claims reproduced" in text
        assert "| PASS | claim A" in text
        assert "| DIVERGENCE | claim B" in text

    def test_counts(self):
        report = ReproductionReport(
            results=[ClaimResult("x", True, "", 0.0)]
        )
        assert report.passed == 1
        assert report.total == 1


class TestRunner:
    @pytest.mark.slow
    def test_full_run_small_scale(self):
        report = run_reproduction(scale=BenchScale(0.05))
        assert report.total == len(CLAIM_CHECKS)
        # The headline claims must reproduce even at tiny scale.
        by_claim = {r.claim: r for r in report.results}
        assert by_claim[
            "Z-merge beats SB/ZS candidate merging (Fig 8)"
        ].passed
        assert by_claim[
            "per-distribution pruning ordering matches §5.4's analysis"
        ].passed
        # Every check produced evidence, none crashed.
        for result in report.results:
            assert result.evidence
            assert "crashed" not in result.evidence

    def test_checks_are_registered(self):
        assert len(CLAIM_CHECKS) == 7
        names = [claim for claim, _ in CLAIM_CHECKS]
        assert len(set(names)) == 7

    def test_crashing_check_is_reported_not_raised(self, monkeypatch):
        import repro.bench.reproduce as module

        def boom(scale):
            raise RuntimeError("nope")

        monkeypatch.setattr(
            module, "CLAIM_CHECKS", [("crashy", boom)]
        )
        report = module.run_reproduction(scale=BenchScale(0.05))
        assert report.total == 1
        assert not report.results[0].passed
        assert "crashed" in report.results[0].evidence
