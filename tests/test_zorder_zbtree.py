"""Unit tests for the ZB-tree structure and its queries."""

import numpy as np
import pytest

from repro.core.exceptions import ZOrderError
from repro.core.point import dominates
from repro.zorder.encoding import ZGridCodec
from repro.zorder.zbtree import (
    OpCounter,
    ZBTree,
    build_zbtree,
    rebuild,
)


@pytest.fixture
def codec() -> ZGridCodec:
    return ZGridCodec.grid_identity(3, bits_per_dim=6)


def make_tree(codec, rng, n=200, top=64, **kwargs) -> ZBTree:
    points = rng.integers(0, top, (n, codec.dimensions)).astype(float)
    return build_zbtree(codec, points, **kwargs), points


class TestBuild:
    def test_empty_tree(self, codec):
        tree = build_zbtree(codec, np.empty((0, 3)))
        assert tree.is_empty
        assert tree.size == 0
        assert tree.height() == 0
        assert tree.points().shape == (0, 3)

    def test_single_point(self, codec):
        tree = build_zbtree(codec, np.array([[1.0, 2.0, 3.0]]))
        assert tree.size == 1
        assert tree.height() == 1

    def test_points_come_back_in_z_order(self, codec, rng):
        tree, points = make_tree(codec, rng)
        zs, got, ids = tree.collect()
        assert sorted(zs) == zs
        assert got.shape == points.shape
        # Content preserved as a multiset (ids map back to rows).
        assert np.array_equal(got[np.argsort(ids)], points)

    def test_validate_passes_for_fresh_tree(self, codec, rng):
        tree, _ = make_tree(codec, rng)
        tree.validate()

    def test_size_and_leaf_capacity(self, codec, rng):
        tree, _ = make_tree(codec, rng, n=100, leaf_capacity=8, fanout=4)
        assert tree.size == 100
        for leaf in tree.leaves():
            assert leaf.size <= 8

    def test_height_grows_logarithmically(self, codec, rng):
        small, _ = make_tree(codec, rng, n=10, leaf_capacity=4, fanout=4)
        big, _ = make_tree(codec, rng, n=600, leaf_capacity=4, fanout=4)
        assert big.height() > small.height()
        assert big.height() <= 7

    def test_custom_ids_preserved(self, codec):
        pts = np.array([[0.0, 0.0, 0.0], [5.0, 5.0, 5.0]])
        tree = build_zbtree(codec, pts, ids=[42, 7])
        assert set(tree.ids().tolist()) == {42, 7}

    def test_rejects_mismatched_ids(self, codec):
        with pytest.raises(ZOrderError):
            build_zbtree(codec, np.zeros((2, 3)), ids=[1])

    def test_rejects_bad_fanout(self, codec):
        with pytest.raises(ZOrderError):
            build_zbtree(codec, np.zeros((2, 3)), fanout=1)

    def test_rejects_1d_points(self, codec):
        with pytest.raises(ZOrderError):
            build_zbtree(codec, np.zeros(3))

    def test_unsorted_zaddresses_accepted(self, codec):
        pts = np.array([[5.0, 5.0, 5.0], [0.0, 0.0, 0.0]])
        zs = codec.encode_grid(pts.astype(np.int64))
        tree = build_zbtree(codec, pts, zaddresses=zs)
        tree.validate()


class TestIsDominated:
    def test_matches_brute_force(self, codec, rng):
        tree, points = make_tree(codec, rng, n=150, top=16)
        probes = rng.integers(0, 16, (50, 3)).astype(float)
        for probe in probes:
            expected = any(dominates(row, probe) for row in points)
            assert tree.is_dominated(probe) == expected

    def test_empty_tree_dominates_nothing(self, codec):
        tree = build_zbtree(codec, np.empty((0, 3)))
        assert not tree.is_dominated(np.zeros(3))

    def test_equal_point_does_not_dominate(self, codec):
        pts = np.array([[3.0, 3.0, 3.0]])
        tree = build_zbtree(codec, pts)
        assert not tree.is_dominated(np.array([3.0, 3.0, 3.0]))
        assert tree.is_dominated(np.array([3.0, 3.0, 4.0]))

    def test_counter_accrues(self, codec, rng):
        tree, _ = make_tree(codec, rng)
        counter = OpCounter()
        tree.is_dominated(np.full(3, 63.0), counter)
        assert counter.total() > 0


class TestRemoveDominatedBy:
    def test_matches_brute_force(self, codec, rng):
        for trial in range(5):
            tree, points = make_tree(codec, rng, n=120, top=16)
            pivot = rng.integers(0, 16, 3).astype(float)
            expected_removed = sum(
                1 for row in points if dominates(pivot, row)
            )
            removed = tree.remove_dominated_by(pivot)
            assert removed == expected_removed
            assert tree.size == 120 - expected_removed
            # No survivor is dominated by the pivot.
            for row in tree.points():
                assert not dominates(pivot, row)

    def test_remove_everything(self, codec):
        pts = np.full((10, 3), 9.0)
        tree = build_zbtree(codec, pts)
        removed = tree.remove_dominated_by(np.zeros(3))
        assert removed == 10
        assert tree.is_empty

    def test_remove_nothing_from_empty(self, codec):
        tree = build_zbtree(codec, np.empty((0, 3)))
        assert tree.remove_dominated_by(np.zeros(3)) == 0

    def test_repeated_removals_consistent(self, codec, rng):
        tree, points = make_tree(codec, rng, n=200, top=8)
        pivots = rng.integers(0, 8, (10, 3)).astype(float)
        survivors = list(map(tuple, points))
        for pivot in pivots:
            tree.remove_dominated_by(pivot)
            survivors = [
                s for s in survivors if not dominates(pivot, np.array(s))
            ]
        assert sorted(map(tuple, tree.points())) == sorted(survivors)

    def test_rebuild_after_removals_rebalances(self, codec, rng):
        tree, _ = make_tree(codec, rng, n=300, top=8)
        tree.remove_dominated_by(np.array([1.0, 1.0, 1.0]))
        rebuilt = rebuild(tree)
        rebuilt.validate()
        assert rebuilt.size == tree.size
        assert sorted(map(tuple, rebuilt.points())) == sorted(
            map(tuple, tree.points())
        )


class TestBatchedQueries:
    def test_dominated_mask_tree_matches_single(self, codec, rng):
        tree, points = make_tree(codec, rng, n=150, top=16)
        probes = rng.integers(0, 16, (60, 3)).astype(float)
        batched = tree.dominated_mask_tree(probes)
        for i, probe in enumerate(probes):
            assert batched[i] == tree.is_dominated(probe)

    def test_dominated_mask_tree_empty_cases(self, codec):
        empty_tree = build_zbtree(codec, np.empty((0, 3)))
        assert not empty_tree.dominated_mask_tree(np.ones((3, 3))).any()
        full_tree = build_zbtree(codec, np.zeros((1, 3)))
        assert full_tree.dominated_mask_tree(np.empty((0, 3))).size == 0

    def test_remove_block_matches_sequential(self, codec, rng):
        pts = rng.integers(0, 16, (200, 3)).astype(float)
        pivots = rng.integers(0, 16, (8, 3)).astype(float)
        t_batch = build_zbtree(codec, pts)
        t_seq = build_zbtree(codec, pts)
        removed_batch = t_batch.remove_dominated_by_block(pivots)
        removed_seq = sum(
            t_seq.remove_dominated_by(pivot) for pivot in pivots
        )
        assert removed_batch == removed_seq
        assert sorted(map(tuple, t_batch.points())) == sorted(
            map(tuple, t_seq.points())
        )

    def test_remove_block_empty_block(self, codec, rng):
        tree, _ = make_tree(codec, rng, n=50)
        assert tree.remove_dominated_by_block(np.empty((0, 3))) == 0
        assert tree.size == 50


class TestRangeQuery:
    def test_matches_bruteforce(self, codec, rng):
        tree, points = make_tree(codec, rng, n=300, top=32)
        for _ in range(10):
            lo = rng.integers(0, 24, 3).astype(float)
            hi = lo + rng.integers(0, 10, 3)
            expected = np.flatnonzero(
                np.all((lo <= points) & (points <= hi), axis=1)
            )
            got = tree.range_query(lo, hi)
            assert got.tolist() == expected.tolist()

    def test_empty_tree(self, codec):
        tree = build_zbtree(codec, np.empty((0, 3)))
        assert tree.range_query(np.zeros(3), np.ones(3)).size == 0

    def test_full_box_returns_everything(self, codec, rng):
        tree, points = make_tree(codec, rng, n=100)
        got = tree.range_query(np.zeros(3), np.full(3, 63.0))
        assert got.size == 100


class TestOpCounter:
    def test_merge_and_total(self):
        a = OpCounter(point_tests=3, region_tests=2, nodes_visited=1)
        b = OpCounter(point_tests=10)
        a.merge(b)
        assert a.point_tests == 13
        assert a.total() == 16
