"""Unit tests for the versioned on-disk checkpoint store."""

import json
import os

import numpy as np
import pytest

from repro.core.exceptions import ConfigurationError
from repro.mapreduce.types import Block
from repro.pipeline.checkpoint import (
    STAGE_FINAL,
    STAGE_PHASE1,
    STAGE_PREPROCESS,
    CheckpointStore,
)

KEY = {"plan": "ZDG+ZS+ZM", "n": 100, "seed": 0}


def block(seed=0, n=5, d=3):
    rng = np.random.default_rng(seed)
    return Block(
        np.arange(n, dtype=np.int64) + 100 * seed, rng.random((n, d))
    )


class TestRoundTrip:
    def test_blocks_and_payload_roundtrip(self, tmp_path):
        store = CheckpointStore(str(tmp_path))
        store.begin(KEY, resume=False)
        b0, b7 = block(0), block(7)
        store.save_stage(
            STAGE_PHASE1,
            payload={"counters": {"phase1": {"candidates": 12}}},
            blocks=[(0, b0), (7, b7)],
        )
        # a fresh store object reads everything back from disk
        again = CheckpointStore(str(tmp_path))
        assert again.completed_stages() == [STAGE_PHASE1]
        assert again.stage_payload(STAGE_PHASE1)["counters"] == {
            "phase1": {"candidates": 12}
        }
        restored = dict(again.load_blocks(STAGE_PHASE1))
        assert sorted(restored) == [0, 7]
        # bit-identical: ids and float64 payload round-trip exactly
        assert np.array_equal(restored[0].ids, b0.ids)
        assert np.array_equal(restored[0].points, b0.points)
        assert restored[7].checksum() == b7.checksum()

    def test_empty_block_roundtrip(self, tmp_path):
        store = CheckpointStore(str(tmp_path))
        store.begin(KEY, resume=False)
        store.save_stage(STAGE_FINAL, blocks=[(0, Block.empty(4))])
        [(key, restored)] = store.load_blocks(STAGE_FINAL)
        assert key == 0 and restored.size == 0 and restored.dimensions == 4

    def test_stage_order_reported_in_pipeline_order(self, tmp_path):
        store = CheckpointStore(str(tmp_path))
        store.begin(KEY, resume=False)
        store.save_stage(STAGE_FINAL)
        store.save_stage(STAGE_PREPROCESS)
        assert store.completed_stages() == [STAGE_PREPROCESS, STAGE_FINAL]


class TestResumeLifecycle:
    def test_fresh_begin_discards_previous_run(self, tmp_path):
        store = CheckpointStore(str(tmp_path))
        store.begin(KEY, resume=False)
        store.save_stage(STAGE_PHASE1, blocks=[(0, block())])
        store.begin(KEY, resume=False)
        assert store.completed_stages() == []
        blocks_dir = tmp_path / "blocks"
        assert not list(blocks_dir.glob("*.npz"))

    def test_resume_keeps_completed_stages(self, tmp_path):
        store = CheckpointStore(str(tmp_path))
        store.begin(KEY, resume=False)
        store.save_stage(STAGE_PREPROCESS, payload={"x": 1})
        resumed = CheckpointStore(str(tmp_path))
        assert resumed.begin(KEY, resume=True) == [STAGE_PREPROCESS]

    def test_resume_rejects_run_key_mismatch(self, tmp_path):
        store = CheckpointStore(str(tmp_path))
        store.begin(KEY, resume=False)
        other = dict(KEY, seed=99)
        with pytest.raises(ConfigurationError, match="run key mismatch"):
            CheckpointStore(str(tmp_path)).begin(other, resume=True)

    def test_run_key_json_normalisation(self, tmp_path):
        # tuples vs lists must compare equal after the JSON round-trip
        store = CheckpointStore(str(tmp_path))
        store.begin({"dims": (3, 4)}, resume=False)
        CheckpointStore(str(tmp_path)).begin(
            {"dims": [3, 4]}, resume=True
        )

    def test_save_before_begin_is_an_error(self, tmp_path):
        store = CheckpointStore(str(tmp_path))
        with pytest.raises(ConfigurationError, match="begin"):
            store.save_stage(STAGE_PREPROCESS)

    def test_unknown_stage_rejected(self, tmp_path):
        store = CheckpointStore(str(tmp_path))
        store.begin(KEY, resume=False)
        with pytest.raises(ConfigurationError, match="unknown"):
            store.save_stage("phase9")

    def test_missing_stage_read_is_an_error(self, tmp_path):
        store = CheckpointStore(str(tmp_path))
        store.begin(KEY, resume=False)
        with pytest.raises(ConfigurationError, match="no completed stage"):
            store.load_blocks(STAGE_PHASE1)


class TestCorruptionDetection:
    def test_bit_flip_fails_crc(self, tmp_path):
        store = CheckpointStore(str(tmp_path))
        store.begin(KEY, resume=False)
        b = block()
        store.save_stage(STAGE_PHASE1, blocks=[(0, b)])
        path = tmp_path / "blocks" / "phase1-0000.npz"
        flipped = b.points.copy()
        flipped[0, 0] += 1.0
        np.savez(path, ids=b.ids, points=flipped)
        with pytest.raises(ConfigurationError, match="CRC"):
            CheckpointStore(str(tmp_path)).load_blocks(STAGE_PHASE1)

    def test_missing_block_file(self, tmp_path):
        store = CheckpointStore(str(tmp_path))
        store.begin(KEY, resume=False)
        store.save_stage(STAGE_PHASE1, blocks=[(0, block())])
        os.remove(tmp_path / "blocks" / "phase1-0000.npz")
        with pytest.raises(ConfigurationError, match="missing"):
            CheckpointStore(str(tmp_path)).load_blocks(STAGE_PHASE1)


class TestFormatVersioning:
    def test_bumped_version_is_configuration_error(self, tmp_path):
        """A future-format manifest must fail loudly and typed — not
        with a KeyError from some missing field deep in the loader."""
        store = CheckpointStore(str(tmp_path))
        store.begin(KEY, resume=False)
        manifest_path = tmp_path / "manifest.json"
        manifest = json.loads(manifest_path.read_text())
        manifest["version"] = 99
        manifest_path.write_text(json.dumps(manifest))
        with pytest.raises(ConfigurationError, match="version"):
            CheckpointStore(str(tmp_path))

    def test_garbage_manifest_is_configuration_error(self, tmp_path):
        store = CheckpointStore(str(tmp_path))
        store.begin(KEY, resume=False)
        (tmp_path / "manifest.json").write_text("{not json")
        with pytest.raises(ConfigurationError, match="JSON"):
            CheckpointStore(str(tmp_path))

    def test_no_tmp_files_left_behind(self, tmp_path):
        store = CheckpointStore(str(tmp_path))
        store.begin(KEY, resume=False)
        store.save_stage(STAGE_PHASE1, blocks=[(0, block())])
        leftovers = [
            name
            for _dir, _sub, names in os.walk(tmp_path)
            for name in names
            if ".tmp" in name
        ]
        assert leftovers == []
