"""Unit tests for the phase-1 and phase-2 MapReduce jobs in isolation."""

import numpy as np
import pytest

from repro.core.skyline import is_skyline_of, skyline_indices_oracle
from repro.data.synthetic import independent
from repro.mapreduce.cache import DistributedCache
from repro.mapreduce.cluster import SimulatedCluster
from repro.mapreduce.runtime import MapReduceRuntime
from repro.mapreduce.types import Block, split_dataset
from repro.pipeline.phase1 import make_phase1_job
from repro.pipeline.phase2 import make_phase2_job
from repro.pipeline.plans import parse_plan
from repro.pipeline.preprocess import preprocess
from repro.zorder.encoding import quantize_dataset


def setup_runtime(plan_name, n=3000, d=4, seed=0, num_groups=8):
    ds = independent(n, d, seed=seed)
    snapped, codec = quantize_dataset(ds, bits_per_dim=8)
    plan = parse_plan(plan_name)
    pre = preprocess(
        snapped, codec, plan.partitioner, num_groups, sample_ratio=0.05,
        seed=seed,
    )
    cache = DistributedCache()
    pre.publish(cache)
    runtime = MapReduceRuntime(SimulatedCluster(4), cache=cache)
    return snapped, codec, plan, pre, runtime


class TestPhase1:
    def test_candidates_are_superset_of_skyline(self):
        snapped, codec, plan, pre, runtime = setup_runtime("ZDG+ZS")
        job = make_phase1_job(plan)
        result = runtime.run(job, split_dataset(snapped, 8))
        candidate_ids = np.concatenate(
            [b.ids for b in result.outputs.values()]
        )
        sky_idx = skyline_indices_oracle(snapped.points)
        sky_ids = snapped.ids[sky_idx]
        assert set(sky_ids.tolist()) <= set(candidate_ids.tolist())

    def test_candidates_counter_matches_outputs(self):
        snapped, codec, plan, pre, runtime = setup_runtime("ZHG+SB")
        job = make_phase1_job(plan)
        result = runtime.run(job, split_dataset(snapped, 8))
        total = sum(b.size for b in result.outputs.values())
        assert result.counters.get("phase1", "candidates") == total

    def test_prefilter_reduces_shuffle(self):
        snapped, codec, plan, pre, runtime = setup_runtime("Naive-Z+ZS")
        job = make_phase1_job(plan)
        with_filter = runtime.run(job, split_dataset(snapped, 8))

        import dataclasses

        plan_off = dataclasses.replace(plan, prefilter=False)
        runtime2 = MapReduceRuntime(SimulatedCluster(4), cache=runtime.cache)
        without = runtime2.run(
            make_phase1_job(plan_off), split_dataset(snapped, 8)
        )
        assert with_filter.shuffle_records < without.shuffle_records
        assert with_filter.counters.get("phase1", "prefiltered_records") > 0

    def test_prefilter_never_drops_skyline_points(self):
        snapped, codec, plan, pre, runtime = setup_runtime("ZDG+ZS")
        result = runtime.run(make_phase1_job(plan), split_dataset(snapped, 8))
        candidate_ids = set(
            np.concatenate([b.ids for b in result.outputs.values()]).tolist()
        )
        for idx in skyline_indices_oracle(snapped.points):
            assert int(snapped.ids[idx]) in candidate_ids

    def test_group_candidates_are_local_skylines(self):
        snapped, codec, plan, pre, runtime = setup_runtime("ZHG+ZS")
        result = runtime.run(make_phase1_job(plan), split_dataset(snapped, 8))
        for block in result.outputs.values():
            # Within a group output no point dominates another.
            assert is_skyline_of(block.points, block.points)


class TestPhase2:
    @pytest.mark.parametrize("merge", ["ZM", "ZS", "SB", "BNL"])
    def test_merge_strategies_agree_with_oracle(self, merge):
        snapped, codec, plan, pre, runtime = setup_runtime(
            f"ZDG+ZS+{merge}" if merge != "ZM" else "ZDG+ZS+ZM"
        )
        plan = parse_plan(f"ZDG+ZS+{merge}")
        result1 = runtime.run(
            make_phase1_job(plan), split_dataset(snapped, 8)
        )
        blocks = [b for b in result1.outputs.values() if b.size > 0]
        result2 = runtime.run(make_phase2_job(plan), blocks)
        skyline = result2.outputs[0]
        assert is_skyline_of(skyline.points, snapped.points)

    def test_merge_single_group(self):
        snapped, codec, plan, pre, runtime = setup_runtime("ZDG+ZS+ZM")
        sky_idx = skyline_indices_oracle(snapped.points)
        one_block = Block(
            snapped.ids[sky_idx], snapped.points[sky_idx]
        )
        result = runtime.run(make_phase2_job(plan), [one_block])
        assert result.outputs[0].size == len(sky_idx)

    def test_merge_with_empty_block(self):
        snapped, codec, plan, pre, runtime = setup_runtime("ZDG+ZS+ZM")
        sky_idx = skyline_indices_oracle(snapped.points)
        blocks = [
            Block(snapped.ids[sky_idx], snapped.points[sky_idx]),
            Block.empty(snapped.dimensions),
        ]
        result = runtime.run(make_phase2_job(plan), blocks)
        assert result.outputs[0].size == len(sky_idx)
