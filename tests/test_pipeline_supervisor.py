"""Tests for the checkpointed, resumable, degradable pipeline supervisor.

The acceptance contract:

* resuming an interrupted run — after *any* durable stage, on either
  executor — produces the bit-identical skyline id set;
* a degraded run never raises: it returns a :class:`PartialRunReport`
  whose skyline is a *subset* of the true skyline, with completeness
  < 1.0 and the lost groups named;
* malformed input records are quarantined, never abort phase 1.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dataset import Dataset
from repro.core.exceptions import ConfigurationError, DeadlineExceededError
from repro.core.skyline import skyline_indices_oracle
from repro.data.synthetic import generate, independent
from repro.mapreduce.faults import FaultPlan
from repro.pipeline.driver import run_plan
from repro.pipeline.supervisor import (
    PartialRunReport,
    SupervisorConfig,
    supervised_run,
)
#: scripted terminal kill of the named stage's first reduce task —
#: 99 failures against max_attempts=2 exhausts the retry budget
KILL = {
    "phase1": ("phase1-candidates:reduce", 0),
    "partial_merge": ("phase2-merge-partial:reduce", 0),
    "final": ("phase2-merge:reduce", 0),
}


def interrupting_plan(stage):
    return FaultPlan(scripted_failures={KILL[stage]: 99}, max_attempts=2)


def tiny(seed=3):
    return independent(240, 3, seed=seed)


def interrupted_then_resumed(plan, ds, stage, executor, tmp_path,
                             **kwargs):
    """Run to the interruption, then resume; returns the final report."""
    from repro.core.exceptions import FaultInjectionError

    with pytest.raises(FaultInjectionError):
        supervised_run(
            plan, ds,
            fault_plan=interrupting_plan(stage),
            executor=executor,
            supervisor=SupervisorConfig(
                checkpoint_dir=str(tmp_path), max_stage_retries=0
            ),
            **kwargs,
        )
    return supervised_run(
        plan, ds,
        executor=executor,
        supervisor=SupervisorConfig(
            checkpoint_dir=str(tmp_path), resume=True
        ),
        **kwargs,
    )


class TestCleanSupervisedRun:
    @pytest.mark.parametrize(
        "plan", ["Naive-Z+ZS", "ZHG+SB", "ZDG+ZS+ZM", "ZDG+ZS+ZMP"]
    )
    def test_matches_unsupervised_engine(self, plan):
        ds = tiny()
        base = run_plan(plan, ds, num_groups=6, num_workers=3)
        rep = supervised_run(plan, ds, num_groups=6, num_workers=3)
        assert sorted(rep.skyline.ids) == sorted(base.skyline.ids)
        assert not isinstance(rep, PartialRunReport)
        assert rep.details["supervised"] is True

    def test_checkpointing_does_not_change_the_answer(self, tmp_path):
        ds = tiny()
        base = run_plan("ZDG+ZS+ZM", ds, num_groups=6, num_workers=3)
        rep = supervised_run(
            "ZDG+ZS+ZM", ds, num_groups=6, num_workers=3,
            supervisor=SupervisorConfig(checkpoint_dir=str(tmp_path)),
        )
        assert list(rep.skyline.ids) == list(base.skyline.ids)


class TestResumeEquivalence:
    """{Naive-Z, ZHG, ZDG} x {SB, ZS}, interrupted after each durable
    stage, resumed to the bit-identical skyline — on both executors."""

    @pytest.mark.parametrize("executor", ["simulated", "threaded"])
    @pytest.mark.parametrize("stage", ["phase1", "final"])
    @pytest.mark.parametrize("part", ["Naive-Z", "ZHG", "ZDG"])
    @pytest.mark.parametrize("local", ["SB", "ZS"])
    def test_resume_is_bit_identical(
        self, part, local, stage, executor, tmp_path
    ):
        plan = f"{part}+{local}"
        ds = tiny()
        base = run_plan(plan, ds, num_groups=5, num_workers=3)
        rep = interrupted_then_resumed(
            plan, ds, stage, executor, tmp_path,
            num_groups=5, num_workers=3,
        )
        assert list(rep.skyline.ids) == list(base.skyline.ids)
        assert np.array_equal(
            np.sort(rep.skyline.points, axis=0),
            np.sort(base.skyline.points, axis=0),
        )
        # killing the final merge means phase 1 was already durable
        if stage == "final":
            assert "phase1" in rep.details["resumed_stages"]

    def test_resume_across_executors(self, tmp_path):
        """The skyline is executor-independent, so a checkpoint written
        under the simulated executor may resume under threads."""
        ds = tiny()
        base = run_plan("ZDG+ZS", ds, num_groups=5, num_workers=3)
        with pytest.raises(Exception):
            supervised_run(
                "ZDG+ZS", ds, num_groups=5, num_workers=3,
                executor="simulated",
                fault_plan=interrupting_plan("final"),
                supervisor=SupervisorConfig(
                    checkpoint_dir=str(tmp_path), max_stage_retries=0
                ),
            )
        rep = supervised_run(
            "ZDG+ZS", ds, num_groups=5, num_workers=3,
            executor="threaded",
            supervisor=SupervisorConfig(
                checkpoint_dir=str(tmp_path), resume=True
            ),
        )
        assert list(rep.skyline.ids) == list(base.skyline.ids)

    def test_resume_after_partial_merge_interrupt(self, tmp_path):
        ds = tiny()
        base = run_plan("ZDG+ZS+ZMP", ds, num_groups=5, num_workers=3)
        rep = interrupted_then_resumed(
            "ZDG+ZS+ZMP", ds, "partial_merge", "simulated", tmp_path,
            num_groups=5, num_workers=3,
        )
        assert list(rep.skyline.ids) == list(base.skyline.ids)
        assert rep.details["resumed_stages"] == ["preprocess", "phase1"]

    def test_fully_completed_run_resumes_from_final(self, tmp_path):
        ds = tiny()
        cfg = SupervisorConfig(checkpoint_dir=str(tmp_path))
        first = supervised_run(
            "ZHG+ZS", ds, num_groups=5, num_workers=3, supervisor=cfg
        )
        again = supervised_run(
            "ZHG+ZS", ds, num_groups=5, num_workers=3,
            supervisor=SupervisorConfig(
                checkpoint_dir=str(tmp_path), resume=True
            ),
        )
        assert list(again.skyline.ids) == list(first.skyline.ids)
        assert "final" in again.details["resumed_stages"]

    def test_resume_rejects_different_inputs(self, tmp_path):
        supervised_run(
            "ZHG+ZS", tiny(seed=3), num_groups=5, num_workers=3,
            supervisor=SupervisorConfig(checkpoint_dir=str(tmp_path)),
        )
        with pytest.raises(ConfigurationError, match="run key"):
            supervised_run(
                "ZHG+ZS", tiny(seed=4), num_groups=5, num_workers=3,
                supervisor=SupervisorConfig(
                    checkpoint_dir=str(tmp_path), resume=True
                ),
            )

    @given(
        plan=st.sampled_from(["Naive-Z+SB", "ZHG+ZS", "ZDG+ZS+ZM"]),
        stage=st.sampled_from(["phase1", "final"]),
        executor=st.sampled_from(["simulated", "threaded"]),
        seed=st.integers(0, 30),
    )
    @settings(max_examples=10, deadline=None)
    def test_resume_equivalence_property(
        self, plan, stage, executor, seed, tmp_path_factory
    ):
        tmp = tmp_path_factory.mktemp("ckpt")
        ds = generate("anticorrelated", 150, 3, seed=seed)
        base = run_plan(plan, ds, num_groups=4, num_workers=2, seed=seed)
        rep = interrupted_then_resumed(
            plan, ds, stage, executor, tmp,
            num_groups=4, num_workers=2, seed=seed,
        )
        assert list(rep.skyline.ids) == list(base.skyline.ids)


class TestStagePolicies:
    def test_stage_retry_redraws_fault_schedule(self):
        """A terminal fault in attempt 0 succeeds on the whole-job
        retry because the retried job is tagged with a fresh attempt."""
        ds = tiny()
        base = run_plan("ZDG+ZS", ds, num_groups=5, num_workers=3)
        rep = supervised_run(
            "ZDG+ZS", ds, num_groups=5, num_workers=3,
            fault_plan=interrupting_plan("final"),
            supervisor=SupervisorConfig(max_stage_retries=1),
        )
        assert list(rep.skyline.ids) == list(base.skyline.ids)

    def test_stage_retry_attempt_surfaces_in_report(self):
        """Regression: the whole-job retry attempt used to be dropped
        when the JobResult was built, so a retried stage was
        indistinguishable from a clean one downstream."""
        ds = tiny()
        rep = supervised_run(
            "ZDG+ZS", ds, num_groups=5, num_workers=3,
            fault_plan=interrupting_plan("final"),
            supervisor=SupervisorConfig(max_stage_retries=1),
        )
        assert rep.phase2.attempt == 1
        assert rep.phase2.tagged_name == "phase2-merge@1"
        assert rep.phase1.attempt == 0
        summary = rep.summary()
        assert summary["phase2_attempt"] == 1
        assert summary["phase1_attempt"] == 0

    def test_attempt_round_trips_through_checkpoint(self, tmp_path):
        ds = tiny()
        first = supervised_run(
            "ZDG+ZS", ds, num_groups=5, num_workers=3,
            fault_plan=interrupting_plan("final"),
            supervisor=SupervisorConfig(
                checkpoint_dir=str(tmp_path), max_stage_retries=1
            ),
        )
        assert first.phase2.attempt == 1
        resumed = supervised_run(
            "ZDG+ZS", ds, num_groups=5, num_workers=3,
            supervisor=SupervisorConfig(
                checkpoint_dir=str(tmp_path), resume=True
            ),
        )
        assert resumed.phase2.attempt == 1
        assert resumed.summary()["phase2_attempt"] == 1

    def test_rerun_on_same_supervisor_reuses_live_runtime(self):
        """A second run() on the same supervisor keeps the live
        runtime: cache re-publication is idempotent, rerun outputs land
        in attempt-scoped DFS paths, and ``latest`` resolves them."""
        from repro.pipeline.driver import EngineConfig
        from repro.pipeline.supervisor import PipelineSupervisor

        ds = tiny()
        sup = PipelineSupervisor(
            EngineConfig.from_plan_string(
                "ZDG+ZS+ZM", num_groups=5, num_workers=3
            ),
            SupervisorConfig(),
        )
        first = sup.run(ds)
        runtime = sup._runtime
        second = sup.run(ds)
        assert sup._runtime is runtime
        assert list(first.skyline.ids) == list(second.skyline.ids)
        # the resumed reader sees the newest attempt's output
        assert runtime.dfs.latest_path("skyline") == "skyline/attempt-1"
        latest = runtime.dfs.latest("skyline")
        assert sorted(latest[0].ids) == sorted(second.skyline.ids)

    def test_retry_budget_exhaustion_raises_terminally(self):
        # kill both the base attempt and the @1 retry
        fp = FaultPlan(
            scripted_failures={
                ("phase2-merge:reduce", 0): 99,
                ("phase2-merge@1:reduce", 0): 99,
            },
            max_attempts=2,
        )
        from repro.core.exceptions import FaultInjectionError

        with pytest.raises(FaultInjectionError, match="exhausted"):
            supervised_run(
                "ZDG+ZS", tiny(), num_groups=5, num_workers=3,
                fault_plan=fp,
                supervisor=SupervisorConfig(max_stage_retries=1),
            )

    def test_strict_deadline_raises_cleanly(self):
        with pytest.raises(DeadlineExceededError, match="deadline"):
            supervised_run(
                "ZDG+ZS", tiny(), num_groups=5, num_workers=3,
                supervisor=SupervisorConfig(deadline_seconds=0.0),
            )

    def test_strict_stage_budget_raises_cleanly(self):
        with pytest.raises(DeadlineExceededError):
            supervised_run(
                "ZDG+ZS", tiny(), num_groups=5, num_workers=3,
                supervisor=SupervisorConfig(
                    stage_timeouts={"phase1": 0.0}
                ),
            )

    def test_resume_without_dir_is_rejected(self):
        with pytest.raises(ConfigurationError, match="resume"):
            SupervisorConfig(resume=True)


class TestGracefulDegradation:
    @pytest.mark.parametrize("plan", ["ZHG+SB+ZM", "ZDG+ZS+ZM"])
    def test_lost_group_returns_certified_subset(self, plan):
        ds = tiny()
        true_ids = set(
            run_plan(plan, ds, num_groups=6, num_workers=3).skyline.ids
        )
        rep = supervised_run(
            plan, ds, num_groups=6, num_workers=3,
            fault_plan=interrupting_plan("phase1"),
            supervisor=SupervisorConfig(
                degraded_ok=True, max_stage_retries=0
            ),
        )
        assert isinstance(rep, PartialRunReport)
        assert rep.degraded
        # never a wrong answer: every returned id is a true skyline id
        assert set(rep.skyline.ids) <= true_ids
        assert rep.completeness < 1.0
        # the lost groups are named, with reasons
        assert rep.lost_groups
        detail = rep.completeness_detail
        assert detail["groups_lost"] == rep.lost_groups
        assert detail["uncertain_regions"] == rep.lost_groups
        assert all(
            str(g) in detail["lost_reasons"] for g in rep.lost_groups
        )
        assert 0.0 <= detail["candidate_coverage"] < 1.0
        assert rep.phase1.counters.get("reduce", "lost_tasks") >= 1
        summary = rep.summary()
        assert summary["completeness"] < 1.0
        assert summary["lost_groups"] == len(rep.lost_groups)

    def test_degraded_skyline_is_mutually_undominated(self):
        rep = supervised_run(
            "ZHG+ZS+ZM", tiny(), num_groups=6, num_workers=3,
            fault_plan=interrupting_plan("phase1"),
            supervisor=SupervisorConfig(
                degraded_ok=True, max_stage_retries=0
            ),
        )
        assert rep.skyline.size > 0
        kept = skyline_indices_oracle(rep.skyline.points)
        assert len(kept) == rep.skyline.size

    def test_deadline_mid_phase_degrades_instead_of_raising(self):
        """An already-expired deadline loses every reduce key; the run
        still returns (an empty, trivially correct partial skyline)."""
        rep = supervised_run(
            "ZDG+ZS+ZM", tiny(), num_groups=6, num_workers=3,
            supervisor=SupervisorConfig(
                degraded_ok=True, deadline_seconds=0.0
            ),
        )
        assert isinstance(rep, PartialRunReport)
        assert rep.completeness == 0.0
        assert rep.skyline.size == 0
        reasons = rep.completeness_detail["lost_reasons"]
        assert any("deadline" in r for r in reasons.values())

    def test_degraded_run_resumes_from_checkpoint(self, tmp_path):
        ds = tiny()
        rep = supervised_run(
            "ZHG+ZS+ZM", ds, num_groups=6, num_workers=3,
            fault_plan=interrupting_plan("phase1"),
            supervisor=SupervisorConfig(
                degraded_ok=True, max_stage_retries=0,
                checkpoint_dir=str(tmp_path),
            ),
        )
        again = supervised_run(
            "ZHG+ZS+ZM", ds, num_groups=6, num_workers=3,
            supervisor=SupervisorConfig(
                checkpoint_dir=str(tmp_path), resume=True
            ),
        )
        # the partial answer and its accounting survive the restart
        assert isinstance(again, PartialRunReport)
        assert list(again.skyline.ids) == list(rep.skyline.ids)
        assert again.lost_groups == rep.lost_groups
        assert again.completeness == rep.completeness

    def test_clean_run_is_never_reported_degraded(self):
        rep = supervised_run(
            "ZDG+ZS", tiny(), num_groups=6, num_workers=3,
            supervisor=SupervisorConfig(degraded_ok=True),
        )
        assert not isinstance(rep, PartialRunReport)


class TestInputHardening:
    def test_malformed_records_never_abort_phase1(self):
        rng = np.random.default_rng(11)
        clean = rng.random((120, 3))
        rows = [list(r) for r in clean]
        rows.insert(5, [0.1, float("nan"), 0.2])     # nonfinite
        rows.insert(17, [0.4, 0.5])                  # dimension mismatch
        rows.insert(40, [0.1, float("inf"), 0.9])    # nonfinite
        rows.append(["zebra", 0.1, 0.2])             # non-numeric
        rep = supervised_run(
            "ZHG+ZS", rows, num_groups=4, num_workers=2
        )
        counts = rep.details["input"]
        assert counts["quarantined_records"] == 4
        assert counts["nonfinite"] == 2
        assert counts["dimension_mismatch"] == 1
        assert counts["non_numeric"] == 1
        # the answer equals the clean dataset's skyline
        base = run_plan(
            "ZHG+ZS", Dataset(clean), num_groups=4, num_workers=2
        )
        assert sorted(rep.skyline.ids) == sorted(base.skyline.ids)

    def test_duplicate_ids_first_occurrence_wins(self):
        rows = [[0.5, 0.5], [0.1, 0.9], [0.9, 0.1], [0.2, 0.2]]
        ids = [1, 2, 2, 4]
        rep = supervised_run(
            "Naive-Z+ZS", rows, ids=ids, num_groups=2, num_workers=2
        )
        assert rep.details["input"]["duplicate_ids"] == 1
        assert 2 in rep.skyline.ids  # the kept (first) row with id 2
        assert rep.details["n"] == 3

    def test_validated_dataset_bypasses_hardening(self):
        rep = supervised_run(
            "ZHG+ZS", tiny(), num_groups=4, num_workers=2
        )
        assert rep.details["input"]["quarantined_records"] == 0
