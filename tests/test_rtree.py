"""Unit tests for the R-tree substrate and the BBS skyline baseline."""

import numpy as np
import pytest

from repro.algorithms.bbs import bbs_over_tree, bbs_skyline
from repro.core.exceptions import ReproError
from repro.core.skyline import is_skyline_of
from repro.rtree import MBR, bulk_load_str
from repro.zorder.zbtree import OpCounter


class TestMBR:
    def test_construction_and_validation(self):
        box = MBR([0.0, 0.0], [2.0, 3.0])
        assert box.dimensions == 2
        assert box.area() == 6.0
        with pytest.raises(ReproError):
            MBR([1.0], [0.0])
        with pytest.raises(ReproError):
            MBR([0.0, 0.0], [1.0])

    def test_of_points(self):
        box = MBR.of_points(np.array([[1.0, 5.0], [3.0, 2.0]]))
        assert box.lower.tolist() == [1.0, 2.0]
        assert box.upper.tolist() == [3.0, 5.0]
        with pytest.raises(ReproError):
            MBR.of_points(np.empty((0, 2)))

    def test_union(self):
        a = MBR([0.0, 0.0], [1.0, 1.0])
        b = MBR([2.0, -1.0], [3.0, 0.5])
        u = MBR.union([a, b])
        assert u.lower.tolist() == [0.0, -1.0]
        assert u.upper.tolist() == [3.0, 1.0]
        with pytest.raises(ReproError):
            MBR.union([])

    def test_contains_and_intersects(self):
        box = MBR([0.0, 0.0], [2.0, 2.0])
        assert box.contains_point([1.0, 1.0])
        assert not box.contains_point([3.0, 1.0])
        assert box.intersects(MBR([1.0, 1.0], [5.0, 5.0]))
        assert not box.intersects(MBR([3.0, 3.0], [5.0, 5.0]))

    def test_mindist_key(self):
        assert MBR([1.0, 2.0], [9.0, 9.0]).mindist_key() == 3.0

    def test_all_points_dominated_by(self):
        box = MBR([2.0, 2.0], [4.0, 4.0])
        assert box.all_points_dominated_by(np.array([1.0, 1.0]))
        assert not box.all_points_dominated_by(np.array([2.0, 2.0]))


class TestBulkLoad:
    def make(self, n=300, d=3, seed=0, **kwargs):
        rng = np.random.default_rng(seed)
        pts = rng.random((n, d)) * 100
        return bulk_load_str(pts, **kwargs), pts

    def test_structure_valid(self):
        tree, pts = self.make()
        tree.validate()
        assert tree.size == 300
        assert tree.dimensions == 3

    def test_empty(self):
        tree = bulk_load_str(np.empty((0, 2)))
        assert tree.is_empty
        assert tree.height() == 0
        tree.validate()

    def test_leaf_capacity_respected(self):
        tree, _ = self.make(leaf_capacity=8, fanout=4)
        for leaf in tree.leaves():
            assert leaf.size <= 8
        tree.validate()

    def test_all_points_present(self):
        tree, pts = self.make(n=150)
        collected = np.vstack([leaf.points for leaf in tree.leaves()])
        assert collected.shape == pts.shape
        assert sorted(map(tuple, collected)) == sorted(map(tuple, pts))

    def test_rejects_bad_parameters(self):
        with pytest.raises(ReproError):
            bulk_load_str(np.zeros((3, 2)), leaf_capacity=1)
        with pytest.raises(ReproError):
            bulk_load_str(np.zeros(3))
        with pytest.raises(ReproError):
            bulk_load_str(np.zeros((3, 2)), ids=np.array([1]))

    def test_range_query_matches_bruteforce(self):
        tree, pts = self.make(n=400, seed=3)
        rng = np.random.default_rng(5)
        for _ in range(10):
            lo = rng.random(3) * 60
            hi = lo + rng.random(3) * 40
            box = MBR(lo, hi)
            expected = np.flatnonzero(
                np.all((lo <= pts) & (pts <= hi), axis=1)
            )
            got = tree.range_query(box)
            assert got.tolist() == expected.tolist()

    def test_range_query_empty_tree(self):
        tree = bulk_load_str(np.empty((0, 2)))
        assert tree.range_query(MBR([0.0, 0.0], [1.0, 1.0])).size == 0


class TestBBS:
    def test_matches_oracle_random(self):
        rng = np.random.default_rng(7)
        for d in (1, 2, 4, 6):
            pts = rng.integers(0, 16, (150, d)).astype(float)
            sky, ids = bbs_skyline(pts, None, None)
            assert is_skyline_of(sky, pts)
            for point, pid in zip(sky, ids):
                assert np.array_equal(pts[pid], point)

    def test_empty_input(self):
        sky, ids = bbs_skyline(np.empty((0, 3)), None, None)
        assert sky.shape[0] == 0

    def test_progressive_order(self):
        # BBS reports skyline points in ascending coordinate sum.
        rng = np.random.default_rng(8)
        pts = rng.integers(0, 32, (200, 3)).astype(float)
        sky, _ = bbs_skyline(pts, None, None)
        sums = sky.sum(axis=1)
        assert np.all(np.diff(sums) >= 0)

    def test_pruning_beats_quadratic(self):
        # Correlated chain: one dominator; BBS should touch few points.
        pts = np.vstack([np.zeros((1, 3)), np.ones((500, 3)) * 9])
        counter = OpCounter()
        sky, _ = bbs_skyline(pts, None, counter)
        assert sky.shape[0] == 1
        assert counter.point_tests < 2000

    def test_over_prebuilt_tree(self):
        rng = np.random.default_rng(9)
        pts = rng.integers(0, 16, (120, 3)).astype(float)
        tree = bulk_load_str(pts)
        sky, _ = bbs_over_tree(tree)
        assert is_skyline_of(sky, pts)

    def test_registered_in_registry_and_plans(self):
        from repro.algorithms.registry import get_algorithm
        from repro.pipeline.plans import parse_plan

        assert get_algorithm("BBS") is bbs_skyline
        assert parse_plan("Grid+BBS").local_algorithm == "BBS"
