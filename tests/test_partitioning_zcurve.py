"""Unit tests for Z-curve partitioning (Naive-Z) and ZCurveRule."""

import numpy as np
import pytest

from repro.core.dataset import Dataset
from repro.core.exceptions import PartitioningError
from repro.partitioning.base import DROPPED, load_imbalance
from repro.partitioning.zcurve import (
    ZCurvePartitioner,
    ZCurveRule,
    equidepth_pivots,
)
from repro.zorder.encoding import ZGridCodec, quantize_dataset


@pytest.fixture
def codec() -> ZGridCodec:
    return ZGridCodec.grid_identity(3, bits_per_dim=6)


def snapped_uniform(n=3000, d=3, seed=0, bits=6):
    rng = np.random.default_rng(seed)
    ds = Dataset(rng.random((n, d)))
    return quantize_dataset(ds, bits_per_dim=bits)


class TestEquidepthPivots:
    def test_splits_evenly(self):
        zs = list(range(100))
        pivots = equidepth_pivots(zs, 4)
        assert pivots == [25, 50, 75]

    def test_duplicate_heavy_input(self):
        zs = [5] * 50 + [9] * 50
        pivots = equidepth_pivots(zs, 4)
        # Only one distinct boundary is possible.
        assert pivots == [9]

    def test_single_part(self):
        assert equidepth_pivots(list(range(10)), 1) == []

    def test_empty_input(self):
        assert equidepth_pivots([], 4) == []

    def test_no_pivot_at_global_minimum(self):
        zs = [3] * 90 + [7] * 10
        pivots = equidepth_pivots(zs, 4)
        assert all(p > 3 for p in pivots)


class TestZCurveRule:
    def test_partition_of_binary_search(self, codec):
        rule = ZCurveRule(codec, [100, 200, 300])
        assert rule.partition_of([0, 99, 100, 250, 99999]).tolist() == [
            0, 0, 1, 2, 3,
        ]

    def test_rejects_unsorted_pivots(self, codec):
        with pytest.raises(PartitioningError):
            ZCurveRule(codec, [200, 100])

    def test_rejects_duplicate_pivots(self, codec):
        with pytest.raises(PartitioningError):
            ZCurveRule(codec, [100, 100])

    def test_zranges_tile_address_space(self, codec):
        rule = ZCurveRule(codec, [100, 200])
        ranges = [rule.zrange(pid) for pid in range(rule.num_partitions)]
        assert ranges[0] == (0, 99)
        assert ranges[1] == (100, 199)
        assert ranges[2] == (200, codec.max_zaddress)

    def test_zrange_out_of_bounds(self, codec):
        rule = ZCurveRule(codec, [100])
        with pytest.raises(PartitioningError):
            rule.zrange(5)

    def test_regions_cover_their_ranges(self, codec):
        rule = ZCurveRule(codec, [1000, 5000])
        for pid in range(rule.num_partitions):
            lo, hi = rule.zrange(pid)
            region = rule.region(pid)
            assert region.contains_zaddress(lo)
            assert region.contains_zaddress(hi)

    def test_group_map_identity_by_default(self, codec):
        rule = ZCurveRule(codec, [100])
        assert rule.num_groups == rule.num_partitions == 2
        assert rule.group_map.tolist() == [0, 1]

    def test_group_map_custom(self, codec):
        rule = ZCurveRule(codec, [100, 200], group_map=[1, 0, 1])
        assert rule.num_groups == 2
        gids = rule.assign_groups(
            np.zeros((1, 3)), np.array([0]), zaddresses=[150]
        )
        assert gids.tolist() == [0]

    def test_group_map_dropping(self, codec):
        rule = ZCurveRule(codec, [100], group_map=[0, DROPPED])
        gids = rule.assign_groups(
            np.zeros((2, 3)), np.array([0, 1]), zaddresses=[50, 500]
        )
        assert gids.tolist() == [0, DROPPED]
        assert rule.describe()["dropped_partitions"] == 1

    def test_group_map_wrong_length(self, codec):
        with pytest.raises(PartitioningError):
            ZCurveRule(codec, [100], group_map=[0])

    def test_group_map_all_dropped(self, codec):
        with pytest.raises(PartitioningError):
            ZCurveRule(codec, [100], group_map=[DROPPED, DROPPED])

    def test_assign_computes_z_when_missing(self, codec):
        rule = ZCurveRule(codec, [])
        pts = np.array([[1.0, 2.0, 3.0]])
        gids = rule.assign_groups(pts, np.array([0]))
        assert gids.tolist() == [0]


class TestZCurvePartitioner:
    def test_balances_uniform_data(self):
        snapped, codec = snapped_uniform()
        rule = ZCurvePartitioner().fit(snapped, codec, 16)
        gids = rule.assign_groups(snapped.points, snapped.ids)
        assert rule.num_groups == 16
        assert load_imbalance(gids, 16) < 1.6

    def test_balance_holds_in_high_dimensions(self):
        # The paper's point: Z-curve equi-depth stays balanced when the
        # grid scheme cannot (it works on the 1-D mapped values).
        snapped, codec = snapped_uniform(n=4000, d=10, bits=4)
        rule = ZCurvePartitioner().fit(snapped, codec, 32)
        gids = rule.assign_groups(snapped.points, snapped.ids)
        assert load_imbalance(gids, rule.num_groups) < 2.0

    def test_every_point_assigned_no_drops(self):
        snapped, codec = snapped_uniform()
        rule = ZCurvePartitioner().fit(snapped, codec, 8)
        gids = rule.assign_groups(snapped.points, snapped.ids)
        assert (gids >= 0).all()
