"""Unit tests for dominance primitives."""

import numpy as np

from repro.core.point import (
    DominanceRelation,
    any_dominates,
    block_dominates,
    compare,
    dominance_counts,
    dominated_mask,
    dominates,
    dominates_block,
    dominates_or_equal,
    strictly_dominates,
)


class TestDominates:
    def test_strictly_smaller_everywhere(self):
        assert dominates([1, 1], [2, 2])

    def test_smaller_in_one_equal_in_other(self):
        assert dominates([1, 2], [1, 3])

    def test_equal_points_do_not_dominate(self):
        assert not dominates([1, 2], [1, 2])

    def test_incomparable_points(self):
        assert not dominates([1, 3], [2, 1])
        assert not dominates([2, 1], [1, 3])

    def test_dominance_is_antisymmetric(self):
        assert dominates([0, 0], [1, 1])
        assert not dominates([1, 1], [0, 0])

    def test_single_dimension(self):
        assert dominates([1], [2])
        assert not dominates([2], [1])
        assert not dominates([1], [1])

    def test_works_with_numpy_inputs(self):
        assert dominates(np.array([1.0, 1.0]), np.array([2.0, 2.0]))


class TestStrictAndWeak:
    def test_strict_requires_all_dimensions(self):
        assert strictly_dominates([1, 1], [2, 2])
        assert not strictly_dominates([1, 2], [2, 2])

    def test_weak_allows_equality(self):
        assert dominates_or_equal([1, 2], [1, 2])
        assert dominates_or_equal([1, 1], [1, 2])
        assert not dominates_or_equal([2, 1], [1, 2])


class TestCompare:
    def test_all_four_outcomes(self):
        assert compare([1, 1], [2, 2]) is DominanceRelation.DOMINATES
        assert compare([2, 2], [1, 1]) is DominanceRelation.DOMINATED
        assert compare([1, 2], [2, 1]) is DominanceRelation.INCOMPARABLE
        assert compare([1, 2], [1, 2]) is DominanceRelation.EQUAL

    def test_compare_is_consistent_with_dominates(self, rng=None):
        rng = np.random.default_rng(7)
        for _ in range(200):
            p, q = rng.integers(0, 4, (2, 3))
            rel = compare(p, q)
            assert (rel is DominanceRelation.DOMINATES) == dominates(p, q)
            assert (rel is DominanceRelation.DOMINATED) == dominates(q, p)


class TestBlockHelpers:
    def test_dominates_block_matches_scalar(self):
        p = np.array([1.0, 1.0])
        block = np.array([[2.0, 2.0], [1.0, 1.0], [0.0, 3.0], [1.0, 2.0]])
        expected = [dominates(p, row) for row in block]
        assert dominates_block(p, block).tolist() == expected

    def test_block_dominates_matches_scalar(self):
        p = np.array([1.0, 1.0])
        block = np.array([[0.0, 0.0], [1.0, 1.0], [2.0, 0.0], [0.5, 1.0]])
        expected = [dominates(row, p) for row in block]
        assert block_dominates(block, p).tolist() == expected

    def test_any_dominates_empty_block(self):
        assert not any_dominates(np.empty((0, 2)), [1.0, 1.0])

    def test_any_dominates(self):
        block = np.array([[3.0, 3.0], [0.0, 0.0]])
        assert any_dominates(block, [1.0, 1.0])

    def test_dominated_mask_matches_scalar(self):
        rng = np.random.default_rng(11)
        points = rng.integers(0, 5, (40, 3)).astype(float)
        dominators = rng.integers(0, 5, (15, 3)).astype(float)
        mask = dominated_mask(points, dominators)
        for i in range(points.shape[0]):
            expected = any(dominates(s, points[i]) for s in dominators)
            assert mask[i] == expected

    def test_dominated_mask_chunking_consistent(self):
        rng = np.random.default_rng(13)
        points = rng.integers(0, 5, (100, 2)).astype(float)
        dominators = rng.integers(0, 5, (9, 2)).astype(float)
        a = dominated_mask(points, dominators, chunk=7)
        b = dominated_mask(points, dominators, chunk=10_000)
        assert np.array_equal(a, b)

    def test_dominated_mask_empty_inputs(self):
        assert dominated_mask(np.empty((0, 2)), np.ones((3, 2))).size == 0
        out = dominated_mask(np.ones((3, 2)), np.empty((0, 2)))
        assert not out.any()


class TestDominanceCounts:
    def test_simple_chain(self):
        # p0 dominates p1 dominates p2
        points = np.array([[0.0, 0.0], [1.0, 1.0], [2.0, 2.0]])
        assert dominance_counts(points).tolist() == [0, 1, 2]

    def test_incomparable_set(self):
        points = np.array([[0.0, 2.0], [1.0, 1.0], [2.0, 0.0]])
        assert dominance_counts(points).tolist() == [0, 0, 0]

    def test_duplicates_do_not_count(self):
        points = np.array([[1.0, 1.0], [1.0, 1.0]])
        assert dominance_counts(points).tolist() == [0, 0]
