"""Unit tests for the kd-tree partitioner."""

import numpy as np
import pytest

from repro import run_plan
from repro.core.dataset import Dataset
from repro.core.exceptions import ConfigurationError
from repro.core.skyline import is_skyline_of
from repro.data.synthetic import anticorrelated, independent
from repro.partitioning import get_partitioner, reservoir_sample
from repro.partitioning.base import load_imbalance
from repro.partitioning.kdtree import KDTreePartitioner
from repro.zorder.encoding import quantize_dataset


def fitted(n=3000, d=4, num_groups=16, seed=0):
    ds = independent(n, d, seed=seed)
    snapped, codec = quantize_dataset(ds, bits_per_dim=8)
    sample = reservoir_sample(snapped, ratio=0.1, seed=seed)
    rule = KDTreePartitioner().fit(sample, codec, num_groups)
    return rule, snapped


class TestKDTreeRule:
    def test_registered(self):
        assert isinstance(get_partitioner("kdtree"), KDTreePartitioner)

    def test_rejects_bad_groups(self):
        ds = Dataset(np.random.default_rng(0).random((50, 2)))
        snapped, codec = quantize_dataset(ds, bits_per_dim=4)
        with pytest.raises(ConfigurationError):
            KDTreePartitioner().fit(snapped, codec, 0)

    def test_every_point_assigned(self):
        rule, snapped = fitted()
        gids = rule.assign_groups(snapped.points, snapped.ids)
        assert gids.min() >= 0
        assert gids.max() < rule.num_groups

    def test_group_count_near_request(self):
        rule, _ = fitted(num_groups=16)
        assert 8 <= rule.num_groups <= 16

    def test_median_splits_balance_counts(self):
        rule, snapped = fitted(n=4000, num_groups=16)
        gids = rule.assign_groups(snapped.points, snapped.ids)
        assert load_imbalance(gids, rule.num_groups) < 1.8

    def test_single_group(self):
        rule, snapped = fitted(num_groups=1)
        gids = rule.assign_groups(snapped.points, snapped.ids)
        assert set(gids.tolist()) == {0}
        assert rule.depth() == 0

    def test_degenerate_constant_data(self):
        ds = Dataset(np.full((40, 3), 7.0))
        snapped, codec = quantize_dataset(ds, bits_per_dim=4)
        rule = KDTreePartitioner().fit(snapped, codec, 8)
        gids = rule.assign_groups(snapped.points, snapped.ids)
        assert (gids >= 0).all()

    def test_depth_logarithmic(self):
        rule, _ = fitted(num_groups=32)
        assert rule.depth() <= 8


class TestEndToEnd:
    @pytest.mark.parametrize("plan", ["KDTree+ZS", "KDG+ZS+ZM"])
    def test_exact(self, plan):
        ds = anticorrelated(1500, 4, seed=4)
        snapped, _ = quantize_dataset(ds, bits_per_dim=10)
        report = run_plan(
            plan, ds, num_groups=8, num_workers=4, bits_per_dim=10, seed=0
        )
        assert is_skyline_of(report.skyline.points, snapped.points)
