"""Plan advisor + skyline post-processing (extensions).

Shows the full decision flow a downstream application would use:

1. let the advisor pick a strategy from a sample;
2. run the distributed pipeline;
3. post-process the (large) skyline: rank by dominance, take a
   representative top-k, and shrink with the k-dominant relaxation.

Run:  python examples/advisor_and_ranking.py
"""

from repro import SkylineEngine, EngineConfig
from repro.data import anticorrelated
from repro.extensions import (
    k_dominant_skyline,
    rank_skyline,
    top_k_skyline,
)
from repro.pipeline.advisor import advise
from repro.zorder import quantize_dataset


def main() -> None:
    dataset = anticorrelated(8_000, 8, seed=9)
    print(f"dataset: {dataset.name}\n")

    advice = advise(dataset, num_workers=8)
    print(f"advisor recommends: {advice.plan_string()} "
          f"with {advice.num_groups} groups")
    for line in advice.rationale:
        print(f"  - {line}")

    config = EngineConfig(
        plan=advice.plan, num_groups=advice.num_groups, num_workers=8
    )
    report = SkylineEngine(config).run(dataset)
    print(f"\nskyline: {report.skyline_size} of {dataset.size} points "
          f"(too many to eyeball)")

    snapped, _ = quantize_dataset(dataset, bits_per_dim=12)

    ranked_pts, ranked_ids, scores = rank_skyline(
        report.skyline.points, report.skyline.ids, snapped.points,
        method="dominance",
    )
    print("\nmost dominant skyline members (id: points dominated):")
    for pid, score in list(zip(ranked_ids, scores))[:5]:
        print(f"  #{pid}: {int(score)}")

    rep_pts, rep_ids = top_k_skyline(
        report.skyline.points, report.skyline.ids, snapped.points, k=5
    )
    print(f"\nrepresentative top-5 (greedy max coverage): "
          f"{sorted(rep_ids.tolist())}")

    for k in (8, 7, 6):
        shrunk, _ = k_dominant_skyline(report.skyline.points, k)
        print(f"k-dominant skyline, k={k}: {shrunk.shape[0]} points")


if __name__ == "__main__":
    main()
