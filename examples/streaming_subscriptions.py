"""Continuous skylines: CDC ingest + push-based diff subscriptions.

A hotel catalogue is served live while new listings stream in.  The
flow this demonstrates:

1. register a dataset and attach a `SubscriptionHub` plus a
   `ContinuousQueryManager` to the registry's publish hook;
2. subscribe — fast, slow (bounded queue, diffs coalesce), and a
   cursor resumed mid-stream via `subscribe_from`;
3. pump records through an `IngestFeed` (batched, backpressured via
   the service's admission controller, windowed expiry as ordinary
   delete batches);
4. verify the push stream: replaying every subscriber's events over
   its starting id-set reconstructs the live skyline exactly.

Run:  python examples/streaming_subscriptions.py
"""

import numpy as np

from repro.observability.metrics import MetricsRegistry
from repro.serving import DatasetRegistry, DriftPolicy, SkylineClient, SkylineService
from repro.streaming import (
    ContinuousQueryManager,
    FeedConfig,
    IngestFeed,
    SubscriptionHub,
    WindowSpec,
    replay,
)

DIMS = 4
BITS = 8
SEED_ROWS = 500
STREAM_ROWS = 3_000
WINDOW = 1_000


def main() -> None:
    rng = np.random.default_rng(17)
    seed = rng.integers(0, 2**BITS, size=(SEED_ROWS, DIMS)).astype(float)

    metrics = MetricsRegistry()
    registry = DatasetRegistry(metrics=metrics, keep_versions=8)
    registry.register("hotels", seed, drift=DriftPolicy.never())

    # Both consumers ride the registry's publish hook: the hub pushes
    # skyline diffs, the manager advances windowed continuous queries.
    hub = SubscriptionHub(metrics=metrics).attach(registry)
    manager = ContinuousQueryManager(metrics=metrics).attach(registry)
    manager.register("fresh", "hotels", WindowSpec.count(WINDOW))

    with SkylineService(registry, metrics=metrics) as service:
        client = SkylineClient(service, "hotels", hub=hub)

        fast = client.subscribe()             # keeps up, sees every diff
        slow = client.subscribe(max_pending=2)  # bounded: diffs coalesce

        feed = IngestFeed(
            registry,
            "hotels",
            admission=service.admission,       # backpressure, not drops
            config=FeedConfig(batch_size=64, on_overload="block"),
            window=WindowSpec.count(WINDOW),   # expiry = delete batches
            metrics=metrics,
        )

        stream = rng.integers(0, 2**BITS, size=(STREAM_ROWS, DIMS))
        half = STREAM_ROWS // 2
        for row in stream[:half].astype(float):
            feed.append(row)
        feed.flush()

        # A cursor resumed mid-stream: replays retained diffs from the
        # ring, or falls back to a full sync if trimmed.  The caller of
        # subscribe_from holds the state at that version — capture it.
        mid = registry.snapshot("hotels")
        mid_version = mid.version
        mid_sky = frozenset(int(i) for i in mid.sky_ids)
        resumed = client.subscribe_from(mid_version)

        for row in stream[half:].astype(float):
            feed.append(row)
        feed.flush()

        final = frozenset(int(i) for i in registry.snapshot("hotels").sky_ids)
        print(f"streamed {STREAM_ROWS} records in batches of 64, "
              f"window={WINDOW}, expired={feed.records_expired}")
        print(f"live skyline: {len(final)} points at "
              f"version {registry.snapshot('hotels').version}")

        subscribers = {
            "fast": (fast, fast.start_sky_ids, fast.start_version),
            "slow": (slow, slow.start_sky_ids, slow.start_version),
            "resumed": (resumed, mid_sky, mid_version),
        }
        for name, (sub, base, base_version) in subscribers.items():
            events = list(sub.events(timeout=0.05))
            got, version = replay(events, base, base_version)
            stats = sub.stats()
            ok = "ok" if got == final else "DIVERGED"
            print(f"  {name:8s} events={len(events):3d} "
                  f"coalesced={stats['coalesced']:3d} "
                  f"full_syncs={stats['full_syncs']} "
                  f"replayed to v{version}: {ok}")
            assert got == final
            sub.close()

        cq = manager.queries("hotels")[0]
        print(f"continuous query 'fresh': window={cq.window_size} rows, "
              f"skyline={len(cq.skyline_ids())} ids")

    streaming = metrics.counters_as_dict().get("streaming", {})
    print("streaming counters:", {
        k: streaming[k]
        for k in sorted(streaming)
        if k in ("diffs_published", "diffs_coalesced", "full_syncs",
                 "feed_batches", "feed_expirations")
    })


if __name__ == "__main__":
    main()
