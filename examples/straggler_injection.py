"""Straggler and fault injection on the simulated cluster (§1 and §3.3).

The paper's motivation: a worker with a faulty disk, or one that drew a
skyline-heavy partition, delays the whole job.  The simulated cluster
separates the two effects:

* an *environmental* straggler (slow machine) inflates one worker's
  wall-clock ledger but leaves the abstract cost untouched;
* an *algorithmic* straggler (skewed partitioning) shows up in the
  abstract cost skew, and grouping (ZHG/ZDG) is the paper's cure.

Beyond slowdowns, the engine survives *actual failures*: a seeded
:class:`FaultPlan` makes task attempts raise, crashes workers after the
map round (losing their completed output, which is re-executed from
lineage), and corrupts shuffled blocks (detected by checksum and
re-fetched) — all without changing the skyline.

Run:  python examples/straggler_injection.py
"""

from repro import FaultPlan, run_plan
from repro.data import anticorrelated


def main() -> None:
    dataset = anticorrelated(12_000, 8, seed=6)
    print(f"dataset: {dataset.name}\n")

    # --- environmental straggler: worker 0 runs 40x slower -----------
    base = run_plan("ZDG+ZS+ZM", dataset, num_workers=4, seed=0)
    slowed = run_plan(
        "ZDG+ZS+ZM", dataset, num_workers=4, seed=0,
        slowdown_factors=[40.0, 1.0, 1.0, 1.0],
    )
    print("environmental straggler (worker 0 at 40x):")
    print(
        f"  map wall makespan: {base.phase1.map_metrics.makespan_seconds:.3f}s"
        f" -> {slowed.phase1.map_metrics.makespan_seconds:.3f}s"
    )
    print(
        f"  abstract cost unchanged: "
        f"{base.phase1.map_metrics.makespan_cost} == "
        f"{slowed.phase1.map_metrics.makespan_cost}"
    )

    # --- algorithmic straggler: ungrouped vs grouped partitioning ----
    print("\nalgorithmic straggler (phase-1 reducer cost skew):")
    for plan in ("Naive-Z+ZS", "ZHG+ZS", "ZDG+ZS"):
        report = run_plan(plan, dataset, num_groups=32, num_workers=8,
                          seed=0)
        reduce_metrics = report.phase1.reduce_metrics
        print(
            f"  {plan:11s} skew={reduce_metrics.cost_skew():5.2f}x  "
            f"slowest-reducer cost={reduce_metrics.makespan_cost:9d}  "
            f"total={reduce_metrics.total_cost:9d}"
        )
    print(
        "\ngrouping splits skyline-heavy partitions across groups, so the"
        "\nslowest reducer does less work even when totals are similar."
    )

    # --- crashes, retries, corruption: recovery without wrong answers
    print("\nfault injection & recovery (seeded, deterministic):")
    faults = FaultPlan(
        seed=23,
        task_failure_rate=0.15,   # attempts that die on startup
        worker_crash_rate=0.25,   # workers losing completed map output
        corruption_rate=0.15,     # shuffled blocks corrupted in flight
        max_attempts=8,
        backoff_base=0.002,
    )
    base = run_plan("ZDG+ZS+ZM", dataset, num_workers=4, seed=0)
    faulted = run_plan(
        "ZDG+ZS+ZM", dataset, num_workers=4, seed=0, fault_plan=faults
    )
    print(f"  plan: {faults.describe()}")
    for key, value in faulted.fault_summary().items():
        if value:
            print(f"  {key:24s}: {value}")
    same = sorted(faulted.skyline.ids.tolist()) == sorted(
        base.skyline.ids.tolist()
    )
    print(f"  skyline identical to clean run: {same}")
    print(f"  recovery cost (abstract units): {faulted.recovery_cost}")


if __name__ == "__main__":
    main()
