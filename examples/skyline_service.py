"""A live skyline query service over a mutating hotel dataset.

One writer publishes immutable snapshot versions through the
:class:`~repro.serving.DatasetRegistry` while concurrent readers issue
all five query types through a :class:`~repro.serving.SkylineService`
— demonstrating snapshot isolation (a held snapshot never changes),
the version-keyed result cache, admission control, and a drift-policy
rebuild.

Run:  python examples/skyline_service.py
"""

import numpy as np

from repro.observability.metrics import MetricsRegistry
from repro.serving import (
    DatasetRegistry,
    DriftPolicy,
    SkylineClient,
    SkylineService,
    WorkloadSpec,
    replay_workload,
)


def main() -> None:
    rng = np.random.default_rng(7)
    dims = 4  # price, distance, noise, inverted rating — all minimised
    hotels = rng.integers(0, 1024, size=(2_000, dims)).astype(float)

    metrics = MetricsRegistry()
    registry = DatasetRegistry(metrics=metrics)
    registry.register(
        "hotels",
        hotels,
        drift=DriftPolicy.bounded(max_deletes=200),
    )

    with SkylineService(registry, metrics=metrics) as service:
        client = SkylineClient(service, "hotels")

        sky = client.skyline()
        print(f"v{sky.version}: skyline has {sky.size} of 2000 hotels")
        again = client.skyline()
        print(f"repeat query cached: {again.cached}")

        cheap_close = client.subspace([0, 1])
        print(f"price x distance subspace skyline: {cheap_close.size}")
        top = client.top_k(3, method="sum")
        print(f"top-3 by coordinate sum: ids {top.ids.tolist()}")

        non_sky = np.setdiff1d(registry.snapshot("hotels").ids, sky.ids)
        loser = client.why_not(point_id=int(non_sky[0]))
        fix = loser.explanation.cheapest_fix()
        print(
            f"why-not: {loser.explanation.num_dominators} dominators; "
            f"cheapest fix: improve dim {fix[0]} by {fix[1]:.0f}"
        )

        # A held snapshot is immune to later writes.
        held = registry.snapshot("hotels")
        client.insert(
            rng.integers(0, 1024, size=(50, dims)).astype(float),
            np.arange(10_000, 10_050),
        )
        client.delete(list(range(20)))
        print(
            f"writer is at v{client.version}; held snapshot still "
            f"v{held.version} with {held.size} rows"
        )

        # A seeded mixed workload: throughput, latency, cache hit rate.
        report = replay_workload(
            service,
            WorkloadSpec(dataset="hotels", operations=300,
                         read_fraction=0.85, seed=3),
        )
        summary = report.summary()
        print(
            f"replayed {summary['operations']} ops at "
            f"{summary['throughput_ops_per_second']:.0f} ops/s, "
            f"cache hit rate {summary['cache_hit_rate']:.0%}, "
            f"read p99 {summary['read_latency_seconds']['p99'] * 1e3:.2f} ms"
        )
        print(
            f"drift rebuilds so far: "
            f"{metrics.counter('serving', 'drift_rebuilds')}"
        )


if __name__ == "__main__":
    main()
