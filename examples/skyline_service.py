"""A live skyline query service over a mutating hotel dataset.

One writer publishes immutable snapshot versions through the
:class:`~repro.serving.DatasetRegistry` while concurrent readers issue
all five query types through a :class:`~repro.serving.SkylineService`
— demonstrating snapshot isolation (a held snapshot never changes),
the version-keyed result cache, admission control, and a drift-policy
rebuild.

With ``--faults``, the same service runs under a seeded
:class:`~repro.serving.ServingFaultPlan` — worker crashes, writer
crashes recovered from the mutation WAL, cache corruption caught by
the CRC guard — and the demo verifies the chaos run still converges
to a healthy writer with every fault accounted for.

Run:  python examples/skyline_service.py
      python examples/skyline_service.py --faults
"""

import argparse
import tempfile

import numpy as np

from repro.observability.metrics import MetricsRegistry
from repro.serving import (
    DatasetRegistry,
    DriftPolicy,
    ServiceConfig,
    ServingFaultPlan,
    SkylineClient,
    SkylineService,
    WorkloadSpec,
    replay_workload,
)


def main() -> None:
    rng = np.random.default_rng(7)
    dims = 4  # price, distance, noise, inverted rating — all minimised
    hotels = rng.integers(0, 1024, size=(2_000, dims)).astype(float)

    metrics = MetricsRegistry()
    registry = DatasetRegistry(metrics=metrics)
    registry.register(
        "hotels",
        hotels,
        drift=DriftPolicy.bounded(max_deletes=200),
    )

    with SkylineService(registry, metrics=metrics) as service:
        client = SkylineClient(service, "hotels")

        sky = client.skyline()
        print(f"v{sky.version}: skyline has {sky.size} of 2000 hotels")
        again = client.skyline()
        print(f"repeat query cached: {again.cached}")

        cheap_close = client.subspace([0, 1])
        print(f"price x distance subspace skyline: {cheap_close.size}")
        top = client.top_k(3, method="sum")
        print(f"top-3 by coordinate sum: ids {top.ids.tolist()}")

        non_sky = np.setdiff1d(registry.snapshot("hotels").ids, sky.ids)
        loser = client.why_not(point_id=int(non_sky[0]))
        fix = loser.explanation.cheapest_fix()
        print(
            f"why-not: {loser.explanation.num_dominators} dominators; "
            f"cheapest fix: improve dim {fix[0]} by {fix[1]:.0f}"
        )

        # A held snapshot is immune to later writes.
        held = registry.snapshot("hotels")
        client.insert(
            rng.integers(0, 1024, size=(50, dims)).astype(float),
            np.arange(10_000, 10_050),
        )
        client.delete(list(range(20)))
        print(
            f"writer is at v{client.version}; held snapshot still "
            f"v{held.version} with {held.size} rows"
        )

        # A seeded mixed workload: throughput, latency, cache hit rate.
        report = replay_workload(
            service,
            WorkloadSpec(dataset="hotels", operations=300,
                         read_fraction=0.85, seed=3),
        )
        summary = report.summary()
        print(
            f"replayed {summary['operations']} ops at "
            f"{summary['throughput_ops_per_second']:.0f} ops/s, "
            f"cache hit rate {summary['cache_hit_rate']:.0%}, "
            f"read p99 {summary['read_latency_seconds']['p99'] * 1e3:.2f} ms"
        )
        print(
            f"drift rebuilds so far: "
            f"{metrics.counter('serving', 'drift_rebuilds')}"
        )


def chaos_main() -> None:
    """The same service under a seeded fault plan: every worker crash
    respawned, every writer crash recovered from the WAL, every cache
    corruption caught — and the run is deterministic per seed."""
    rng = np.random.default_rng(7)
    hotels = rng.integers(0, 1024, size=(2_000, 4)).astype(float)

    plan = ServingFaultPlan(
        seed=13,
        worker_crash_rate=0.04,
        writer_crash_rate=0.12,
        cache_corruption_rate=0.15,
        queue_delay_rate=0.05,
        queue_delay_seconds=0.001,
    )
    print(f"fault plan: {plan.describe()}")

    metrics = MetricsRegistry()
    with tempfile.TemporaryDirectory(prefix="repro-wal-") as wal_dir:
        registry = DatasetRegistry(
            metrics=metrics,
            durability_dir=wal_dir,   # writer crashes recover from here
            checkpoint_every=8,
            fault_plan=plan,
        )
        registry.register("hotels", hotels, drift=DriftPolicy.never())

        with SkylineService(
            registry, config=ServiceConfig(fault_plan=plan), metrics=metrics
        ) as service:
            report = replay_workload(
                service,
                WorkloadSpec(
                    dataset="hotels", operations=400, read_fraction=0.8,
                    seed=3, retry_attempts=4,
                ),
            )

        status = registry.writer_status("hotels")
        digest = registry.snapshot("hotels").state_digest()

    counter = lambda name: metrics.counter("serving", name)  # noqa: E731
    print(
        f"replayed {report.operations} ops: {report.reads} reads, "
        f"{report.writes} writes, availability {report.availability:.1%}"
    )
    print(
        f"worker crashes: {counter('worker_crashes')} "
        f"(respawned {counter('worker_respawns')}, "
        f"re-enqueued {counter('requeued')})"
    )
    print(
        f"writer crashes: {counter('writer_crashes')} "
        f"(auto-recovered {counter('writer_auto_recoveries')}, "
        f"WAL batches replayed {counter('wal_replayed')})"
    )
    print(
        f"cache corruptions: injected "
        f"{counter('cache_corruption_injected')}, caught "
        f"{counter('cache_corruption_detected')} — none served"
    )
    print(
        f"degraded reads: {report.degraded_stale} stale, "
        f"{report.degraded_partial} partial; retries {report.retries}"
    )
    if report.failures:
        shown = ", ".join(
            f"{name} x{count}"
            for name, count in sorted(report.failures.items())
        )
        print(f"typed terminal failures: {shown}")
    assert not status["writer_down"], "writer must end the run healthy"
    print(
        f"writer healthy at v{status['published_version']} after "
        f"{status['recoveries']} recoveries; state digest {digest[:16]}…"
    )


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--faults", action="store_true",
        help="run the seeded chaos-injection demo",
    )
    if parser.parse_args().faults:
        chaos_main()
    else:
        main()
