"""Compare every partitioning strategy on one workload (mini Figure 7).

Runs the Grid/Angle/Random baselines and the three Z-order strategies on
the same dataset, printing the measurements the paper's evaluation
revolves around: candidates emitted, shuffle volume, per-reducer skew,
and the simulated makespan.

Run:  python examples/strategy_comparison.py [dims]
"""

import sys

from repro import run_plan, run_gpmrs, EngineConfig, parse_plan
from repro.data import independent

PLANS = (
    "Random+BNL",
    "Grid+SB",
    "Grid+ZS",
    "Angle+ZS",
    "Naive-Z+ZS",
    "ZHG+ZS",
    "ZDG+ZS",
    "ZDG+ZS+ZM",
)


def main() -> None:
    dims = int(sys.argv[1]) if len(sys.argv) > 1 else 8
    dataset = independent(12_000, dims, seed=2)
    print(f"dataset: {dataset.name}\n")
    header = (
        f"{'plan':12s} {'skyline':>8s} {'candidates':>10s} "
        f"{'shuffle':>8s} {'skew':>6s} {'makespan':>10s}"
    )
    print(header)
    print("-" * len(header))

    sizes = set()
    for plan in PLANS:
        report = run_plan(
            plan, dataset, num_groups=32, num_workers=8, seed=0
        )
        sizes.add(report.skyline_size)
        print(
            f"{plan:12s} {report.skyline_size:8d} "
            f"{report.num_candidates:10d} {report.shuffle_records:8d} "
            f"{report.reducer_skew:6.2f} {report.makespan_cost:10d}"
        )

    config = EngineConfig(
        plan=parse_plan("Grid+SB"), num_groups=32, num_workers=8
    )
    gp = run_gpmrs(dataset, config)
    sizes.add(gp.skyline_size)
    print(
        f"{'MR-GPMRS':12s} {gp.skyline_size:8d} {gp.num_candidates:10d} "
        f"{gp.shuffle_records:8d} {gp.reducer_skew:6.2f} "
        f"{gp.makespan_cost:10d}"
    )

    # Every strategy computes the same skyline.
    assert len(sizes) == 1, sizes
    print("\nall strategies agree on the skyline: OK")


if __name__ == "__main__":
    main()
