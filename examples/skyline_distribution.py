"""Reproduce Example 2: where do skyline points live? (§4.1)

The paper studies NBA (anti-correlated) and HOU (independent) data and
finds the skyline concentrated in a minority of equal-count partitions —
the observation motivating partition *grouping*.  This example runs the
same study on the statistical simulators and renders the histograms.

Run:  python examples/skyline_distribution.py
"""

from repro.analysis import (
    dominance_depth_profile,
    render_histogram,
    render_profile,
    skyline_partition_histogram,
    workload_profile,
)
from repro.data import hou_like, nba_like
from repro.partitioning import ZCurvePartitioner, reservoir_sample
from repro.zorder import quantize_dataset


def study(dataset, num_partitions: int = 12) -> None:
    print(f"\n########## {dataset.name} ##########")
    profile = workload_profile(dataset)
    print(
        f"n={int(profile['n'])} d={int(profile['d'])} "
        f"skyline={int(profile['skyline_size'])} "
        f"({profile['skyline_fraction']:.1%}); "
        f"mean pairwise correlation "
        f"{profile['mean_pairwise_correlation']:+.2f}"
    )

    snapped, codec = quantize_dataset(dataset, bits_per_dim=10)
    sample = reservoir_sample(snapped, ratio=0.5, seed=0)
    rule = ZCurvePartitioner().fit(sample, codec, num_partitions)
    histogram = skyline_partition_histogram(snapped, rule, codec)
    print(
        render_histogram(
            histogram,
            title=f"skyline per equal-count Z-partition ({dataset.name})",
        )
    )
    print(render_profile(dominance_depth_profile(dataset)))


def main() -> None:
    # NBA-like: 350 players x 7 anti-correlated stats (Example 2's
    # "latest top 350 players").
    study(nba_like(350, seed=1))
    # HOU-like: 1k households x 6 expenditure shares.
    study(hou_like(1000, seed=1))


if __name__ == "__main__":
    main()
