"""Portfolio screening: mixed-direction criteria, why-not, windows.

An end-to-end tour of the post-1.0 extensions on a realistic task:
screen investment funds where some criteria are minimised (fees, risk)
and others maximised (returns, liquidity), explain why a fund missed
the shortlist, and track the shortlist over a sliding window of
quarterly updates.

Run:  python examples/portfolio_screening.py
"""

import numpy as np

from repro import run_plan
from repro.core.dataset import Dataset
from repro.extensions import rank_skyline, why_not
from repro.maintenance import SlidingWindowSkyline
from repro.zorder import ZGridCodec, quantize_dataset

CRITERIA = ["fee_pct", "volatility", "neg_return", "neg_liquidity"]
DIRECTIONS = ["min", "min", "max", "max"]  # of the raw columns


def make_funds(n: int, seed: int = 0) -> Dataset:
    rng = np.random.default_rng(seed)
    fee = rng.gamma(2.0, 0.4, n)                     # %
    volatility = rng.gamma(3.0, 4.0, n)              # %
    returns = 2.0 + 0.35 * volatility + rng.normal(0, 3.0, n)
    liquidity = np.clip(rng.normal(70, 20, n) - 5 * fee, 1, 100)
    raw = np.column_stack([fee, volatility, returns, liquidity])
    return Dataset(raw, name=f"funds(n={n})")


def main() -> None:
    funds = make_funds(15_000, seed=8)
    print(f"universe: {funds.size} funds x {len(CRITERIA)} criteria")

    # Orient: returns/liquidity are maximised -> flip to minimisation.
    oriented = funds.oriented(["min", "min", "max", "max"])

    report = run_plan(
        "ZDG+ZS+ZM", oriented, num_groups=16, num_workers=4, seed=0
    )
    print(f"skyline shortlist: {report.skyline_size} funds")

    # Rank the shortlist by how much of the universe each fund beats.
    snapped, _ = quantize_dataset(oriented, bits_per_dim=12)
    _, ranked_ids, scores = rank_skyline(
        report.skyline.points, report.skyline.ids, snapped.points,
        method="dominance",
    )
    print("\ntop funds by dominance score:")
    for fund_id, score in list(zip(ranked_ids, scores))[:3]:
        fee, vol, ret, liq = funds.points[fund_id]
        print(
            f"  fund#{fund_id}: beats {int(score)} funds "
            f"(fee {fee:.2f}%, vol {vol:.1f}%, ret {ret:.1f}%, "
            f"liq {liq:.0f})"
        )

    # Why is some non-shortlisted fund out?
    shortlist = set(report.skyline.ids.tolist())
    loser = next(
        int(i) for i in snapped.ids if int(i) not in shortlist
    )
    explanation = why_not(
        snapped.points[loser], snapped.points, snapped.ids
    )
    dim, reduction = explanation.cheapest_fix()
    print(
        f"\nwhy not fund#{loser}? dominated by "
        f"{explanation.num_dominators} funds; cheapest fix: improve "
        f"'{CRITERIA[dim]}' by {reduction:.0f} grid cells"
    )

    # Quarterly updates: shortlist over the last 2000 filings.
    codec = ZGridCodec.grid_identity(4, bits_per_dim=12)
    window = SlidingWindowSkyline(codec, window_size=2000)
    window.extend(snapped.points[:3000])
    print(
        f"\nsliding window: {window.size} live filings, "
        f"{window.skyline_size} on the rolling shortlist"
    )
    window.verify()
    print("rolling shortlist verified against the oracle: OK")


if __name__ == "__main__":
    main()
