"""Incremental skyline maintenance over a live feed (extension).

A hotel-price feed: offers arrive in batches and expire.  The
:class:`~repro.maintenance.SkylineMaintainer` keeps the current skyline
with Z-merge folds on insert and exclusive-region re-promotion on
delete — no full recomputation.

Run:  python examples/streaming_maintenance.py
"""

import numpy as np

from repro.maintenance import SkylineMaintainer
from repro.zorder.encoding import ZGridCodec


def main() -> None:
    rng = np.random.default_rng(11)
    dims = 4  # price, distance, noise, 5-rating
    bits = 10
    codec = ZGridCodec.grid_identity(dims, bits_per_dim=bits)
    maintainer = SkylineMaintainer(codec)

    alive: list = []
    next_id = 0
    print("tick  event              alive  skyline")
    for tick in range(12):
        if alive and rng.random() < 0.35:
            k = int(rng.integers(1, max(2, len(alive) // 3)))
            doomed = list(
                rng.choice(alive, size=min(k, len(alive)), replace=False)
            )
            maintainer.delete(doomed)
            alive = [a for a in alive if a not in set(doomed)]
            event = f"expire {len(doomed):3d} offers"
        else:
            n = int(rng.integers(20, 120))
            points = rng.integers(0, 1 << bits, (n, dims)).astype(float)
            ids = np.arange(next_id, next_id + n)
            maintainer.insert_block(points, ids)
            alive.extend(ids.tolist())
            next_id += n
            event = f"insert {n:3d} offers"
        print(
            f"{tick:4d}  {event:18s} {maintainer.size:6d} "
            f"{maintainer.skyline_size:8d}"
        )

    # The testing hook cross-checks against the quadratic oracle.
    maintainer.verify()
    print("\nfinal skyline verified against the oracle: OK")
    print(
        f"dominance work so far: {maintainer.counter.total():,} cost units"
    )


if __name__ == "__main__":
    main()
