"""The paper's motivating scenario: skyline hotel search.

Figure 1(a): hotels described by distance-to-downtown and daily rate —
both minimised.  A hotel is interesting exactly when no other hotel is
both closer and cheaper.  We extend the example to five criteria and
shortlist a large synthetic hotel catalogue, comparing the distributed
pipeline against a single-machine Z-search.

Run:  python examples/hotel_search.py
"""

import numpy as np

from repro import run_plan
from repro.algorithms.zs import zs_skyline
from repro.core.dataset import Dataset
from repro.core.point import compare
from repro.zorder import quantize_dataset

CRITERIA = [
    "distance_km",      # to downtown
    "rate_usd",         # per night
    "noise_db",         # street noise
    "checkin_wait_min",  # front-desk queue
    "neg_rating",       # 5.0 - guest rating (smaller = better)
]


def make_hotel_catalogue(n: int, seed: int = 0) -> Dataset:
    """Synthesise a catalogue with realistic trade-offs: central hotels
    are pricier and noisier; highly rated ones have longer queues."""
    rng = np.random.default_rng(seed)
    distance = rng.gamma(2.0, 2.0, n)                      # 0..~20 km
    centrality = np.exp(-distance / 4.0)
    rate = 60 + 260 * centrality + rng.normal(0, 25, n)
    noise = 35 + 30 * centrality + rng.normal(0, 5, n)
    rating = np.clip(
        3.0 + 1.2 * (rate - rate.min()) / (np.ptp(rate) + 1e-9)
        + rng.normal(0, 0.4, n),
        1.0, 5.0,
    )
    wait = np.clip(5 + 6 * (rating - 3.0) + rng.normal(0, 3, n), 0, None)
    table = np.column_stack(
        [distance, np.clip(rate, 40, None), noise, wait, 5.0 - rating]
    )
    return Dataset(table, name=f"hotels(n={n})")


def main() -> None:
    hotels = make_hotel_catalogue(30_000, seed=4)
    print(f"catalogue: {hotels.size} hotels x {hotels.dimensions} criteria")
    print(f"criteria : {', '.join(CRITERIA)} (all minimised)")

    # The tiny 2-hotel illustration from the paper's Figure 1.
    print(
        "\ndominance demo:",
        compare(hotels.points[0], hotels.points[1]).value,
        "between hotel#0 and hotel#1",
    )

    # Distributed skyline with the full pipeline.
    report = run_plan(
        "ZDG+ZS+ZM", hotels, num_groups=16, num_workers=4, seed=0
    )
    print(f"\nskyline shortlist: {report.skyline_size} hotels "
          f"(of {hotels.size})")

    # Cross-check against single-machine Z-search on the same grid.
    snapped, codec = quantize_dataset(hotels, bits_per_dim=12)
    central, _ = zs_skyline(snapped.points, snapped.ids, None, codec)
    assert central.shape[0] == report.skyline_size
    print("distributed == centralized Z-search: OK")

    # Show a few shortlisted hotels in original units.
    print("\nsample of the shortlist (original units):")
    header = "  ".join(f"{c:>16s}" for c in CRITERIA)
    print(f"    {header}")
    shown = report.skyline.ids[:5]
    for hotel_id in shown:
        row = hotels.points[hotel_id]
        cells = "  ".join(f"{v:16.2f}" for v in row)
        print(f"    {cells}")


if __name__ == "__main__":
    main()
