"""High-dimensional skyline over image descriptors (the paper's §6.5).

The paper evaluates on NUS-WIDE 225-D colour moments and 512-D GIST
descriptors: at hundreds of dimensions almost every pair of points is
incomparable, candidate sets explode, and the merge phase becomes the
bottleneck — exactly the regime Z-merge is built for.  This example
shortlists "least-redundant" images from a simulated NUS-WIDE-like
collection and compares the grid baseline with the Z-order system.

Run:  python examples/image_retrieval.py
"""

import time

from repro import run_plan
from repro.core.skyline import is_skyline_of
from repro.data import nuswide_like, scale_up
from repro.zorder import quantize_dataset


def main() -> None:
    # 225-D block-wise colour moments; scale-factor protocol like the
    # paper (s multiplies the base collection).
    base = nuswide_like(400, seed=3)
    images = scale_up(base, 4.0, seed=5)
    print(f"collection: {images.size} images x {images.dimensions}-D features")

    results = {}
    for plan in ("Grid+ZS", "ZDG+ZS+ZM"):
        start = time.perf_counter()
        report = run_plan(
            plan, images, num_groups=16, num_workers=4, bits_per_dim=8,
            seed=0,
        )
        elapsed = time.perf_counter() - start
        results[plan] = report
        print(
            f"  {plan:10s}  skyline={report.skyline_size:5d}  "
            f"candidates={report.num_candidates:5d}  "
            f"merge_cost={report.merge_cost:9d}  wall={elapsed:5.2f}s"
        )

    grid, zdg = results["Grid+ZS"], results["ZDG+ZS+ZM"]
    assert grid.skyline_size == zdg.skyline_size
    print(
        f"\nZ-merge did {grid.merge_cost / max(zdg.merge_cost, 1):.1f}x "
        "less merge work than re-running Z-search over all candidates"
    )

    snapped, _ = quantize_dataset(images, bits_per_dim=8)
    assert is_skyline_of(zdg.skyline.points, snapped.points)
    print("verified against the centralized oracle: OK")


if __name__ == "__main__":
    main()
