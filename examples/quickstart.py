"""Quickstart: compute a skyline with the full three-phase pipeline.

Runs the paper's best configuration (ZDG partition grouping, Z-search
local computation, Z-merge candidate merging) on an anti-correlated
synthetic workload — the hard case where skylines are large — and
verifies the distributed result against the centralized oracle.

Run:  python examples/quickstart.py
"""

from repro import run_plan
from repro.core.skyline import is_skyline_of
from repro.data import anticorrelated
from repro.zorder import quantize_dataset


def main() -> None:
    # 20k points in 5 dimensions, clustered around the anti-diagonal:
    # roughly a third of them end up on the skyline.
    dataset = anticorrelated(20_000, 5, seed=7)
    print(f"dataset: {dataset.name}")

    report = run_plan(
        "ZDG+ZS+ZM",
        dataset,
        num_groups=32,      # reducer groups (M in the paper)
        num_workers=8,      # simulated cluster size
        sample_ratio=0.02,  # phase-0 reservoir sample
        seed=0,
    )

    print(f"skyline size      : {report.skyline_size}")
    print(f"candidates emitted: {report.num_candidates}")
    print(f"input prefiltered : "
          f"{report.phase1.counters.get('phase1', 'prefiltered_records')}")
    print(f"preprocess        : {report.preprocess_seconds:.3f}s")
    print(f"phase 1 (compute) : {report.phase1_seconds:.3f}s")
    print(f"phase 2 (merge)   : {report.merge_seconds:.3f}s")
    print(f"reducer skew      : {report.reducer_skew:.2f}x")

    # The engine computes the skyline of the grid-snapped dataset;
    # verify against the simple quadratic oracle.
    snapped, _ = quantize_dataset(dataset, bits_per_dim=12)
    assert is_skyline_of(report.skyline.points, snapped.points)
    print("verified against the centralized oracle: OK")

    # Skyline ids refer to the original rows.
    first = sorted(report.skyline.ids.tolist())[:5]
    print(f"first skyline row ids: {first}")


if __name__ == "__main__":
    main()
