"""Kill a run mid-pipeline, then resume it from its checkpoint.

A supervised run persists every completed stage (preprocess rule +
codec, phase-1 candidate blocks, merge output) to a checkpoint
directory.  This demo:

1. starts a supervised run whose final merge is scripted to fail
   terminally (a deterministic :class:`FaultPlan` kills every attempt
   of its first reduce task) — the run dies, but preprocess and
   phase 1 are already durable on disk;
2. resumes from the checkpoint with no fault plan: only the merge
   re-executes;
3. verifies the resumed skyline is **bit-identical** to an
   uninterrupted run's (ids and points).

Exits non-zero on any mismatch, so CI can use it as a resume smoke
test.

Run:  python examples/resume_demo.py [checkpoint_dir]
"""

import sys
import tempfile

from repro import FaultPlan, run_plan
from repro.core.exceptions import FaultInjectionError
from repro.data import anticorrelated
from repro.pipeline.supervisor import SupervisorConfig, supervised_run

PLAN = "ZDG+ZS+ZM"


def main() -> int:
    dataset = anticorrelated(8_000, 6, seed=9)
    ckpt = sys.argv[1] if len(sys.argv) > 1 else tempfile.mkdtemp(
        prefix="skyline-ckpt-"
    )
    print(f"dataset    : {dataset.name}")
    print(f"checkpoint : {ckpt}\n")

    reference = run_plan(PLAN, dataset, num_workers=4, seed=0)
    print(
        f"reference run        : skyline={reference.skyline_size} "
        f"in {reference.total_seconds:.3f}s"
    )

    # -- 1. the doomed run: every attempt of the merge's reduce task 0
    #       fails, exhausting the retry budget mid-pipeline ------------
    kill_merge = FaultPlan(
        scripted_failures={("phase2-merge:reduce", 0): 99}, max_attempts=2
    )
    try:
        supervised_run(
            PLAN, dataset, num_workers=4, seed=0,
            fault_plan=kill_merge,
            supervisor=SupervisorConfig(
                checkpoint_dir=ckpt, max_stage_retries=0
            ),
        )
        print("ERROR: the scripted kill did not fire", file=sys.stderr)
        return 1
    except FaultInjectionError as exc:
        print(f"interrupted mid-run  : {exc}")

    # -- 2. resume: preprocess + phase 1 come back from disk ----------
    resumed = supervised_run(
        PLAN, dataset, num_workers=4, seed=0,
        supervisor=SupervisorConfig(checkpoint_dir=ckpt, resume=True),
    )
    print(
        f"resumed run          : skyline={resumed.skyline_size} "
        f"in {resumed.total_seconds:.3f}s "
        f"(resumed stages: {', '.join(resumed.details['resumed_stages'])})"
    )

    # -- 3. bit-identical or bust -------------------------------------
    if list(resumed.skyline.ids) != list(reference.skyline.ids):
        print("ERROR: resumed skyline ids differ", file=sys.stderr)
        return 1
    if (resumed.skyline.points != reference.skyline.points).any():
        print("ERROR: resumed skyline points differ", file=sys.stderr)
        return 1
    print("\nresumed skyline is bit-identical to the uninterrupted run")
    return 0


if __name__ == "__main__":
    sys.exit(main())
